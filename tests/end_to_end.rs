//! Cross-crate integration tests on the `alter` facade: full loop
//! executions under every policy combination, driver equivalence,
//! collections inside transactions, and end-to-end inference.

use alter::collections::{AlterList, AlterVec};
use alter::heap::{Heap, ObjData, ObjId};
use alter::infer::{infer, InferConfig, Model, Probe};
use alter::runtime::{
    run_loop, CommitOrder, ConflictPolicy, Driver, ExecParams, RangeSpace, RedOp, RedVal, RedVars,
};
use alter::sim::{simulate_loop, CostModel};
use alter::workloads::gauss_seidel::GaussSeidel;
use alter::workloads::{all_benchmarks, Scale};

fn params(
    conflict: ConflictPolicy,
    order: CommitOrder,
    workers: usize,
    chunk: usize,
) -> ExecParams {
    let mut p = ExecParams::new(workers, chunk);
    p.conflict = conflict;
    p.order = order;
    p
}

/// A shared-counter loop must be exact under every conflict-checking
/// policy, because retries re-execute on fresh state.
#[test]
fn counter_is_exact_under_all_checking_policies() {
    for conflict in [
        ConflictPolicy::Full,
        ConflictPolicy::Waw,
        ConflictPolicy::Raw,
    ] {
        for order in [CommitOrder::InOrder, CommitOrder::OutOfOrder] {
            for driver in [Driver::sequential(), Driver::threaded()] {
                let mut heap = Heap::new();
                let c = heap.alloc(ObjData::scalar_i64(0));
                let mut reds = RedVars::new();
                let p = params(conflict, order, 4, 2);
                run_loop(
                    &mut heap,
                    &mut reds,
                    &mut RangeSpace::new(0, 40),
                    &p,
                    driver,
                    |ctx, _| {
                        let v = ctx.tx.read_i64(c, 0);
                        ctx.tx.write_i64(c, 0, v + 1);
                    },
                )
                .unwrap();
                assert_eq!(
                    heap.get(c).i64s()[0],
                    40,
                    "{conflict:?}/{order:?} threaded={}",
                    driver.is_threaded()
                );
            }
        }
    }
}

/// DOALL (`NONE`) on a loop with disjoint writes is exact and conflict-free.
#[test]
fn doall_disjoint_writes_are_exact() {
    let mut heap = Heap::new();
    let v: AlterVec<i64> = AlterVec::new(&mut heap, 64);
    let mut reds = RedVars::new();
    let p = params(ConflictPolicy::None, CommitOrder::OutOfOrder, 4, 8);
    let stats = run_loop(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, 64),
        &p,
        Driver::threaded(),
        |ctx, i| v.set(ctx, i as usize, (i * i) as i64),
    )
    .unwrap();
    assert_eq!(stats.retries(), 0);
    assert_eq!(v.seq_get(&heap, 9), 81);
}

/// The determinism guarantee across the whole stack: a mixed loop over a
/// list and a vector produces the identical heap digest, sweep after
/// sweep, under both drivers and on repeated runs.
#[test]
fn full_stack_determinism() {
    let run = |driver: Driver| {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::from_iter(&mut heap, 0..32);
        let shared = heap.alloc(ObjData::zeros_i64(4));
        let mut reds = RedVars::new();
        let delta = reds.declare("delta", RedVal::I64(0));
        let mut p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 3, 4);
        p.reductions = vec![(delta, RedOp::Add)];
        for _sweep in 0..3 {
            let nodes = list.node_ids(&heap);
            run_loop(
                &mut heap,
                &mut reds,
                &mut alter::runtime::SeqSpace::new(nodes),
                &p,
                driver,
                |ctx, raw| {
                    let node = ObjId::from_index(raw as u32);
                    let v = list.value(ctx, node);
                    list.set_value(ctx, node, v + 1);
                    if v % 5 == 0 {
                        let s = ctx.tx.read_i64(shared, (v % 4) as usize);
                        ctx.tx.write_i64(shared, (v % 4) as usize, s + v);
                    }
                    ctx.red_add(delta, 1i64);
                },
            )
            .unwrap();
        }
        (heap.digest(), reds.get(delta).as_i64())
    };
    let (d1, r1) = run(Driver::sequential());
    let (d2, r2) = run(Driver::threaded());
    let (d3, r3) = run(Driver::threaded());
    assert_eq!(d1, d2);
    assert_eq!(d2, d3, "threaded runs must repeat exactly");
    assert_eq!(r1, r2);
    assert_eq!(r2, r3);
    assert_eq!(r1, 96, "delta counts every node visit in every sweep");
}

/// The simulated executor and the threaded executor commit identical state
/// (the simulator is a trustworthy stand-in for real parallel hardware).
#[test]
fn simulated_and_threaded_executions_agree() {
    let build = || {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(48));
        (heap, xs)
    };
    let body = |xs: ObjId| {
        move |ctx: &mut alter::runtime::TxCtx<'_>, i: u64| {
            let i = i as usize;
            let prev = if i > 0 {
                ctx.tx.read_f64(xs, i - 1)
            } else {
                1.0
            };
            ctx.tx.write_f64(xs, i, prev * 0.5 + i as f64);
        }
    };
    let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 4, 4);

    let (mut h1, xs1) = build();
    let mut reds1 = RedVars::new();
    run_loop(
        &mut h1,
        &mut reds1,
        &mut RangeSpace::new(0, 48),
        &p,
        Driver::threaded(),
        body(xs1),
    )
    .unwrap();

    let (mut h2, xs2) = build();
    let mut reds2 = RedVars::new();
    let (_, clock) = simulate_loop(
        &mut h2,
        &mut reds2,
        &mut RangeSpace::new(0, 48),
        &p,
        &CostModel::default(),
        body(xs2),
    )
    .unwrap();
    assert_eq!(h1.digest(), h2.digest());
    assert!(clock.par_units > 0.0);
}

/// End-to-end inference on the Figure 1 program finds exactly the paper's
/// answer: only `[StaleReads]`.
#[test]
fn inference_on_figure1_suggests_stale_reads() {
    let gs = GaussSeidel::dense(Scale::Inference);
    let report = infer(&gs, &InferConfig::default());
    assert!(report.stale_reads.is_success());
    assert!(!report.out_of_order.is_success());
    assert!(!report.tls.is_success());
    assert_eq!(report.valid_annotations, vec!["[StaleReads]".to_owned()]);
}

/// Every registered benchmark's best configuration runs to completion and
/// validates against its own sequential reference — the repository-level
/// smoke test of the whole evaluation.
#[test]
fn every_benchmark_best_config_validates() {
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        if name == "Labyrinth" {
            continue; // the one loop ALTER cannot parallelize (Table 3)
        }
        let reference = b.run_sequential();
        let probe = b.best_probe(4);
        let run = b
            .run_probe(&probe)
            .unwrap_or_else(|e| panic!("{name} aborted: {e}"));
        assert!(
            b.validate(&reference, &run.output),
            "{name} failed validation under {}",
            probe.describe()
        );
    }
}

/// The Table 3 headline: the four stale-tolerant benchmarks fail under
/// both speculation and out-of-order commit but succeed under snapshot
/// isolation.
#[test]
fn stale_only_benchmarks_match_the_headline() {
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        if !["GSdense", "GSsparse", "Floyd"].contains(&name.as_str()) {
            continue;
        }
        let reference = b.run_sequential();
        for model in [Model::Tls, Model::OutOfOrder] {
            let probe = Probe::new(model, 4, 16);
            let failed = match alter::runtime::quiet::quiet_panics(|| b.run_probe(&probe)) {
                Err(_) => true,
                Ok(run) => run.stats.retry_rate() > 0.5 || !b.validate(&reference, &run.output),
            };
            assert!(failed, "{name} must fail under {model}");
        }
        let stale = b.run_probe(&Probe::new(Model::StaleReads, 4, 16)).unwrap();
        assert!(
            b.validate(&reference, &stale.output),
            "{name} under StaleReads"
        );
    }
}
