//! Integration tests for the record/replay subsystem: JSONL codec
//! round-trip properties over randomized event sequences, journal
//! validation (truncation / reordering / field corruption), record→replay
//! identity across all twelve workloads, and the divergence bisector's
//! precision on a deliberately mutated journal.

use alter::runtime::replay::{diverge_bisect, ReplayOutcome};
use alter::trace::{
    from_jsonl, to_jsonl, trace_hash, ConflictKind, Event, Journal, JournalHeader, Phase, Profile,
    Recorder, RingRecorder,
};
use alter::workloads::{all_benchmarks, common::SplitMix64, find_benchmark, Benchmark, Scale};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// JSONL codec round-trip property
// ---------------------------------------------------------------------------

/// Draws one random event; `pick` selects the variant, so driving it with
/// `i % VARIANTS` guarantees every variant is exercised.
fn random_event(pick: usize, rng: &mut SplitMix64) -> Event {
    let ops = ["+", "*", "max", "min", "and", "or"];
    // Strings with escapes, quotes, and non-ASCII to stress the codec.
    let strings = [
        "",
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "näïve\n☃",
        "0:0-4,7:1-3",
    ];
    let s = |rng: &mut SplitMix64| strings[rng.next_u64() as usize % strings.len()].to_owned();
    let obj = alter::heap::ObjId::from_index(rng.next_u64() as u32 % 1000);
    match pick {
        0 => Event::RoundStart {
            round: rng.next_u64() % 1000,
            tasks: rng.next_u64() as u32 % 64,
            snapshot_slots: rng.next_u64() % 10_000,
        },
        1 => Event::TaskStart {
            seq: rng.next_u64() % 10_000,
            worker: rng.next_u64() as u32 % 8,
            iters: rng.next_u64() as u32 % 100,
        },
        2 => Event::TaskSets {
            seq: rng.next_u64() % 10_000,
            reads: s(rng),
            writes: s(rng),
        },
        3 => Event::ValidateOk {
            seq: rng.next_u64() % 10_000,
            validate_words: rng.next_u64() % 1_000_000,
        },
        4 => Event::ValidateConflict {
            seq: rng.next_u64() % 10_000,
            kind: if rng.next_u64().is_multiple_of(2) {
                ConflictKind::Raw
            } else {
                ConflictKind::Waw
            },
            obj,
            word: rng.next_u64() as u32 % 4096,
            winner_seq: rng.next_u64() % 10_000,
        },
        5 => Event::Commit {
            seq: rng.next_u64() % 10_000,
            read_words: rng.next_u64() % 1_000_000,
            write_words: rng.next_u64() % 1_000_000,
            allocs: rng.next_u64() as u32 % 100,
            frees: rng.next_u64() as u32 % 100,
        },
        6 => Event::Squash {
            seq: rng.next_u64() % 10_000,
            by_seq: rng.next_u64() % 10_000,
        },
        7 => Event::ReductionMerge {
            seq: rng.next_u64() % 10_000,
            var: rng.next_u64() as u32 % 16,
            op: ops[rng.next_u64() as usize % ops.len()],
        },
        8 => Event::Oom {
            words: rng.next_u64() % u64::MAX,
            budget: rng.next_u64(),
        },
        9 => Event::Crash { message: s(rng) },
        10 => Event::WorkBudgetExceeded {
            spent: rng.next_u64(),
            budget: rng.next_u64(),
        },
        11 => Event::PhaseProfile {
            round: rng.next_u64() % 1000,
            phase: Phase::ALL[rng.next_u64() as usize % Phase::ALL.len()],
            cost: rng.next_u64() % 1_000_000_000,
        },
        12 => Event::ProbeStart { annotation: s(rng) },
        13 => Event::ProbeOutcome {
            annotation: s(rng),
            outcome: s(rng),
        },
        _ => Event::RunEnd {
            rounds: rng.next_u64() % 1000,
            attempts: rng.next_u64() % 100_000,
            committed: rng.next_u64() % 100_000,
        },
    }
}

const VARIANTS: usize = 15;

#[test]
fn jsonl_round_trips_random_event_sequences() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::seed_from_u64(0xA17E_5000 + seed);
        let len = 64 + (rng.next_u64() as usize % 64);
        let events: Vec<Event> = (0..len)
            // `i % VARIANTS` guarantees every variant (incl. PhaseProfile)
            // appears in every sequence; the rng varies the payloads.
            .map(|i| random_event(i % VARIANTS, &mut rng))
            .collect();
        let text = to_jsonl(&events);
        let back = from_jsonl(&text).expect("canonical JSONL must parse back");
        assert_eq!(back, events, "seed {seed}: codec round trip lost data");
        // The canonical form is a fixed point: re-encoding is byte-identical.
        assert_eq!(to_jsonl(&back), text);
    }
}

// ---------------------------------------------------------------------------
// Recording helpers
// ---------------------------------------------------------------------------

/// Records `bench` under its best annotation with the given knobs; panics
/// if the ring drops events (journals must be complete).
fn record(bench: &dyn Benchmark, workers: usize, sets: bool, profile: bool) -> Vec<Event> {
    let mut probe = bench.best_probe(workers);
    probe.record_sets = sets;
    probe.profile_phases = profile;
    let rec = Arc::new(RingRecorder::default());
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "{}: ring dropped events", bench.name());
    rec.events()
}

fn journal_for(bench: &dyn Benchmark, events: Vec<Event>) -> Journal {
    let header = JournalHeader {
        workload: bench.name().to_owned(),
        annotation: "best".to_owned(),
        workers: 2,
        record_sets: false,
        profile_phases: false,
        pipeline_depth: 0,
        shards: 1,
        trace_hash: 0, // recomputed by Journal::new
    };
    Journal::new(header, events).expect("recorded stream is a valid journal")
}

// ---------------------------------------------------------------------------
// Journal header back-compat: absent pipeline/shards fields
// ---------------------------------------------------------------------------

/// Pre-PR-7 journals have no `pipeline` header field and pre-PR-8 journals
/// no `shards`; both must keep parsing (as lock-step / one shard) and must
/// re-serialize *canonically* — explicit fields, so one normalization pass
/// brings any legacy journal onto the current fixed-point form.
#[test]
fn legacy_headers_parse_with_defaults_and_reserialize_canonically() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0A17_E900 + seed);
        let pipeline = (rng.next_u64() % 8) as u32;
        let shards = 1u32 << (rng.next_u64() % 5);
        let header = JournalHeader {
            workload: "genome".to_owned(),
            annotation: "best".to_owned(),
            workers: 1 + (rng.next_u64() % 8) as u32,
            record_sets: rng.next_u64().is_multiple_of(2),
            profile_phases: rng.next_u64().is_multiple_of(2),
            pipeline_depth: pipeline,
            shards,
            trace_hash: 0, // recomputed by Journal::new
        };
        let events = vec![
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: rng.next_u64() % 16,
            },
            Event::ValidateOk {
                seq: 0,
                validate_words: rng.next_u64() % 1000,
            },
            Event::Commit {
                seq: 0,
                read_words: 0,
                write_words: rng.next_u64() % 1000,
                allocs: 0,
                frees: 0,
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 1,
                committed: 1,
            },
        ];
        let journal = Journal::new(header, events).expect("valid journal");
        let text = journal.to_jsonl();
        let head = text.lines().next().expect("header line");
        // The canonical header always spells both fields out...
        assert!(
            head.contains(&format!(",\"pipeline\":{pipeline}")),
            "{head}"
        );
        assert!(head.contains(&format!(",\"shards\":{shards}")), "{head}");
        // ...and non-default values survive a round trip.
        let back = Journal::from_jsonl(&text).expect("canonical journal reloads");
        assert_eq!(back.header(), journal.header(), "seed {seed}");

        // A legacy header with both fields absent parses as lock-step on
        // the unsharded heap.
        let legacy = text
            .replacen(&format!(",\"pipeline\":{pipeline}"), "", 1)
            .replacen(&format!(",\"shards\":{shards}"), "", 1);
        assert_ne!(legacy, text, "seed {seed}: fields must have been stripped");
        let parsed = Journal::from_jsonl(&legacy).expect("legacy journal must parse");
        assert_eq!(parsed.header().pipeline_depth, 0, "seed {seed}");
        assert_eq!(parsed.header().shards, 1, "seed {seed}");

        // Re-serializing normalizes: the defaults become explicit and the
        // result is a fixed point of parse → serialize.
        let canon = parsed.to_jsonl();
        let chead = canon.lines().next().expect("header line");
        assert!(chead.contains(",\"pipeline\":0"), "{chead}");
        assert!(chead.contains(",\"shards\":1"), "{chead}");
        let again = Journal::from_jsonl(&canon).expect("normalized journal reloads");
        assert_eq!(again.to_jsonl(), canon, "seed {seed}: not a fixed point");
    }
}

// ---------------------------------------------------------------------------
// Journal validation: truncation, reordering, corruption
// ---------------------------------------------------------------------------

#[test]
fn journal_rejects_truncated_reordered_and_corrupted_files() {
    let bench = find_benchmark("genome").expect("genome is registered");
    let journal = journal_for(bench.as_ref(), record(bench.as_ref(), 2, false, false));
    let text = journal.to_jsonl();
    assert!(Journal::from_jsonl(&text).is_ok());

    // Truncation: cut the terminal event.
    let lines: Vec<&str> = text.lines().collect();
    let cut = lines[..lines.len() - 1].join("\n");
    let err = Journal::from_jsonl(&cut).expect_err("truncated journal must be rejected");
    assert!(err.msg.contains("truncated"), "{err}");

    // Reordering: swap two round_start lines (payloads differ by round
    // number, so the strict 0,1,2,… check fires).
    let starts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"ev\":\"round_start\""))
        .map(|(i, _)| i)
        .collect();
    assert!(starts.len() >= 2, "genome runs more than one round");
    let mut swapped = lines.clone();
    swapped.swap(starts[0], starts[1]);
    let err =
        Journal::from_jsonl(&swapped.join("\n")).expect_err("reordered journal must be rejected");
    assert!(err.msg.contains("out-of-order round"), "{err}");

    // Field corruption that still parses: bump a numeric payload. The
    // header hash no longer matches the events.
    let target = lines
        .iter()
        .find(|l| l.contains("\"ev\":\"commit\""))
        .expect("genome commits at least once");
    let corrupted = text.replace(
        target,
        &target.replace("\"read_words\":", "\"read_words\":9"),
    );
    assert_ne!(corrupted, text);
    let err = Journal::from_jsonl(&corrupted).expect_err("corrupted journal must be rejected");
    assert!(err.msg.contains("hash mismatch"), "{err}");
}

// ---------------------------------------------------------------------------
// Record → replay identity over every workload
// ---------------------------------------------------------------------------

#[test]
fn record_replay_identity_all_workloads() {
    for bench in all_benchmarks(Scale::Inference) {
        let journal = journal_for(bench.as_ref(), record(bench.as_ref(), 2, false, false));
        // Serialize and reload — replay consumes journals from disk.
        let reloaded = Journal::from_jsonl(&journal.to_jsonl()).expect("journal reloads");
        let fresh = record(bench.as_ref(), 2, false, false);
        match diverge_bisect(reloaded.events(), &fresh) {
            ReplayOutcome::Identical { events, hash } => {
                assert_eq!(events, reloaded.events().len());
                assert_eq!(hash, reloaded.header().trace_hash);
            }
            ReplayOutcome::Diverged(d) => {
                panic!("{} replay diverged:\n{}", bench.name(), d.render())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Divergence fixture: the bisector pinpoints a deliberate mutation
// ---------------------------------------------------------------------------

#[test]
fn deliberate_divergence_is_bisected_to_the_exact_event() {
    let bench = find_benchmark("genome").expect("genome is registered");
    let fresh = record(bench.as_ref(), 2, true, true);
    let mut mutated = fresh.clone();

    // Mutate one mid-run commit event. Journals self-hash on construction
    // (`Journal::new` recomputes the header hash), so the tampered journal
    // is structurally valid — only replay can catch it.
    let target = mutated
        .iter()
        .enumerate()
        .filter(|(_, ev)| matches!(ev, Event::Commit { .. }))
        .map(|(i, _)| i)
        .nth(5)
        .expect("genome commits more than five tasks");
    let (expect_round, expect_seq) = {
        let round = mutated[..target]
            .iter()
            .rev()
            .find_map(|ev| match ev {
                Event::RoundStart { round, .. } => Some(*round),
                _ => None,
            })
            .expect("commit happens inside a round");
        let seq = match &mutated[target] {
            Event::Commit { seq, .. } => *seq,
            _ => unreachable!(),
        };
        (round, seq)
    };
    if let Event::Commit { read_words, .. } = &mut mutated[target] {
        *read_words += 1;
    }
    let journal = journal_for(bench.as_ref(), mutated);
    let reloaded = Journal::from_jsonl(&journal.to_jsonl()).expect("tampered journal self-hashes");

    match diverge_bisect(reloaded.events(), &fresh) {
        ReplayOutcome::Diverged(d) => {
            assert_eq!(d.index, target, "bisector must land on the mutated event");
            assert_eq!(d.round, expect_round);
            assert_eq!(d.seq, Some(expect_seq));
            assert_eq!(d.expected, Some(reloaded.events()[target].clone()));
            assert_eq!(d.actual, Some(fresh[target].clone()));
            assert_eq!(d.prefix_hash, reloaded.prefix_hash(target));
            assert_eq!(d.expected_hash, reloaded.header().trace_hash);
            assert_eq!(d.actual_hash, trace_hash(&fresh));
            let text = d.render();
            assert!(text.contains(&format!("round {expect_round}")), "{text}");
        }
        ReplayOutcome::Identical { .. } => panic!("mutation must be detected"),
    }
}

// ---------------------------------------------------------------------------
// Phase profiler determinism and purity
// ---------------------------------------------------------------------------

#[test]
fn phase_profile_is_deterministic_and_observationally_pure() {
    let bench = find_benchmark("k-means").expect("k-means is registered");
    let profiled = record(bench.as_ref(), 2, false, true);
    let again = record(bench.as_ref(), 2, false, true);
    assert_eq!(trace_hash(&profiled), trace_hash(&again));

    // Stripping phase_profile events recovers the unprofiled trace.
    let plain = record(bench.as_ref(), 2, false, false);
    let stripped: Vec<Event> = profiled
        .iter()
        .filter(|ev| !matches!(ev, Event::PhaseProfile { .. }))
        .cloned()
        .collect();
    assert_eq!(trace_hash(&stripped), trace_hash(&plain));

    // The folded profile covers all four round phases with nonzero cost.
    let profile = Profile::from_events(&profiled);
    for phase in [
        Phase::Snapshot,
        Phase::Execute,
        Phase::Validate,
        Phase::Commit,
    ] {
        assert!(
            profile.cost(phase) > 0,
            "k-means charges nothing to {phase}?"
        );
    }
    assert_eq!(profile.cost(Phase::InferProbe), 0);
}
