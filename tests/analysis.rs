//! Cross-validation of the static analyzer (`alter-analyze`) against the
//! observed behaviour of all 12 workloads:
//!
//! * pruning identity — inference with the analyzer enabled selects the
//!   identical annotations as the paper's exhaustive search, in strictly
//!   fewer probes wherever anything was pruned, and a must-fail verdict
//!   never contradicts an observed probe pass;
//! * determinism — summaries, classifier verdicts, and the linter's
//!   canonical JSON are byte-identical across runs;
//! * sanitizer — every workload's canonical best-configuration trace
//!   passes the isolation sanitizer, and deliberately corrupted traces
//!   (reordered verdicts, overlapping committed write-sets) are rejected.

use alter::analyze::{
    diagnostics_json, lint, predict, sanitize, AnalyzeConfig, LintTarget, SanitizeConfig, Severity,
};
use alter::infer::{infer, InferConfig, InferReport, Model, Outcome};
use alter::runtime::Annotation;
use alter::trace::{Event, Recorder, RingRecorder};
use alter::workloads::{all_benchmarks, Benchmark, Scale};
use std::collections::HashMap;
use std::sync::Arc;

/// The lint target for a workload's paper-chosen best configuration.
fn best_target(bench: &dyn Benchmark) -> LintTarget {
    let (model, reduction) = bench.best_config();
    match model {
        Model::Doall => LintTarget::Doall,
        Model::Tls => LintTarget::Tls,
        Model::OutOfOrder | Model::StaleReads => {
            let ann = match reduction {
                None => format!("[{model}]"),
                Some((var, op)) => format!("[{model} + Reduction({var}, {op})]"),
            };
            let ann: Annotation = ann.parse().expect("best config parses");
            LintTarget::Annotated(ann)
        }
    }
}

/// Observed outcomes of the exhaustive (no-pruning) report, keyed by the
/// probe-description strings `PrunedCandidate.annotation` uses.
fn observed_outcomes(report: &InferReport) -> HashMap<String, Outcome> {
    let mut map = HashMap::new();
    map.insert("TLS".to_owned(), report.tls.clone());
    map.insert("OutOfOrder".to_owned(), report.out_of_order.clone());
    map.insert("StaleReads".to_owned(), report.stale_reads.clone());
    for r in &report.reductions {
        map.insert(
            format!("{} + Reduction({}, {})", r.model, r.var, r.op),
            r.outcome.clone(),
        );
    }
    map
}

/// The acceptance criterion of the analyzer: on every workload, pruning
/// changes the cost of inference but never its answer, and nothing the
/// analyzer prunes is observed to succeed when actually run.
#[test]
fn pruning_preserves_the_inferred_annotations_on_all_workloads() {
    let pruned_cfg = InferConfig::default();
    assert!(pruned_cfg.prune, "pruning is the default");
    let exhaustive_cfg = InferConfig {
        prune: false,
        ..InferConfig::default()
    };
    let mut workloads_with_pruning = 0usize;
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        let pruned = infer(b.as_ref(), &pruned_cfg);
        let exhaustive = infer(b.as_ref(), &exhaustive_cfg);

        // Identity: the same annotations are reported valid either way.
        assert_eq!(
            pruned.valid_annotations, exhaustive.valid_annotations,
            "{name}: pruning changed the inferred annotations"
        );
        assert_eq!(
            pruned.reduction_cell(),
            exhaustive.reduction_cell(),
            "{name}"
        );
        assert_eq!(pruned.dep, exhaustive.dep, "{name}");
        assert!(exhaustive.pruned_candidates.is_empty(), "{name}");
        assert!(exhaustive.static_pruned.is_empty(), "{name}");

        // Cost: strictly fewer probes exactly when something was pruned —
        // by the static tier, the dynamic predictor, or both.
        if pruned.pruned_candidates.is_empty() && pruned.static_pruned.is_empty() {
            assert_eq!(pruned.probes_run, exhaustive.probes_run, "{name}");
        } else {
            assert!(
                pruned.probes_run < exhaustive.probes_run,
                "{name}: {} dynamic + {} static pruned candidates but {} vs {} probes",
                pruned.pruned_candidates.len(),
                pruned.static_pruned.len(),
                pruned.probes_run,
                exhaustive.probes_run
            );
            workloads_with_pruning += 1;
        }

        // Soundness: a must-fail verdict never contradicts an observed
        // pass — every dynamically pruned candidate fails when actually
        // run.
        let observed = observed_outcomes(&exhaustive);
        for pc in &pruned.pruned_candidates {
            let o = observed.get(&pc.annotation).unwrap_or_else(|| {
                panic!(
                    "{name}: pruned candidate {} not in the exhaustive report",
                    pc.annotation
                )
            });
            assert!(
                !o.is_success(),
                "{name}: {} was pruned ({}) but succeeds when run",
                pc.annotation,
                pc.reason
            );
        }
        // The static tier's verdicts are two-sided: a ProvedSafe skip must
        // correspond to an observed success, a ProvedUnsound skip to an
        // observed failure.
        for pc in &pruned.static_pruned {
            let o = observed.get(&pc.annotation).unwrap_or_else(|| {
                panic!(
                    "{name}: statically pruned candidate {} not in the exhaustive report",
                    pc.annotation
                )
            });
            assert_eq!(
                o.is_success(),
                pc.outcome.is_success(),
                "{name}: {} statically recorded as {} ({}) but observed {}",
                pc.annotation,
                pc.outcome,
                pc.reason,
                o
            );
        }
    }
    // Dynamic tier: K-means, Labyrinth, GSdense, GSsparse, Floyd, SG3D;
    // static tier adds BarnesHut, FFT, HMM (proved safe) and AggloClust
    // (proved o.o.m.). Only Genome and SSCA2 run everything.
    assert!(
        workloads_with_pruning >= 10,
        "the two tiers pruned on only {workloads_with_pruning} of 12 workloads"
    );
}

/// Summaries, verdicts, and the linter's canonical JSON are pure functions
/// of the workload: byte-identical across independent runs.
#[test]
fn analyzer_diagnostics_are_deterministic_on_all_workloads() {
    let icfg = InferConfig::default();
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        let s1 = b.probe_summary();
        let s2 = b.probe_summary();
        assert_eq!(s1, s2, "{name}: summary replay is not deterministic");

        let acfg = AnalyzeConfig {
            workers: icfg.workers,
            chunk: icfg.chunk,
            high_conflict_threshold: icfg.high_conflict_threshold,
            budget_words: b.tracked_budget_words().unwrap_or(icfg.budget_words),
            ..AnalyzeConfig::default()
        };
        for model in Model::TABLE3 {
            let p = model.exec_params(icfg.workers, icfg.chunk);
            assert_eq!(
                predict(&s1, p.conflict, p.order, &[], &acfg),
                predict(&s2, p.conflict, p.order, &[], &acfg),
                "{name}/{model}: verdict is not deterministic"
            );
        }

        let target = best_target(b.as_ref());
        let json1 = diagnostics_json(&lint(&s1, &target));
        let json2 = diagnostics_json(&lint(&s2, &target));
        assert_eq!(json1, json2, "{name}: linter JSON is not byte-stable");

        // The paper's chosen annotation is sound on its own workload: the
        // linter must not flag an error for it (warnings — e.g. pervasive
        // WAW retries the paper resolves by testing — are fine).
        let diags = lint(&s1, &target);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{name}: best config {target} flagged unsound: {:?}",
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect::<Vec<_>>()
        );
    }
}

/// Records the workload's best-configuration run with full `task_sets`
/// payloads — the canonical trace `alter-lint` audits.
fn canonical_trace(bench: &dyn Benchmark) -> (Vec<Event>, SanitizeConfig) {
    let rec = Arc::new(RingRecorder::new(1 << 20));
    let mut probe = bench.best_probe(4);
    probe.record_sets = true;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    bench
        .run_probe(&probe)
        .unwrap_or_else(|e| panic!("{} best config aborted: {e}", bench.name()));
    assert_eq!(rec.dropped(), 0, "{}: ring too small", bench.name());
    let params = probe.model.exec_params(probe.workers, probe.chunk);
    (
        rec.events(),
        SanitizeConfig {
            conflict: params.conflict,
            order: params.order,
        },
    )
}

/// Every workload's canonical trace satisfies the isolation invariants.
#[test]
fn sanitizer_passes_every_workload_canonical_trace() {
    for b in all_benchmarks(Scale::Inference) {
        let (events, cfg) = canonical_trace(b.as_ref());
        assert!(!events.is_empty(), "{}: empty trace", b.name());
        let violations = sanitize(&events, &cfg);
        assert!(
            violations.is_empty(),
            "{}: {} isolation violation(s), first: {}",
            b.name(),
            violations.len(),
            violations[0]
        );
    }
}

/// Event indices of the verdicts (`validate_ok`) inside each round of a
/// trace, used to build seeded corruptions below.
fn rounds_of_validate_oks(events: &[Event]) -> Vec<Vec<usize>> {
    let mut rounds: Vec<Vec<usize>> = Vec::new();
    for (idx, ev) in events.iter().enumerate() {
        match ev {
            Event::RoundStart { .. } => rounds.push(Vec::new()),
            Event::ValidateOk { .. } => {
                if let Some(r) = rounds.last_mut() {
                    r.push(idx);
                }
            }
            _ => {}
        }
    }
    rounds
}

/// A deliberately corrupted real trace — the verdicts of two tasks in one
/// round swapped, breaking the deterministic ascending commit order — must
/// be rejected.
#[test]
fn reordered_commit_order_is_rejected() {
    // Genome under [StaleReads] at 4 workers: plenty of multi-commit
    // rounds.
    let b = &all_benchmarks(Scale::Inference)[0];
    let (mut events, cfg) = canonical_trace(b.as_ref());
    let round = rounds_of_validate_oks(&events)
        .into_iter()
        .find(|r| r.len() >= 2)
        .expect("a round with two commits");
    events.swap(round[0], round[1]);
    let violations = sanitize(&events, &cfg);
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("validation order must ascend")),
        "swapped verdicts not caught: {violations:?}"
    );
}

/// A corrupted trace where one committed task's recorded write set is
/// overwritten with another committed task's — overlapping write sets
/// under StaleReads — must be rejected.
#[test]
fn overlapping_committed_write_sets_are_rejected() {
    let b = &all_benchmarks(Scale::Inference)[0];
    let (mut events, cfg) = canonical_trace(b.as_ref());
    // Find a round with two validate_oks and copy the first committer's
    // write set over the second's.
    let round = rounds_of_validate_oks(&events)
        .into_iter()
        .find(|r| r.len() >= 2)
        .expect("a round with two commits");
    let first_writes = events[..round[0]]
        .iter()
        .rev()
        .find_map(|ev| match ev {
            Event::TaskSets { writes, .. } if !writes.is_empty() => Some(writes.clone()),
            _ => None,
        })
        .expect("recorded sets for the first committer");
    let second_sets = events[..round[1]]
        .iter()
        .rposition(|ev| matches!(ev, Event::TaskSets { .. }))
        .expect("recorded sets for the second committer");
    match &mut events[second_sets] {
        Event::TaskSets { writes, .. } => *writes = first_writes,
        _ => unreachable!(),
    }
    let violations = sanitize(&events, &cfg);
    assert!(
        violations.iter().any(|v| {
            v.message.contains("committed write sets overlap")
                || v.message.contains("validated ok but its sets conflict")
        }),
        "overlapping write sets not caught: {violations:?}"
    );
}
