//! Integration tests for the `alter-check` schedule-space model checker:
//! a seeded two-sided property test of the per-schedule oracle (disjoint
//! permutations sanitize clean, conflicting reorderings are flagged), the
//! negative-fixture corpus of hand-corrupted journals with byte-for-byte
//! expected counterexamples, and the end-to-end acceptance path — a
//! deliberately-unsound DOALL run whose counterexample journals replay
//! through the `alter-replay diff` bisector.

use alter::analyze::{check_events, check_journal, sanitize, CheckConfig, SanitizeConfig};
use alter::heap::ObjId;
use alter::infer::{Model, Probe};
use alter::runtime::replay::{diverge_bisect, ReplayOutcome};
use alter::runtime::{CommitOrder, ConflictPolicy};
use alter::trace::{ConflictKind, Event, Journal, JournalHeader, Recorder, RingRecorder};
use alter::workloads::{common::SplitMix64, find_benchmark};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn cfg(conflict: ConflictPolicy, order: CommitOrder) -> CheckConfig {
    CheckConfig::new(conflict, order)
}

// ---------------------------------------------------------------------------
// Seeded property test: the oracle from both sides
// ---------------------------------------------------------------------------

/// One synthetic task: its (disjoint by construction) write range on
/// object 1 and whether the recorded verdict is a conflict.
#[derive(Clone)]
struct SynthTask {
    writes: String,
    /// `Some((winner, obj, word))` when the recorded verdict is a WAW
    /// conflict against task `winner`.
    conflict: Option<(usize, u32, u32)>,
}

/// Renders a round of synthetic tasks as a recorded event stream under
/// the given commit permutation, relabelling sequence numbers to schedule
/// positions exactly as the checker synthesizes candidate schedules.
fn render_round(tasks: &[SynthTask], perm: &[usize]) -> Vec<Event> {
    let n = tasks.len();
    let mut pos = vec![0usize; n];
    for (p, &t) in perm.iter().enumerate() {
        pos[t] = p;
    }
    let mut evs = vec![Event::RoundStart {
        round: 0,
        tasks: n as u32,
        snapshot_slots: 0,
    }];
    let mut commits = 0u64;
    for (p, &t) in perm.iter().enumerate() {
        evs.push(Event::TaskSets {
            seq: p as u64,
            reads: String::new(),
            writes: tasks[t].writes.clone(),
        });
        match tasks[t].conflict {
            Some((winner, obj, word)) => evs.push(Event::ValidateConflict {
                seq: p as u64,
                kind: ConflictKind::Waw,
                obj: ObjId::from_index(obj),
                word,
                winner_seq: pos[winner] as u64,
            }),
            None => {
                evs.push(Event::ValidateOk {
                    seq: p as u64,
                    validate_words: 0,
                });
                evs.push(Event::Commit {
                    seq: p as u64,
                    read_words: 0,
                    write_words: 4,
                    allocs: 0,
                    frees: 0,
                });
                commits += 1;
            }
        }
    }
    evs.push(Event::RunEnd {
        rounds: 1,
        attempts: n as u64,
        committed: commits,
    });
    evs
}

/// Fisher–Yates shuffle driven by the test's seeded generator.
fn shuffle(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[test]
fn oracle_is_two_sided_over_seeded_rounds() {
    let scfg = SanitizeConfig {
        conflict: ConflictPolicy::Waw,
        order: CommitOrder::OutOfOrder,
    };
    let ccfg = cfg(ConflictPolicy::Waw, CommitOrder::OutOfOrder);
    for seed in 0..50u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0D10_C0DE + seed);
        let n = 3 + (rng.next_u64() % 4) as usize; // 3..=6 tasks

        // Soundness side: pairwise-disjoint committed writers. Every
        // permutation of the commit order must sanitize clean, and the
        // checker must collapse the n! schedules to one representative.
        let disjoint: Vec<SynthTask> = (0..n)
            .map(|k| SynthTask {
                writes: format!("1:{}-{}", 8 * k, 8 * k + 4),
                conflict: None,
            })
            .collect();
        let identity: Vec<usize> = (0..n).collect();
        let report = check_events(&render_round(&disjoint, &identity), &ccfg)
            .expect("synthetic round extracts");
        assert!(report.sound(), "seed {seed}: {:?}", report.unsound);
        assert_eq!(
            report.explored, 1,
            "seed {seed}: disjoint round is one trace"
        );
        assert_eq!(
            report.naive_schedules,
            (1..=n as u64).product::<u64>(),
            "seed {seed}"
        );
        for _ in 0..3 {
            let perm = shuffle(n, &mut rng);
            let permuted = render_round(&disjoint, &perm);
            assert_eq!(
                sanitize(&permuted, &scfg),
                vec![],
                "seed {seed}: disjoint permutation {perm:?} must sanitize clean"
            );
        }

        // Completeness side: make one later task overlap an earlier one,
        // with the honest recorded conflict. Any permutation that commits
        // the loser before its winner must be flagged.
        let mut tasks = disjoint.clone();
        let winner = (rng.next_u64() % (n as u64 - 1)) as usize;
        let loser = winner + 1 + (rng.next_u64() % (n as u64 - 1 - winner as u64)) as usize;
        let word = (8 * winner + 2) as u32;
        tasks[loser] = SynthTask {
            writes: format!("1:{}-{}", word, word + 4),
            conflict: Some((winner, 1, word)),
        };

        // The recorded (identity) journal is valid, and the checker finds
        // exactly one extra representative — the flipped conflict edge —
        // and flags it.
        let report = check_events(&render_round(&tasks, &identity), &ccfg).expect("round extracts");
        assert!(report.sound(), "seed {seed}: {:?}", report.unsound);
        assert_eq!(
            report.explored, 2,
            "seed {seed}: one conflict edge, two traces"
        );
        assert_eq!(
            report.flagged, 1,
            "seed {seed}: the reordering must be flagged"
        );

        // And a hand-built permutation that reorders the conflicting pair
        // is rejected by the sanitizer: the loser's claimed winner has not
        // committed yet at its new position.
        let mut perm = shuffle(n, &mut rng);
        let (pw, pl) = (
            perm.iter().position(|&t| t == winner).unwrap(),
            perm.iter().position(|&t| t == loser).unwrap(),
        );
        if pw < pl {
            perm.swap(pw, pl);
        }
        let reordered = render_round(&tasks, &perm);
        assert!(
            !sanitize(&reordered, &scfg).is_empty(),
            "seed {seed}: conflicting reorder {perm:?} must be flagged"
        );
    }
}

// ---------------------------------------------------------------------------
// Negative-fixture corpus: hand-corrupted journals, exact counterexamples
// ---------------------------------------------------------------------------

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Golden-file assertion: compares `content` byte-for-byte against the
/// committed fixture; set `ALTER_UPDATE_FIXTURES=1` to regenerate.
fn assert_golden(path: &Path, content: &str) {
    if std::env::var("ALTER_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::write(path, content).expect("write fixture");
    }
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with ALTER_UPDATE_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        committed,
        content,
        "fixture {} is out of date; regenerate with ALTER_UPDATE_FIXTURES=1",
        path.display()
    );
}

fn fixture_journal(name: &str, annotation: &str, events: Vec<Event>) -> String {
    let header = JournalHeader {
        workload: name.to_owned(),
        annotation: annotation.to_owned(),
        workers: 4,
        record_sets: true,
        profile_phases: false,
        pipeline_depth: 0,
        shards: 1,
        trace_hash: 0, // recomputed by Journal::new
    };
    Journal::new(header, events)
        .expect("fixture is structurally valid")
        .to_jsonl()
}

fn sets(seq: u64, reads: &str, writes: &str) -> Event {
    Event::TaskSets {
        seq,
        reads: reads.to_owned(),
        writes: writes.to_owned(),
    }
}

fn ok_commit(seq: u64, write_words: u64) -> [Event; 2] {
    [
        Event::ValidateOk {
            seq,
            validate_words: 0,
        },
        Event::Commit {
            seq,
            read_words: 0,
            write_words,
            allocs: 0,
            frees: 0,
        },
    ]
}

/// Runs one corrupted-journal fixture end to end: the journal bytes and
/// the rendered counterexample are both golden-checked, and the
/// divergence must land on the expected event pair.
fn run_fixture(
    journal_file: &str,
    text: String,
    config: CheckConfig,
    expect: impl FnOnce(&alter::runtime::replay::Divergence),
) {
    assert_golden(&fixture_path(journal_file), &text);
    let committed = std::fs::read_to_string(fixture_path(journal_file)).expect("fixture committed");
    let journal = Journal::from_jsonl(&committed).expect("fixture parses as a journal");
    let report = check_journal(&journal, &config).expect("fixture extracts");
    assert_eq!(report.unsound_rounds, 1, "fixture must be rejected");
    let u = &report.unsound[0];
    expect(&u.divergence);
    let expected_file = format!("{}.expected", journal_file.trim_end_matches(".journal"));
    assert_golden(&fixture_path(&expected_file), &u.divergence.render());
}

/// Overlapping committed write sets under the StaleReads annotation: task
/// 1 claims `validate_ok` but its write set overlaps task 0's.
#[test]
fn fixture_overlapping_commits_is_rejected() {
    let mut evs = vec![Event::RoundStart {
        round: 0,
        tasks: 2,
        snapshot_slots: 0,
    }];
    evs.push(sets(0, "", "1:0-4"));
    evs.extend(ok_commit(0, 4));
    evs.push(sets(1, "", "1:2-6"));
    evs.extend(ok_commit(1, 4));
    evs.push(Event::RunEnd {
        rounds: 1,
        attempts: 2,
        committed: 2,
    });
    run_fixture(
        "overlap-commit.journal",
        fixture_journal("Genome", "stalereads", evs),
        cfg(ConflictPolicy::Waw, CommitOrder::OutOfOrder),
        |d| {
            assert_eq!(d.seq, Some(1));
            assert!(
                matches!(
                    d.expected,
                    Some(Event::ValidateConflict {
                        kind: ConflictKind::Waw,
                        ..
                    })
                ),
                "{d:?}"
            );
            assert!(matches!(d.actual, Some(Event::ValidateOk { .. })), "{d:?}");
        },
    );
}

/// Squash-discipline violation under TLS (in-order commit): task 2 is
/// squashed, but the journal attributes it to task 0 — the round's first
/// failure was task 1.
#[test]
fn fixture_squash_violation_is_rejected() {
    let mut evs = vec![Event::RoundStart {
        round: 0,
        tasks: 3,
        snapshot_slots: 0,
    }];
    evs.push(sets(0, "", "1:0-4"));
    evs.extend(ok_commit(0, 4));
    evs.push(sets(1, "1:2-6", ""));
    evs.push(Event::ValidateConflict {
        seq: 1,
        kind: ConflictKind::Raw,
        obj: ObjId::from_index(1),
        word: 2,
        winner_seq: 0,
    });
    evs.push(Event::Squash { seq: 2, by_seq: 0 });
    evs.push(Event::RunEnd {
        rounds: 1,
        attempts: 3,
        committed: 1,
    });
    run_fixture(
        "squash-violation.journal",
        fixture_journal("Genome", "tls", evs),
        cfg(ConflictPolicy::Raw, CommitOrder::InOrder),
        |d| {
            assert_eq!(d.seq, Some(2));
            assert_eq!(
                d.expected,
                Some(Event::Squash { seq: 2, by_seq: 1 }),
                "squash must be attributed to the first failure"
            );
            assert_eq!(d.actual, Some(Event::Squash { seq: 2, by_seq: 0 }));
        },
    );
}

/// Stale read under the snapshot-isolation (OutOfOrder/RAW) annotation:
/// task 1 reads words task 0 committed this round but still claims
/// `validate_ok` — its read was stale and RAW checking must catch it.
#[test]
fn fixture_stale_read_is_rejected() {
    let mut evs = vec![Event::RoundStart {
        round: 0,
        tasks: 2,
        snapshot_slots: 0,
    }];
    evs.push(sets(0, "", "1:0-4"));
    evs.extend(ok_commit(0, 4));
    evs.push(sets(1, "1:0-2", "2:0-4"));
    evs.extend(ok_commit(1, 4));
    evs.push(Event::RunEnd {
        rounds: 1,
        attempts: 2,
        committed: 2,
    });
    run_fixture(
        "stale-read.journal",
        fixture_journal("Genome", "outoforder", evs),
        cfg(ConflictPolicy::Raw, CommitOrder::OutOfOrder),
        |d| {
            assert_eq!(d.seq, Some(1));
            assert!(
                matches!(
                    d.expected,
                    Some(Event::ValidateConflict {
                        kind: ConflictKind::Raw,
                        ..
                    })
                ),
                "{d:?}"
            );
            assert!(matches!(d.actual, Some(Event::ValidateOk { .. })), "{d:?}");
        },
    );
}

// ---------------------------------------------------------------------------
// Acceptance: a deliberately-unsound DOALL run replays through diff
// ---------------------------------------------------------------------------

#[test]
fn doall_counterexample_replays_through_the_diff_bisector() {
    let bench = find_benchmark("k-means").expect("k-means is registered");
    let mut probe = Probe::new(Model::Doall, 4, bench.chunk_factor());
    probe.record_sets = true;
    let rec = Arc::new(RingRecorder::default());
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    bench
        .run_probe(&probe)
        .expect("k-means completes under DOALL (wrong answer, no abort)");
    assert_eq!(rec.dropped(), 0);

    let report = check_events(
        &rec.events(),
        &cfg(ConflictPolicy::None, CommitOrder::OutOfOrder),
    )
    .expect("recorded stream extracts");
    assert!(
        !report.sound(),
        "k-means under DOALL must be schedule-unsound (every task writes the centroids)"
    );
    let u = &report.unsound[0];

    // Package both synthesized streams as standalone journals, round-trip
    // them through the JSONL codec, and bisect — exactly what
    // `alter-check --cex` + `alter-replay diff` do.
    let journal = |events: &[Event]| {
        let header = JournalHeader {
            workload: "K-means".to_owned(),
            annotation: "doall".to_owned(),
            workers: 4,
            record_sets: true,
            profile_phases: false,
            pipeline_depth: 0,
            shards: 1,
            trace_hash: 0,
        };
        let j = Journal::new(header, events.to_vec()).expect("counterexample stream journals");
        Journal::from_jsonl(&j.to_jsonl()).expect("counterexample journal reloads")
    };
    let expected = journal(&u.expected);
    let actual = journal(&u.actual);
    match diverge_bisect(expected.events(), actual.events()) {
        ReplayOutcome::Diverged(d) => {
            assert_eq!(
                *d, *u.divergence,
                "diff must reproduce the stored counterexample"
            );
            let text = d.render();
            assert!(text.contains("replay divergence"), "{text}");
        }
        ReplayOutcome::Identical { .. } => {
            panic!("counterexample streams must diverge under the bisector")
        }
    }
}
