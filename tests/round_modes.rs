//! Round-mode invisibility sweep: the persistent worker pool, the
//! incremental snapshot cache, the ticketed pipeline committer, and the
//! sharded versioned heap are pure throughput optimizations, so every
//! workload must produce a byte-identical event transcript — and therefore
//! the same trace hash, the same program output (the heap digest each
//! workload extracts), and the same semantic `RunStats` — across all
//! combinations of {sequential, threaded+pool} × {incremental, full}
//! snapshots × {lock-step, pipelined at depth 1 and 4} × heap shard counts
//! {1, 4, 16}, at 1, 2, and 8 workers.
//!
//! Drive-mode bookkeeping (`pool_round_handoffs`, the ticket counters, the
//! stall/idle telemetry — everything `RunStats::modulo_drive_mode` masks)
//! and snapshot-economics counters (`snapshot_slots_copied`,
//! `snapshot_pages_reused`) are the *only* fields allowed to differ;
//! everything else in `RunStats` is part of the observable semantics and is
//! compared exactly. Shard counts above 1 additionally move the fast-path
//! accounting — which fingerprint probes ran and how many words the exact
//! scans compared (`fingerprint_hits`/`rejects`, `exact_scan_words`, and
//! the `shard_*` trio) — but never any verdict, so sharded runs compare
//! with those counters masked on top. Pipeline depth 1 must degenerate all
//! the way: its *full* `RunStats` — stall model included — equals the
//! pooled lock-step run's. Direct final-heap equality across drive modes
//! is asserted at the engine level (`alter-runtime`'s
//! `threaded_and_sequential_drivers_are_identical`); here each workload's
//! output is the heap projection being compared.

use alter::infer::ProgramOutput;
use alter::runtime::RunStats;
use alter::trace::{to_jsonl, trace_hash, Recorder, RingRecorder};
use alter::workloads::{all_benchmarks, Benchmark, Scale};
use std::sync::Arc;

/// One drive-mode configuration of the sweep.
#[derive(Clone, Copy, Debug)]
struct Mode {
    threaded: bool,
    worker_pool: bool,
    incremental: bool,
    pipelined: bool,
    depth: usize,
    shards: usize,
}

impl Mode {
    const fn lock_step(threaded: bool, worker_pool: bool, incremental: bool) -> Mode {
        Mode {
            threaded,
            worker_pool,
            incremental,
            pipelined: false,
            depth: 1,
            shards: 1,
        }
    }

    const fn pipelined(depth: usize) -> Mode {
        Mode {
            threaded: true,
            worker_pool: true,
            incremental: true,
            pipelined: true,
            depth,
            shards: 1,
        }
    }

    /// The pooled lock-step driver over a sharded heap: the shard count is
    /// the only knob turned, so any visible difference is the heap's fault.
    const fn sharded(shards: usize) -> Mode {
        Mode {
            threaded: true,
            worker_pool: true,
            incremental: true,
            pipelined: false,
            depth: 1,
            shards,
        }
    }
}

/// One traced run of `bench` under its best annotation.
fn traced(
    bench: &dyn Benchmark,
    workers: usize,
    mode: Mode,
) -> (String, u64, ProgramOutput, RunStats) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = bench.best_probe(workers);
    probe.threaded = mode.threaded;
    probe.worker_pool = mode.worker_pool;
    probe.incremental_snapshots = mode.incremental;
    probe.pipelined = mode.pipelined;
    probe.pipeline_depth = mode.depth;
    probe.shards = mode.shards;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    let events = rec.events();
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (
        to_jsonl(&events),
        trace_hash(&events),
        run.output,
        run.stats,
    )
}

/// Masks the fields a drive mode or snapshot mode is *allowed* to change.
fn semantic(stats: &RunStats) -> RunStats {
    RunStats {
        snapshot_slots_copied: 0,
        snapshot_pages_reused: 0,
        ..stats.modulo_drive_mode()
    }
}

/// Additionally masks the fast-path accounting a shard count is allowed to
/// move: which fingerprint probes ran, how many words the exact scans
/// compared, and the shard counters themselves. Everything that remains —
/// verdicts, retries, commits, cost units, `validate_words` — must be
/// bit-for-bit equal across shard counts.
fn shard_semantic(stats: &RunStats) -> RunStats {
    RunStats {
        fingerprint_hits: 0,
        fingerprint_rejects: 0,
        exact_scan_words: 0,
        shard_validate_words: 0,
        shard_commit_batches: 0,
        shard_imbalance_max: 0,
        ..semantic(stats)
    }
}

#[test]
fn round_modes_are_invisible_across_the_suite() {
    for bench in all_benchmarks(Scale::Inference) {
        for workers in [1usize, 2, 8] {
            // The first entry is the baseline every other mode must match;
            // POOLED indexes the pooled lock-step run that pipeline depth 1
            // must reproduce field for field.
            const POOLED: usize = 2;
            let modes = [
                Mode::lock_step(false, false, true),
                Mode::lock_step(false, false, false),
                Mode::lock_step(true, true, true),
                Mode::lock_step(true, true, false),
                Mode::pipelined(1),
                Mode::pipelined(4),
                Mode::sharded(4),
                Mode::sharded(16),
            ];
            let (jsonl0, hash0, out0, stats0) = traced(bench.as_ref(), workers, modes[0]);
            assert_eq!(
                stats0.pool_round_handoffs,
                0,
                "{}/{workers}w: sequential driver must not touch the pool",
                bench.name()
            );
            let mut pooled_stats = None;
            for (i, mode) in modes.iter().enumerate().skip(1) {
                let tag = format!("{}/{workers}w {mode:?}", bench.name());
                let (jsonl, hash, out, stats) = traced(bench.as_ref(), workers, *mode);
                assert_eq!(jsonl0, jsonl, "{tag}: transcripts must be byte-identical");
                assert_eq!(hash0, hash, "{tag}: trace hashes must agree");
                assert_eq!(out0, out, "{tag}: program outputs must agree");
                if mode.shards == 1 {
                    assert_eq!(
                        semantic(&stats0),
                        semantic(&stats),
                        "{tag}: semantic RunStats must agree"
                    );
                } else {
                    // A sharded heap may re-shape the fast-path accounting
                    // (per-shard probes replace the global one) but nothing
                    // else.
                    assert_eq!(
                        shard_semantic(&stats0),
                        shard_semantic(&stats),
                        "{tag}: shard-masked RunStats must agree"
                    );
                    assert!(
                        stats.shard_commit_batches >= stats0.shard_commit_batches,
                        "{tag}: splitting the heap can only grow the number \
                         of per-shard commit batches"
                    );
                }
                assert_eq!(
                    stats.tickets_issued + stats.tickets_requeued,
                    stats.attempts,
                    "{tag}: every attempt is an issued or re-queued ticket"
                );
                if mode.threaded && mode.worker_pool && workers > 1 {
                    assert!(
                        stats.pool_round_handoffs > 0,
                        "{tag}: the pool must actually run rounds"
                    );
                }
                if mode.incremental {
                    assert_eq!(
                        stats.snapshot_slots_copied, stats0.snapshot_slots_copied,
                        "{tag}: snapshot economics are deterministic"
                    );
                } else {
                    assert!(
                        stats.snapshot_slots_copied >= stats0.snapshot_slots_copied,
                        "{tag}: full snapshots can never copy less than \
                         incremental ones"
                    );
                }
                if i == POOLED {
                    pooled_stats = Some(stats);
                }
                if mode.pipelined && mode.depth == 1 {
                    // Depth 1 is the barrier: same driver, same stall model,
                    // so even the masked telemetry must agree exactly.
                    assert_eq!(
                        pooled_stats.expect("pooled mode runs before pipelined ones"),
                        stats,
                        "{tag}: pipeline depth 1 must equal the pooled \
                         lock-step run field for field"
                    );
                }
            }
        }
    }
}
