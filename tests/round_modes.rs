//! Round-mode invisibility sweep: the persistent worker pool and the
//! incremental snapshot cache are pure throughput optimizations, so every
//! workload must produce a byte-identical event transcript — and therefore
//! the same trace hash, the same program output (the heap digest each
//! workload extracts), and the same semantic `RunStats` — across all four
//! combinations of {sequential, threaded+pool} × {incremental, full}
//! snapshots, at 1, 2, and 8 workers.
//!
//! Drive-mode bookkeeping (`pool_round_handoffs`) and snapshot-economics
//! counters (`snapshot_slots_copied`, `snapshot_pages_reused`) are the
//! *only* fields allowed to differ; everything else in `RunStats` is part
//! of the observable semantics and is compared exactly. Direct final-heap
//! equality across drive modes is asserted at the engine level
//! (`alter-runtime`'s `threaded_and_sequential_drivers_are_identical`);
//! here each workload's output is the heap projection being compared.

use alter::infer::ProgramOutput;
use alter::runtime::RunStats;
use alter::trace::{to_jsonl, trace_hash, Recorder, RingRecorder};
use alter::workloads::{all_benchmarks, Benchmark, Scale};
use std::sync::Arc;

/// One traced run of `bench` under its best annotation.
fn traced(
    bench: &dyn Benchmark,
    workers: usize,
    threaded: bool,
    worker_pool: bool,
    incremental: bool,
) -> (String, u64, ProgramOutput, RunStats) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = bench.best_probe(workers);
    probe.threaded = threaded;
    probe.worker_pool = worker_pool;
    probe.incremental_snapshots = incremental;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    let events = rec.events();
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (
        to_jsonl(&events),
        trace_hash(&events),
        run.output,
        run.stats,
    )
}

/// Masks the fields a drive mode or snapshot mode is *allowed* to change.
fn semantic(stats: &RunStats) -> RunStats {
    RunStats {
        snapshot_slots_copied: 0,
        snapshot_pages_reused: 0,
        ..stats.modulo_drive_mode()
    }
}

#[test]
fn round_modes_are_invisible_across_the_suite() {
    for bench in all_benchmarks(Scale::Inference) {
        for workers in [1usize, 2, 8] {
            // (threaded, worker_pool, incremental_snapshots); the first
            // entry is the baseline every other mode must match.
            let modes = [
                (false, false, true),
                (false, false, false),
                (true, true, true),
                (true, true, false),
            ];
            let (jsonl0, hash0, out0, stats0) =
                traced(bench.as_ref(), workers, modes[0].0, modes[0].1, modes[0].2);
            assert_eq!(
                stats0.pool_round_handoffs,
                0,
                "{}/{workers}w: sequential driver must not touch the pool",
                bench.name()
            );
            for (threaded, worker_pool, incremental) in &modes[1..] {
                let tag = format!(
                    "{}/{workers}w threaded={threaded} pool={worker_pool} incr={incremental}",
                    bench.name()
                );
                let (jsonl, hash, out, stats) = traced(
                    bench.as_ref(),
                    workers,
                    *threaded,
                    *worker_pool,
                    *incremental,
                );
                assert_eq!(jsonl0, jsonl, "{tag}: transcripts must be byte-identical");
                assert_eq!(hash0, hash, "{tag}: trace hashes must agree");
                assert_eq!(out0, out, "{tag}: program outputs must agree");
                assert_eq!(
                    semantic(&stats0),
                    semantic(&stats),
                    "{tag}: semantic RunStats must agree"
                );
                if *threaded && *worker_pool && workers > 1 {
                    assert!(
                        stats.pool_round_handoffs > 0,
                        "{tag}: the pool must actually run rounds"
                    );
                }
                if *incremental {
                    assert_eq!(
                        stats.snapshot_slots_copied, stats0.snapshot_slots_copied,
                        "{tag}: snapshot economics are deterministic"
                    );
                } else {
                    assert!(
                        stats.snapshot_slots_copied >= stats0.snapshot_slots_copied,
                        "{tag}: full snapshots can never copy less than \
                         incremental ones"
                    );
                }
            }
        }
    }
}
