//! Trace-oracle tests: the structured-event recorder must be deterministic
//! (two identical runs produce byte-identical JSONL and equal hashes) and
//! exact (a validation failure names the first conflicting word and the
//! committed transaction that owns it), and the aggregate `RunStats` /
//! per-task `TaskReport` views must stay mutually consistent.

use alter::heap::{Heap, ObjData};
use alter::infer::{Model, Probe};
use alter::runtime::{
    run_loop, run_loop_observed, CommitOrder, ConflictPolicy, Driver, ExecParams, RangeSpace,
    RedVars, RoundObserver, RoundReport, RunStats, TaskReport,
};
use alter::trace::{to_jsonl, trace_hash, ConflictKind, Event, Recorder, RingRecorder};
use alter::workloads::{genome::Genome, Scale};
use std::sync::Arc;

/// Runs Genome under a `[StaleReads]` probe with a fresh recorder and
/// returns the canonical JSONL transcript and its hash.
fn genome_stalereads_trace() -> (String, u64) {
    let bench = Genome::new(Scale::Inference);
    let rec = Arc::new(RingRecorder::default());
    let mut probe = Probe::new(Model::StaleReads, 4, 16);
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    alter::infer::InferTarget::run_probe(&bench, &probe).expect("Genome probe must complete");
    let events = rec.events();
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (to_jsonl(&events), trace_hash(&events))
}

/// The determinism oracle: the same workload under the same annotation
/// produces a byte-identical event transcript — and hence an equal 64-bit
/// trace hash — on every run. Genome retries under StaleReads (its segment
/// joins collide), so this covers the conflict/retry paths, not just a
/// straight-line commit sequence.
#[test]
fn genome_trace_is_deterministic_under_stalereads() {
    let (jsonl_a, hash_a) = genome_stalereads_trace();
    let (jsonl_b, hash_b) = genome_stalereads_trace();
    assert!(
        jsonl_a.contains("\"ev\":\"validate_conflict\""),
        "trace must exercise the conflict path"
    );
    assert_eq!(jsonl_a, jsonl_b, "JSONL transcripts must be byte-identical");
    assert_eq!(hash_a, hash_b, "trace hashes must agree");
}

fn first_conflict(events: &[Event]) -> Option<&Event> {
    events
        .iter()
        .find(|e| matches!(e, Event::ValidateConflict { .. }))
}

/// A hand-built WAW overlap: tx 0 writes words {2, 3}, tx 1 writes
/// {3, 5} of the same object. Under `WAW + OutOfOrder` the conflict event
/// must name word 3 — the *first* shared word in (object, word) order —
/// and tx 0 as the committed winner.
#[test]
fn waw_conflict_names_first_word_and_winner() {
    let mut heap = Heap::new();
    let arr = heap.alloc(ObjData::zeros_i64(16));
    let rec = Arc::new(RingRecorder::default());
    let mut p = ExecParams::new(2, 1);
    p.conflict = ConflictPolicy::Waw;
    p.order = CommitOrder::OutOfOrder;
    let p = p.with_recorder(rec.clone() as Arc<dyn Recorder>);
    run_loop(
        &mut heap,
        &mut RedVars::new(),
        &mut RangeSpace::new(0, 2),
        &p,
        Driver::sequential(),
        |ctx, i| {
            if i == 0 {
                ctx.tx.write_i64(arr, 2, 10);
                ctx.tx.write_i64(arr, 3, 11);
            } else {
                ctx.tx.write_i64(arr, 3, 12);
                ctx.tx.write_i64(arr, 5, 13);
            }
        },
    )
    .unwrap();
    let events = rec.events();
    match first_conflict(&events) {
        Some(&Event::ValidateConflict {
            seq,
            kind,
            obj,
            word,
            winner_seq,
        }) => {
            assert_eq!(seq, 1, "the later transaction loses");
            assert_eq!(kind, ConflictKind::Waw);
            assert_eq!(obj, arr);
            assert_eq!(word, 3, "first shared word in ascending order");
            assert_eq!(winner_seq, 0, "tx 0 committed the word");
        }
        other => panic!("expected a WAW ValidateConflict, got {other:?}"),
    }
    // The retry must eventually commit both transactions.
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::RunEnd { committed: 2, .. })));
}

/// A hand-built RAW overlap: tx 0 writes word 7; tx 1 reads words {6, 7}
/// and writes elsewhere. Under `RAW + OutOfOrder` the conflict must be
/// classified RAW at word 7 with tx 0 as winner.
#[test]
fn raw_conflict_names_first_word_and_winner() {
    let mut heap = Heap::new();
    let arr = heap.alloc(ObjData::zeros_i64(16));
    let rec = Arc::new(RingRecorder::default());
    let mut p = ExecParams::new(2, 1);
    p.conflict = ConflictPolicy::Raw;
    p.order = CommitOrder::OutOfOrder;
    let p = p.with_recorder(rec.clone() as Arc<dyn Recorder>);
    run_loop(
        &mut heap,
        &mut RedVars::new(),
        &mut RangeSpace::new(0, 2),
        &p,
        Driver::sequential(),
        |ctx, i| {
            if i == 0 {
                ctx.tx.write_i64(arr, 7, 42);
            } else {
                let a = ctx.tx.read_i64(arr, 6);
                let b = ctx.tx.read_i64(arr, 7);
                ctx.tx.write_i64(arr, 12, a + b);
            }
        },
    )
    .unwrap();
    let events = rec.events();
    match first_conflict(&events) {
        Some(&Event::ValidateConflict {
            seq,
            kind,
            obj,
            word,
            winner_seq,
        }) => {
            assert_eq!(seq, 1);
            assert_eq!(kind, ConflictKind::Raw);
            assert_eq!(obj, arr);
            assert_eq!(word, 7, "the word tx 1 read and tx 0 wrote");
            assert_eq!(winner_seq, 0);
        }
        other => panic!("expected a RAW ValidateConflict, got {other:?}"),
    }
}

/// Disjoint transactions must record no conflict events at all.
#[test]
fn disjoint_transactions_emit_no_conflicts() {
    let mut heap = Heap::new();
    let arr = heap.alloc(ObjData::zeros_i64(16));
    let rec = Arc::new(RingRecorder::default());
    let mut p = ExecParams::new(2, 1);
    p.conflict = ConflictPolicy::Full;
    p.order = CommitOrder::OutOfOrder;
    let p = p.with_recorder(rec.clone() as Arc<dyn Recorder>);
    run_loop(
        &mut heap,
        &mut RedVars::new(),
        &mut RangeSpace::new(0, 2),
        &p,
        Driver::sequential(),
        |ctx, i| ctx.tx.write_i64(arr, i as usize, 1),
    )
    .unwrap();
    assert!(first_conflict(&rec.events()).is_none());
}

/// A body panic suppressed by `quiet_panics` (the inference engine's
/// stderr-muting wrapper) still reaches the trace: the engine records
/// `Event::Crash` with the panic message before unwinding into
/// `RunError::Crash`, so silenced probes leave evidence.
#[test]
fn quiet_panics_still_record_crash_events() {
    let rec = Arc::new(RingRecorder::default());
    let p = ExecParams::new(2, 1).with_recorder(rec.clone() as Arc<dyn Recorder>);
    let result = alter::runtime::quiet::quiet_panics(|| {
        let mut heap = Heap::new();
        let _arr = heap.alloc(ObjData::zeros_i64(4));
        run_loop(
            &mut heap,
            &mut RedVars::new(),
            &mut RangeSpace::new(0, 2),
            &p,
            Driver::sequential(),
            |_, i| {
                if i == 1 {
                    panic!("deliberate probe failure");
                }
            },
        )
    });
    assert!(matches!(result, Err(alter::runtime::RunError::Crash(_))));
    let events = rec.events();
    let crash = events
        .iter()
        .find_map(|e| match e {
            Event::Crash { message } => Some(message.clone()),
            _ => None,
        })
        .expect("the suppressed panic must appear in the trace");
    assert!(crash.contains("deliberate probe failure"), "{crash}");
}

/// `retry_rate` on a run that never attempted anything is 0, not NaN.
#[test]
fn retry_rate_of_zero_attempts_is_zero() {
    let stats = RunStats::default();
    assert_eq!(stats.attempts, 0);
    assert_eq!(stats.retry_rate(), 0.0);
    assert_eq!(stats.avg_rw_words(), 0.0);
}

/// `absorb` accumulates counters additively and keeps the max of maxima —
/// the contract the multi-sweep convergence loops rely on.
#[test]
fn absorb_accumulates_across_runs() {
    let run = |iters: u64| {
        let mut heap = Heap::new();
        let arr = heap.alloc(ObjData::zeros_i64(64));
        let mut p = ExecParams::new(2, 2);
        p.conflict = ConflictPolicy::Full;
        run_loop(
            &mut heap,
            &mut RedVars::new(),
            &mut RangeSpace::new(0, iters),
            &p,
            Driver::sequential(),
            |ctx, i| ctx.tx.write_i64(arr, i as usize, 1),
        )
        .unwrap()
    };
    let a = run(8);
    let b = run(32);
    let mut total = a;
    total.absorb(&b);
    assert_eq!(total.rounds, a.rounds + b.rounds);
    assert_eq!(total.attempts, a.attempts + b.attempts);
    assert_eq!(total.committed, a.committed + b.committed);
    assert_eq!(total.iterations, a.iterations + b.iterations);
    assert_eq!(total.tracked_words, a.tracked_words + b.tracked_words);
    assert_eq!(total.validate_words, a.validate_words + b.validate_words);
    assert_eq!(
        total.max_tracked_words,
        a.max_tracked_words.max(b.max_tracked_words)
    );
    assert_eq!(total.cost_units(), a.cost_units() + b.cost_units());
}

/// Collects every `TaskReport` of a run.
struct Collect(Vec<TaskReport>);

impl RoundObserver for Collect {
    fn on_round(&mut self, report: &RoundReport<'_>) {
        self.0.extend(report.tasks.iter().cloned());
    }
}

/// A forced-conflict in-order run: three single-iteration transactions all
/// bump word 0, under `RAW + InOrder` (TLS). Per round, the first
/// transaction commits, the next fails validation with an exact
/// `ConflictDetail`, and any later ones are squashed. The per-task
/// reports, the aggregate stats, and the trace events must all tell the
/// same story.
#[test]
fn task_reports_are_consistent_in_a_forced_conflict_run() {
    let mut heap = Heap::new();
    let arr = heap.alloc(ObjData::zeros_i64(4));
    let rec = Arc::new(RingRecorder::default());
    let mut p = ExecParams::new(3, 1);
    p.conflict = ConflictPolicy::Raw;
    p.order = CommitOrder::InOrder;
    let p = p.with_recorder(rec.clone() as Arc<dyn Recorder>);
    let mut collect = Collect(Vec::new());
    let stats = run_loop_observed(
        &mut heap,
        &mut RedVars::new(),
        &mut RangeSpace::new(0, 3),
        &p,
        Driver::sequential(),
        |ctx, _| {
            let v = ctx.tx.read_i64(arr, 0);
            ctx.tx.write_i64(arr, 0, v + 1);
        },
        &mut collect,
    )
    .unwrap();

    // Sequential semantics hold (Theorem 4.3), so all three increments land.
    assert_eq!(heap.get(arr).i64s()[0], 3);

    let reports = collect.0;
    assert_eq!(reports.len() as u64, stats.attempts);
    assert_eq!(
        reports.iter().filter(|r| r.committed).count() as u64,
        stats.committed
    );
    for r in &reports {
        assert!(
            !(r.committed && r.squashed),
            "tx {} both committed and squashed",
            r.seq
        );
        if r.committed || r.squashed {
            assert!(
                r.conflict.is_none(),
                "tx {} carries a conflict detail without failing validation",
                r.seq
            );
        } else {
            let d = r.conflict.expect("a validation failure names its conflict");
            assert_eq!(d.kind, ConflictKind::Raw);
            assert_eq!(d.obj, arr);
            assert_eq!(d.word, 0);
            assert!(
                d.winner_seq < r.seq,
                "winner must be an earlier transaction"
            );
        }
    }
    // Round 0 runs tx 0,1,2: tx 0 commits, tx 1 conflicts, tx 2 is
    // squashed by tx 1's failure — and the trace says exactly that.
    let events = rec.events();
    assert!(events.iter().any(|e| matches!(
        e,
        Event::ValidateConflict {
            seq: 1,
            winner_seq: 0,
            kind: ConflictKind::Raw,
            word: 0,
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Squash { seq: 2, by_seq: 1 })));
    // Squashed tasks also appear in the reports as squashed, not failed.
    assert!(reports.iter().any(|r| r.squashed && r.seq == 2));
}
