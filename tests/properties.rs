//! Property-based tests of the runtime's core guarantees: sequential
//! equivalence of TLS, exactness of conflict-checked read-modify-writes,
//! reduction-merge algebra, allocator disjointness, set semantics, and
//! determinism across drivers — all over randomly generated loop programs.

use alter::heap::{AccessSet, Heap, IdReservation, ObjData};
use alter::runtime::{
    run_loop, CommitOrder, ConflictPolicy, Driver, ExecParams, RangeSpace, RedOp, RedVal, RedVars,
    TxCtx,
};
use proptest::prelude::*;

/// One statement of a synthetic loop body.
#[derive(Clone, Debug)]
enum Op {
    /// `arr[dst] = arr[src] + k`
    Copy { dst: usize, src: usize, k: i64 },
    /// `arr[dst] += k`
    Bump { dst: usize, k: i64 },
}

const CELLS: usize = 12;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CELLS, 0..CELLS, -5i64..5).prop_map(|(dst, src, k)| Op::Copy { dst, src, k }),
        (0..CELLS, -5i64..5).prop_map(|(dst, k)| Op::Bump { dst, k }),
    ]
}

/// A program: for each iteration, a short list of statements.
fn program_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 1..4), 1..24)
}

fn interpret_sequential(prog: &[Vec<Op>]) -> Vec<i64> {
    let mut arr = vec![0i64; CELLS];
    for iter in prog {
        for op in iter {
            match *op {
                Op::Copy { dst, src, k } => arr[dst] = arr[src] + k,
                Op::Bump { dst, k } => arr[dst] += k,
            }
        }
    }
    arr
}

fn run_under(
    prog: &[Vec<Op>],
    conflict: ConflictPolicy,
    order: CommitOrder,
    workers: usize,
    chunk: usize,
    driver: Driver,
) -> Vec<i64> {
    let mut heap = Heap::new();
    let arr = heap.alloc(ObjData::zeros_i64(CELLS));
    let mut reds = RedVars::new();
    let mut p = ExecParams::new(workers, chunk);
    p.conflict = conflict;
    p.order = order;
    run_loop(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, prog.len() as u64),
        &p,
        driver,
        |ctx: &mut TxCtx<'_>, i| {
            for op in &prog[i as usize] {
                match *op {
                    Op::Copy { dst, src, k } => {
                        let v = ctx.tx.read_i64(arr, src);
                        ctx.tx.write_i64(arr, dst, v + k);
                    }
                    Op::Bump { dst, k } => {
                        let v = ctx.tx.read_i64(arr, dst);
                        ctx.tx.write_i64(arr, dst, v + k);
                    }
                }
            }
        },
    )
    .unwrap();
    heap.get(arr).i64s().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.3: `RAW + InOrder` (TLS) is equivalent to sequential
    /// semantics for *arbitrary* loop bodies.
    #[test]
    fn tls_equals_sequential(prog in program_strategy(), workers in 1usize..5, chunk in 1usize..4) {
        let seq = interpret_sequential(&prog);
        let tls = run_under(&prog, ConflictPolicy::Raw, CommitOrder::InOrder, workers, chunk, Driver::sequential());
        prop_assert_eq!(seq, tls);
    }

    /// Bump-only programs are commutative, so every conflict-checked model
    /// must produce the sequential result.
    #[test]
    fn commutative_programs_are_exact_under_every_model(
        prog in prop::collection::vec(
            prop::collection::vec((0..CELLS, -5i64..5).prop_map(|(dst, k)| Op::Bump { dst, k }), 1..4),
            1..24,
        ),
        workers in 1usize..5,
        chunk in 1usize..4,
    ) {
        let seq = interpret_sequential(&prog);
        for conflict in [ConflictPolicy::Full, ConflictPolicy::Waw, ConflictPolicy::Raw] {
            let got = run_under(&prog, conflict, CommitOrder::OutOfOrder, workers, chunk, Driver::sequential());
            prop_assert_eq!(&seq, &got, "conflict {:?}", conflict);
        }
    }

    /// Determinism: the threaded and sequential drivers agree on arbitrary
    /// programs under snapshot isolation (where results are allowed to
    /// differ from sequential semantics, they still may not differ between
    /// drivers or runs).
    #[test]
    fn drivers_agree_on_arbitrary_programs(prog in program_strategy(), workers in 1usize..5, chunk in 1usize..4) {
        let a = run_under(&prog, ConflictPolicy::Waw, CommitOrder::OutOfOrder, workers, chunk, Driver::sequential());
        let b = run_under(&prog, ConflictPolicy::Waw, CommitOrder::OutOfOrder, workers, chunk, Driver::threaded());
        let c = run_under(&prog, ConflictPolicy::Waw, CommitOrder::OutOfOrder, workers, chunk, Driver::threaded());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    /// Reduction merges equal the serial fold for + and are order-robust
    /// for idempotent operators, across random per-iteration updates.
    #[test]
    fn reductions_match_serial_fold(
        updates in prop::collection::vec(-100i64..100, 1..40),
        workers in 1usize..5,
        chunk in 1usize..5,
    ) {
        let mut heap = Heap::new();
        let _pad = heap.alloc(ObjData::scalar_i64(0));
        let mut reds = RedVars::new();
        let sum = reds.declare("sum", RedVal::I64(0));
        let maxv = reds.declare("max", RedVal::I64(i64::MIN));
        let mut p = ExecParams::new(workers, chunk);
        p.reductions = vec![(sum, RedOp::Add), (maxv, RedOp::Max)];
        let updates2 = updates.clone();
        run_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, updates.len() as u64),
            &p,
            Driver::sequential(),
            move |ctx, i| {
                ctx.red_add(sum, updates2[i as usize]);
                ctx.red_max(maxv, updates2[i as usize]);
            },
        )
        .unwrap();
        prop_assert_eq!(reds.get(sum).as_i64(), updates.iter().sum::<i64>());
        prop_assert_eq!(reds.get(maxv).as_i64(), *updates.iter().max().unwrap());
    }

    /// The deterministic allocator never hands two workers the same id,
    /// for any geometry.
    #[test]
    fn reservations_are_pairwise_disjoint(
        base in 0u32..10_000,
        workers in 1usize..9,
        block in 1u32..64,
        takes in prop::collection::vec(0usize..200, 1..8),
    ) {
        let mut seen = std::collections::HashSet::new();
        for (w, &n) in takes.iter().enumerate().take(workers) {
            let mut r = IdReservation::new(base, w % workers, workers, block);
            for _ in 0..n {
                prop_assert!(seen.insert(r.next_id()), "duplicate id");
            }
        }
    }

    /// `AccessSet::overlaps` agrees with the naive word-set model.
    #[test]
    fn access_set_overlap_matches_model(
        a in prop::collection::vec((0u32..6, 0u32..40, 1u32..8), 0..20),
        b in prop::collection::vec((0u32..6, 0u32..40, 1u32..8), 0..20),
    ) {
        let build = |ranges: &[(u32, u32, u32)]| {
            let mut set = AccessSet::new();
            let mut model = std::collections::BTreeSet::new();
            for &(obj, lo, len) in ranges {
                set.insert(alter::heap::ObjId::from_index(obj), lo, lo + len);
                for w in lo..lo + len {
                    model.insert((obj, w));
                }
            }
            (set, model)
        };
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);
        let model_overlap = ma.intersection(&mb).next().is_some();
        prop_assert_eq!(sa.overlaps(&sb), model_overlap);
        prop_assert_eq!(sb.overlaps(&sa), model_overlap);
        prop_assert_eq!(sa.words(), ma.len() as u64);
    }
}

/// Snapshot isolation's defining property, checked exhaustively on a small
/// program: the final value of every cell equals the value written by the
/// last *committing* writer, and lost updates never occur for cells with
/// conflict checking.
#[test]
fn no_lost_updates_under_waw() {
    for chunk in 1..4usize {
        for workers in 1..5usize {
            let prog: Vec<Vec<Op>> = (0..16)
                .map(|i| {
                    vec![Op::Bump {
                        dst: (i % 5) as usize,
                        k: 1,
                    }]
                })
                .collect();
            let got = run_under(
                &prog,
                ConflictPolicy::Waw,
                CommitOrder::OutOfOrder,
                workers,
                chunk,
                Driver::sequential(),
            );
            let seq = interpret_sequential(&prog);
            assert_eq!(got, seq, "workers={workers} chunk={chunk}");
        }
    }
}
