//! Property-style tests of the runtime's core guarantees: sequential
//! equivalence of TLS, exactness of conflict-checked read-modify-writes,
//! reduction-merge algebra, allocator disjointness, set semantics, and
//! determinism across drivers — all over randomly generated loop programs.
//!
//! Cases are generated from a fixed-seed SplitMix64 stream (the workspace
//! builds offline, without `proptest`), so every run exercises exactly the
//! same programs; a failure names the case index for replay.

use alter::heap::{AccessSet, Heap, IdReservation, ObjData};
use alter::runtime::{
    run_loop, CommitOrder, ConflictPolicy, Driver, ExecParams, RangeSpace, RedOp, RedVal, RedVars,
    TxCtx,
};

/// Minimal SplitMix64 for deterministic case generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// One statement of a synthetic loop body.
#[derive(Clone, Debug)]
enum Op {
    /// `arr[dst] = arr[src] + k`
    Copy { dst: usize, src: usize, k: i64 },
    /// `arr[dst] += k`
    Bump { dst: usize, k: i64 },
}

const CELLS: usize = 12;

fn random_op(rng: &mut Rng) -> Op {
    if rng.below(2) == 0 {
        Op::Copy {
            dst: rng.below(CELLS),
            src: rng.below(CELLS),
            k: rng.range_i64(-5, 5),
        }
    } else {
        Op::Bump {
            dst: rng.below(CELLS),
            k: rng.range_i64(-5, 5),
        }
    }
}

/// A program: for each iteration, a short list of statements.
fn random_program(rng: &mut Rng) -> Vec<Vec<Op>> {
    let iters = 1 + rng.below(23);
    (0..iters)
        .map(|_| {
            let stmts = 1 + rng.below(3);
            (0..stmts).map(|_| random_op(rng)).collect()
        })
        .collect()
}

fn random_bump_program(rng: &mut Rng) -> Vec<Vec<Op>> {
    let iters = 1 + rng.below(23);
    (0..iters)
        .map(|_| {
            let stmts = 1 + rng.below(3);
            (0..stmts)
                .map(|_| Op::Bump {
                    dst: rng.below(CELLS),
                    k: rng.range_i64(-5, 5),
                })
                .collect()
        })
        .collect()
}

fn interpret_sequential(prog: &[Vec<Op>]) -> Vec<i64> {
    let mut arr = vec![0i64; CELLS];
    for iter in prog {
        for op in iter {
            match *op {
                Op::Copy { dst, src, k } => arr[dst] = arr[src] + k,
                Op::Bump { dst, k } => arr[dst] += k,
            }
        }
    }
    arr
}

fn run_under(
    prog: &[Vec<Op>],
    conflict: ConflictPolicy,
    order: CommitOrder,
    workers: usize,
    chunk: usize,
    driver: Driver,
) -> Vec<i64> {
    let mut heap = Heap::new();
    let arr = heap.alloc(ObjData::zeros_i64(CELLS));
    let mut reds = RedVars::new();
    let mut p = ExecParams::new(workers, chunk);
    p.conflict = conflict;
    p.order = order;
    run_loop(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, prog.len() as u64),
        &p,
        driver,
        |ctx: &mut TxCtx<'_>, i| {
            for op in &prog[i as usize] {
                match *op {
                    Op::Copy { dst, src, k } => {
                        let v = ctx.tx.read_i64(arr, src);
                        ctx.tx.write_i64(arr, dst, v + k);
                    }
                    Op::Bump { dst, k } => {
                        let v = ctx.tx.read_i64(arr, dst);
                        ctx.tx.write_i64(arr, dst, v + k);
                    }
                }
            }
        },
    )
    .unwrap();
    heap.get(arr).i64s().to_vec()
}

/// Theorem 4.3: `RAW + InOrder` (TLS) is equivalent to sequential
/// semantics for *arbitrary* loop bodies.
#[test]
fn tls_equals_sequential() {
    let mut rng = Rng(0x7175_0001);
    for case in 0..64 {
        let prog = random_program(&mut rng);
        let workers = 1 + rng.below(4);
        let chunk = 1 + rng.below(3);
        let seq = interpret_sequential(&prog);
        let tls = run_under(
            &prog,
            ConflictPolicy::Raw,
            CommitOrder::InOrder,
            workers,
            chunk,
            Driver::sequential(),
        );
        assert_eq!(seq, tls, "case {case} workers={workers} chunk={chunk}");
    }
}

/// Bump-only programs are commutative, so every conflict-checked model
/// must produce the sequential result.
#[test]
fn commutative_programs_are_exact_under_every_model() {
    let mut rng = Rng(0x7175_0002);
    for case in 0..64 {
        let prog = random_bump_program(&mut rng);
        let workers = 1 + rng.below(4);
        let chunk = 1 + rng.below(3);
        let seq = interpret_sequential(&prog);
        for conflict in [
            ConflictPolicy::Full,
            ConflictPolicy::Waw,
            ConflictPolicy::Raw,
        ] {
            let got = run_under(
                &prog,
                conflict,
                CommitOrder::OutOfOrder,
                workers,
                chunk,
                Driver::sequential(),
            );
            assert_eq!(seq, got, "case {case} conflict {conflict:?}");
        }
    }
}

/// Determinism: the threaded and sequential drivers agree on arbitrary
/// programs under snapshot isolation (where results are allowed to differ
/// from sequential semantics, they still may not differ between drivers or
/// runs).
#[test]
fn drivers_agree_on_arbitrary_programs() {
    let mut rng = Rng(0x7175_0003);
    for case in 0..32 {
        let prog = random_program(&mut rng);
        let workers = 1 + rng.below(4);
        let chunk = 1 + rng.below(3);
        let a = run_under(
            &prog,
            ConflictPolicy::Waw,
            CommitOrder::OutOfOrder,
            workers,
            chunk,
            Driver::sequential(),
        );
        let b = run_under(
            &prog,
            ConflictPolicy::Waw,
            CommitOrder::OutOfOrder,
            workers,
            chunk,
            Driver::threaded(),
        );
        let c = run_under(
            &prog,
            ConflictPolicy::Waw,
            CommitOrder::OutOfOrder,
            workers,
            chunk,
            Driver::threaded(),
        );
        assert_eq!(a, b, "case {case}");
        assert_eq!(b, c, "case {case}");
    }
}

/// Reduction merges equal the serial fold for + and are order-robust for
/// idempotent operators, across random per-iteration updates.
#[test]
fn reductions_match_serial_fold() {
    let mut rng = Rng(0x7175_0004);
    for case in 0..64 {
        let n = 1 + rng.below(39);
        let updates: Vec<i64> = (0..n).map(|_| rng.range_i64(-100, 100)).collect();
        let workers = 1 + rng.below(4);
        let chunk = 1 + rng.below(4);
        let mut heap = Heap::new();
        let _pad = heap.alloc(ObjData::scalar_i64(0));
        let mut reds = RedVars::new();
        let sum = reds.declare("sum", RedVal::I64(0));
        let maxv = reds.declare("max", RedVal::I64(i64::MIN));
        let mut p = ExecParams::new(workers, chunk);
        p.reductions = vec![(sum, RedOp::Add), (maxv, RedOp::Max)];
        let updates2 = updates.clone();
        run_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, updates.len() as u64),
            &p,
            Driver::sequential(),
            move |ctx, i| {
                ctx.red_add(sum, updates2[i as usize]);
                ctx.red_max(maxv, updates2[i as usize]);
            },
        )
        .unwrap();
        assert_eq!(
            reds.get(sum).as_i64(),
            updates.iter().sum::<i64>(),
            "case {case}"
        );
        assert_eq!(
            reds.get(maxv).as_i64(),
            *updates.iter().max().unwrap(),
            "case {case}"
        );
    }
}

/// The deterministic allocator never hands two workers the same id, for
/// any geometry.
#[test]
fn reservations_are_pairwise_disjoint() {
    let mut rng = Rng(0x7175_0005);
    for case in 0..64 {
        let base = rng.below(10_000) as u32;
        let workers = 1 + rng.below(8);
        let block = 1 + rng.below(63) as u32;
        let mut seen = std::collections::HashSet::new();
        for w in 0..workers {
            let n = rng.below(200);
            let mut r = IdReservation::new(base, w, workers, block);
            for _ in 0..n {
                assert!(seen.insert(r.next_id()), "case {case}: duplicate id");
            }
        }
    }
}

/// `AccessSet::overlaps` and `AccessSet::first_overlap` agree with the
/// naive word-set model.
#[test]
fn access_set_overlap_matches_model() {
    let mut rng = Rng(0x7175_0006);
    for case in 0..96 {
        let build = |rng: &mut Rng| {
            let mut set = AccessSet::new();
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..rng.below(20) {
                let obj = rng.below(6) as u32;
                let lo = rng.below(40) as u32;
                let len = 1 + rng.below(7) as u32;
                set.insert(alter::heap::ObjId::from_index(obj), lo, lo + len);
                for w in lo..lo + len {
                    model.insert((obj, w));
                }
            }
            (set, model)
        };
        let (sa, ma) = build(&mut rng);
        let (sb, mb) = build(&mut rng);
        let model_first = ma.intersection(&mb).next().copied();
        assert_eq!(sa.overlaps(&sb), model_first.is_some(), "case {case}");
        assert_eq!(sb.overlaps(&sa), model_first.is_some(), "case {case}");
        assert_eq!(sa.words(), ma.len() as u64, "case {case}");
        // first_overlap must name exactly the model's smallest shared
        // (object, word) — BTreeSet iteration order matches the engine's
        // deterministic (ascending object, ascending word) search.
        let got = sa.first_overlap(&sb).map(|(obj, word)| (obj.index(), word));
        assert_eq!(got, model_first, "case {case}");
    }
}

/// Snapshot isolation's defining property, checked exhaustively on a small
/// program: the final value of every cell equals the value written by the
/// last *committing* writer, and lost updates never occur for cells with
/// conflict checking.
#[test]
fn no_lost_updates_under_waw() {
    for chunk in 1..4usize {
        for workers in 1..5usize {
            let prog: Vec<Vec<Op>> = (0..16)
                .map(|i| {
                    vec![Op::Bump {
                        dst: (i % 5) as usize,
                        k: 1,
                    }]
                })
                .collect();
            let got = run_under(
                &prog,
                ConflictPolicy::Waw,
                CommitOrder::OutOfOrder,
                workers,
                chunk,
                Driver::sequential(),
            );
            let seq = interpret_sequential(&prog);
            assert_eq!(got, seq, "workers={workers} chunk={chunk}");
        }
    }
}
