//! Validation fast-path tests: the fingerprint pre-check must be *sound*
//! (a reject proves the exact overlap test is false), and the layered fast
//! path must be *invisible* — real workloads produce byte-identical event
//! transcripts, and hence equal trace hashes, with the fast path on or off.
//!
//! Cases are generated from a fixed-seed SplitMix64 stream (the workspace
//! builds offline, without `proptest`), so every run exercises exactly the
//! same sets; a failure names the case index for replay.

use alter::heap::{AccessSet, ObjId};
use alter::infer::{InferTarget, Model, Probe};
use alter::trace::{to_jsonl, trace_hash, Recorder, RingRecorder};
use alter::workloads::{genome::Genome, kmeans::KMeans, Scale};
use std::sync::Arc;

/// Minimal SplitMix64 for deterministic case generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % u64::from(bound)) as u32
    }
}

/// A random access set: a handful of word ranges over a few objects. The
/// geometry (few objects, 1024-word extents, 64-word fingerprint blocks)
/// makes both rejects and genuine overlaps common, so the property is
/// exercised on both sides.
fn random_set(rng: &mut Rng) -> AccessSet {
    let mut set = AccessSet::new();
    for _ in 0..1 + rng.below(6) {
        let id = ObjId::from_index(rng.below(8));
        let lo = rng.below(1024);
        let hi = lo + 1 + rng.below(96);
        set.insert(id, lo, hi);
    }
    set
}

/// Soundness: a fingerprint reject proves the exact merge-scan would find
/// no overlap — never the other way around. Equivalently: every real
/// overlap is a fingerprint hit (the filter is one-sided, false positives
/// only).
#[test]
fn fingerprint_reject_implies_exact_disjointness() {
    let mut rng = Rng(0x0005_eeda_11e5);
    let (mut rejects, mut overlaps) = (0u32, 0u32);
    for case in 0..2000 {
        let a = random_set(&mut rng);
        let b = random_set(&mut rng);
        if !a.may_overlap(&b) {
            rejects += 1;
            assert!(
                !a.overlaps(&b),
                "case {case}: fingerprint rejected a genuinely overlapping pair"
            );
        }
        if a.overlaps(&b) {
            overlaps += 1;
            assert!(
                a.may_overlap(&b),
                "case {case}: overlapping pair escaped the fingerprint"
            );
        }
    }
    // Make sure the generator exercised both sides of the property.
    assert!(rejects > 100, "only {rejects} rejects — geometry too dense");
    assert!(
        overlaps > 100,
        "only {overlaps} overlaps — geometry too sparse"
    );
}

/// Clearing a set must clear its fingerprint too, or recycled pool buffers
/// would poison later pre-checks with stale bits.
#[test]
fn cleared_sets_never_fingerprint_hit() {
    let mut rng = Rng(0x000c_1ea7);
    for _ in 0..200 {
        let mut a = random_set(&mut rng);
        let b = random_set(&mut rng);
        a.clear();
        assert!(!a.may_overlap(&b), "an empty set intersects nothing");
        assert!(!a.overlaps(&b));
    }
}

/// Runs `bench` under `model` with a fresh recorder and returns the JSONL
/// transcript, the trace hash, and the run's fingerprint counters
/// `(hits, rejects)`.
fn traced_run(
    bench: &dyn InferTarget,
    model: Model,
    fast_validation: bool,
) -> (String, u64, (u64, u64)) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = Probe::new(model, 4, 16);
    probe.fast_validation = fast_validation;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    let events = rec.events();
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (
        to_jsonl(&events),
        trace_hash(&events),
        (run.stats.fingerprint_hits, run.stats.fingerprint_rejects),
    )
}

/// The invisibility oracle: for Genome and K-means under both `StaleReads`
/// and `OutOfOrder`, the event transcript — validation verdicts, conflict
/// attributions, `validate_words` payloads, everything — is byte-identical
/// with the fast path on and off, while the fast path demonstrably ran
/// (its fingerprint counters are live) and the exact path demonstrably
/// did not consult fingerprints.
#[test]
fn trace_hashes_identical_with_fast_path_on_and_off() {
    let genome = Genome::new(Scale::Inference);
    let kmeans = KMeans::new(Scale::Inference);
    let benches: [(&str, &dyn InferTarget); 2] = [("genome", &genome), ("k-means", &kmeans)];
    for (name, bench) in benches {
        for model in [Model::StaleReads, Model::OutOfOrder] {
            let (jsonl_fast, hash_fast, (hits_f, rejects_f)) = traced_run(bench, model, true);
            let (jsonl_exact, hash_exact, (hits_e, rejects_e)) = traced_run(bench, model, false);
            assert_eq!(
                jsonl_fast, jsonl_exact,
                "{name}/{model}: transcripts must be byte-identical"
            );
            assert_eq!(
                hash_fast, hash_exact,
                "{name}/{model}: trace hashes must agree"
            );
            assert!(
                hits_f + rejects_f > 0,
                "{name}/{model}: fast path never pre-checked a validation"
            );
            assert_eq!(
                hits_e + rejects_e,
                0,
                "{name}/{model}: exact mode must not consult fingerprints"
            );
        }
    }
}
