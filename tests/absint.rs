//! The static analyzer's tier-1 gates:
//!
//! * soundness — every workload declares a `LoopSpec` and the
//!   cross-validation pass proves `static ⊇ dynamic` against the replayed
//!   `LoopSummary` (an under-declared spec fails here);
//! * probe economics — the static tier skips probes the dynamic-only
//!   engine must run (≥ 10 suite-wide) without changing a single inferred
//!   annotation;
//! * verdict pinning — the workloads the paper proves dependence-free
//!   (BarnesHut, FFT, HMM) are `ProvedSafe` under every Table-3 model,
//!   and AggloClust's read-set blowup is `ProvedUnsound` under the
//!   RAW-tracking models;
//! * abstract domain — seeded property tests (50 cases each) that
//!   `join`/`widen`/`add`/`mul` are sound and monotone against concrete
//!   u64 sets.

use alter::analyze::{
    cross_validate, interpret, static_verdict, AnalyzeConfig, StaticVerdict, StrideInterval,
};
use alter::infer::{infer, InferConfig, Model};
use alter::workloads::{all_benchmarks, Scale};

/// The probe's conflict policy for a model, as the engine configures it.
fn policy_of(model: Model) -> alter::runtime::ConflictPolicy {
    model.exec_params(4, 16).conflict
}

#[test]
fn every_workload_declares_a_spec_that_covers_its_replay() {
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        let spec = b
            .loop_spec()
            .unwrap_or_else(|| panic!("{name}: no LoopSpec declared"));
        let summary = interpret(&spec);
        let dynamic = b.probe_summary();
        let violations = cross_validate(&spec, &summary, &dynamic);
        assert!(
            violations.is_empty(),
            "{name}: static ⊉ dynamic:\n  {}",
            violations.join("\n  ")
        );
    }
}

#[test]
fn static_verdicts_match_the_table3_structure() {
    let proved_safe = ["BarnesHut", "FFT", "HMM"];
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        let spec = b.loop_spec().unwrap();
        let summary = interpret(&spec);
        let cfg = AnalyzeConfig {
            budget_words: b
                .tracked_budget_words()
                .unwrap_or(AnalyzeConfig::default().budget_words),
            ..AnalyzeConfig::default()
        };
        for model in Model::TABLE3 {
            let v = static_verdict(&summary, policy_of(model), &cfg);
            if proved_safe.contains(&name.as_str()) {
                assert_eq!(
                    v,
                    StaticVerdict::ProvedSafe,
                    "{name}/{model}: dependence-free workload not proved safe"
                );
            } else if name == "AggloClust" && model != Model::StaleReads {
                assert!(
                    matches!(v, StaticVerdict::ProvedUnsound(_)),
                    "{name}/{model}: read-set blowup not proved unsound, got {v}"
                );
            } else {
                assert_eq!(
                    v,
                    StaticVerdict::Unknown,
                    "{name}/{model}: expected abstention"
                );
            }
        }
    }
}

/// The tentpole's probe-economics criterion: static pruning skips ≥ 10
/// probes across the suite relative to PR 5's dynamic-only pruning, and
/// the inferred annotations are byte-identical per workload.
#[test]
fn static_tier_skips_ten_probes_without_changing_any_answer() {
    let combined = InferConfig::default();
    assert!(combined.static_prune, "static pruning is the default");
    let dynamic_only = InferConfig {
        static_prune: false,
        ..InferConfig::default()
    };
    let mut skipped = 0u64;
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        let with_static = infer(b.as_ref(), &combined);
        let without = infer(b.as_ref(), &dynamic_only);
        assert_eq!(
            with_static.valid_annotations, without.valid_annotations,
            "{name}: static pruning changed the inferred annotations"
        );
        assert_eq!(
            with_static.reduction_cell(),
            without.reduction_cell(),
            "{name}"
        );
        assert!(without.static_pruned.is_empty(), "{name}");
        assert_eq!(
            without.probes_run - with_static.probes_run,
            with_static.static_pruned.len() as u64,
            "{name}: every statically pruned candidate saves exactly one probe"
        );
        skipped += with_static.static_pruned.len() as u64;
    }
    assert!(
        skipped >= 10,
        "static tier skipped only {skipped} probes suite-wide (need ≥ 10)"
    );
}

// ---------------------------------------------------------------------------
// Seeded property tests of the abstract domain.
// ---------------------------------------------------------------------------

/// Minimal SplitMix64 for deterministic case generation (as in
/// `properties.rs`; the workspace builds offline, without `proptest`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A random small stride interval whose concretization is enumerable.
fn random_interval(rng: &mut Rng) -> StrideInterval {
    let lo = rng.below(50);
    match rng.below(3) {
        0 => StrideInterval::constant(lo),
        1 => StrideInterval::range(lo, lo + rng.below(12)),
        _ => StrideInterval::affine(1 + rng.below(5), lo, 1 + rng.below(7)),
    }
}

/// The concrete set γ(si), enumerated.
fn gamma(si: &StrideInterval) -> Vec<u64> {
    let step = si.stride.max(1);
    (0..si.count()).map(|k| si.lo + k * step).collect()
}

fn contains_all(big: &StrideInterval, elems: impl IntoIterator<Item = u64>) -> bool {
    elems.into_iter().all(|v| big.contains(v))
}

const CASES: usize = 50;

#[test]
fn join_is_sound_and_monotone_on_concrete_sets() {
    let mut rng = Rng(0xab51);
    for case in 0..CASES {
        let a = random_interval(&mut rng);
        let b = random_interval(&mut rng);
        let c = random_interval(&mut rng);
        let j = a.join(&b);
        // Soundness: γ(a) ∪ γ(b) ⊆ γ(a ⊔ b).
        assert!(
            contains_all(&j, gamma(&a)) && contains_all(&j, gamma(&b)),
            "case {case}: join {j:?} misses elements of {a:?} / {b:?}"
        );
        assert!(j.covers(&a) && j.covers(&b), "case {case}: join not an ub");
        // Monotonicity: a ⊑ a ⊔ c implies (a ⊔ b) ⊑ ((a ⊔ c) ⊔ b).
        let bigger = a.join(&c);
        assert!(
            bigger.join(&b).covers(&a.join(&b)),
            "case {case}: join not monotone: {a:?} ⊑ {bigger:?} but joins diverge"
        );
    }
}

#[test]
fn widen_is_sound_and_above_join() {
    let mut rng = Rng(0x31d3);
    for case in 0..CASES {
        let a = random_interval(&mut rng);
        let b = random_interval(&mut rng);
        let w = a.widen(&b);
        assert!(
            contains_all(&w, gamma(&a)) && contains_all(&w, gamma(&b)),
            "case {case}: widen {w:?} misses elements of {a:?} / {b:?}"
        );
        assert!(
            w.covers(&a.join(&b)),
            "case {case}: widen {w:?} below join {:?}",
            a.join(&b)
        );
        // Widening stabilizes: a second application changes nothing.
        assert_eq!(w.widen(&w), w, "case {case}: widen not idempotent at ⊤");
    }
}

#[test]
fn add_is_sound_and_monotone_on_concrete_sets() {
    let mut rng = Rng(0xadd5);
    for case in 0..CASES {
        let a = random_interval(&mut rng);
        let b = random_interval(&mut rng);
        let c = random_interval(&mut rng);
        let s = a.add(&b);
        // Soundness: element-wise sums land in the abstract sum.
        for x in gamma(&a) {
            for y in gamma(&b) {
                assert!(
                    s.contains(x + y),
                    "case {case}: {x} + {y} ∉ {s:?} = {a:?} + {b:?}"
                );
            }
        }
        // Monotonicity in the first argument.
        let bigger = a.join(&c);
        assert!(
            bigger.add(&b).covers(&s),
            "case {case}: add not monotone: {a:?} ⊑ {bigger:?}"
        );
    }
}

#[test]
fn mul_is_sound_and_monotone_on_concrete_sets() {
    let mut rng = Rng(0x5ca1e);
    for case in 0..CASES {
        let a = random_interval(&mut rng);
        let b = random_interval(&mut rng);
        let c = random_interval(&mut rng);
        let p = a.mul(&b);
        for x in gamma(&a) {
            for y in gamma(&b) {
                assert!(
                    p.contains(x * y),
                    "case {case}: {x} · {y} ∉ {p:?} = {a:?} · {b:?}"
                );
            }
        }
        let bigger = a.join(&c);
        assert!(
            bigger.mul(&b).covers(&p),
            "case {case}: mul not monotone: {a:?} ⊑ {bigger:?}"
        );
    }
}
