//! Fine-grained semantic tests of the execution models: the staleness
//! bound of snapshot isolation, in-order squash behaviour, allocation
//! lifecycles across commits, and threaded-executor stress.

use alter::heap::{Heap, ObjData, ObjId};
use alter::runtime::{
    run_loop, run_loop_observed, CommitOrder, ConflictPolicy, Driver, ExecParams, RangeSpace,
    RedVars, RoundObserver, RoundReport,
};

fn params(
    conflict: ConflictPolicy,
    order: CommitOrder,
    workers: usize,
    chunk: usize,
) -> ExecParams {
    let mut p = ExecParams::new(workers, chunk);
    p.conflict = conflict;
    p.order = order;
    p
}

/// The paper's staleness bound (§3): "the memory state seen by iteration
/// i, which writes to locations W, is no older than the state committed by
/// the last iteration to write to any location in W." In the lock-step
/// engine this manifests as: any two iterations that write the same
/// location are ordered — the later committer saw the earlier commit.
///
/// Construction: every iteration appends its id to a shared log cell and
/// also reads a "clock" cell bumped by every committer. Because the log
/// cell makes all write sets overlap, WAW conflicts force full ordering,
/// and each iteration's observed clock must equal the number of commits
/// before it — zero staleness on its own write locations.
#[test]
fn staleness_is_bounded_by_write_set_overlap() {
    let mut heap = Heap::new();
    let clock = heap.alloc(ObjData::scalar_i64(0));
    let observed = heap.alloc(ObjData::zeros_i64(24));
    let mut reds = RedVars::new();
    let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 4, 1);
    run_loop(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, 24),
        &p,
        Driver::sequential(),
        |ctx, i| {
            let seen = ctx.tx.read_i64(clock, 0);
            ctx.tx.write_i64(clock, 0, seen + 1);
            ctx.tx.write_i64(observed, i as usize, seen);
        },
    )
    .unwrap();
    // Every iteration writes `clock`, so write sets all overlap: commits
    // are totally ordered and each observed value is distinct and exact.
    let mut seen: Vec<i64> = heap.get(observed).i64s().to_vec();
    seen.sort_unstable();
    let expect: Vec<i64> = (0..24).collect();
    assert_eq!(seen, expect, "no iteration may observe a stale clock");
}

/// By contrast, iterations with disjoint write sets may legitimately
/// observe stale values — but never *newer-than-committed* ones, and
/// always from a consistent snapshot (two cells committed together are
/// seen together).
#[test]
fn snapshot_reads_are_consistent_pairs() {
    let mut heap = Heap::new();
    let pair = heap.alloc(ObjData::zeros_i64(2)); // updated together
    let out = heap.alloc(ObjData::zeros_i64(64));
    let mut reds = RedVars::new();
    let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 4, 2);
    run_loop(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, 32),
        &p,
        Driver::sequential(),
        |ctx, i| {
            let a = ctx.tx.read_i64(pair, 0);
            let b = ctx.tx.read_i64(pair, 1);
            assert_eq!(a, b, "snapshot must never tear the pair");
            if i % 8 == 0 {
                // Writers bump both cells together, preserving a == b;
                // concurrent writers WAW-conflict and serialize.
                ctx.tx.write_i64(pair, 0, a + 1);
                ctx.tx.write_i64(pair, 1, b + 1);
            } else {
                ctx.tx.write_i64(out, i as usize, a);
            }
        },
    )
    .unwrap();
}

/// InOrder squashing: after a conflict, no later-in-program-order
/// transaction of that round commits, so commits always form a prefix of
/// the round's sequence numbers.
#[test]
fn inorder_commits_form_a_prefix_each_round() {
    struct PrefixCheck;
    impl RoundObserver for PrefixCheck {
        fn on_round(&mut self, r: &RoundReport<'_>) {
            let mut failed = false;
            for t in r.tasks {
                if t.committed {
                    assert!(
                        !failed,
                        "round {}: commit after a failed task violates InOrder",
                        r.round
                    );
                } else {
                    failed = true;
                }
            }
        }
    }
    let mut heap = Heap::new();
    let hot = heap.alloc(ObjData::scalar_i64(0));
    let side = heap.alloc(ObjData::zeros_i64(64));
    let mut reds = RedVars::new();
    let p = params(ConflictPolicy::Raw, CommitOrder::InOrder, 4, 1);
    run_loop_observed(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, 48),
        &p,
        Driver::sequential(),
        |ctx, i| {
            // Everyone reads the hot cell; every third iteration writes it.
            let v = ctx.tx.read_i64(hot, 0);
            if i % 3 == 0 {
                ctx.tx.write_i64(hot, 0, v + 1);
            } else {
                ctx.tx.write_i64(side, i as usize, v);
            }
        },
        &mut PrefixCheck,
    )
    .unwrap();
    assert_eq!(heap.get(hot).i64s()[0], 16);
}

/// Transactional free/alloc interplay: nodes freed by one committed
/// transaction are observed dead by retried ones, and replacement
/// allocations never collide.
#[test]
fn free_then_reuse_across_transactions() {
    let mut heap = Heap::new();
    let slots = heap.alloc(ObjData::zeros_i64(16));
    let victims: Vec<ObjId> = (0..16)
        .map(|i| heap.alloc(ObjData::scalar_i64(i)))
        .collect();
    for (i, v) in victims.iter().enumerate() {
        heap.get_mut(slots).i64s_mut()[i] = v.to_i64();
    }
    let mut reds = RedVars::new();
    let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 4, 2);
    run_loop(
        &mut heap,
        &mut reds,
        &mut RangeSpace::new(0, 16),
        &p,
        Driver::threaded(),
        |ctx, i| {
            let i = i as usize;
            let old = ObjId::from_i64(ctx.tx.read_i64(slots, i));
            let val = ctx.tx.read_i64(old, 0);
            ctx.tx.free(old);
            let fresh = ctx.tx.alloc(ObjData::scalar_i64(val * 10));
            ctx.tx.write_i64(slots, i, fresh.to_i64());
        },
    )
    .unwrap();
    for i in 0..16 {
        let id = ObjId::from_i64(heap.get(slots).i64s()[i]);
        assert_eq!(heap.get(id).i64s()[0], (i as i64) * 10);
    }
    assert_eq!(heap.live_objects(), 17, "16 replacements + the slot table");
}

/// Threaded stress: hundreds of small transactions over shared state on
/// real threads, repeated, must be deterministic and exact.
#[test]
fn threaded_stress_is_exact_and_repeatable() {
    let run = || {
        let mut heap = Heap::new();
        let counters = heap.alloc(ObjData::zeros_i64(8));
        let log = heap.alloc(ObjData::zeros_i64(512));
        let mut reds = RedVars::new();
        let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 8, 4);
        let stats = run_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 512),
            &p,
            Driver::threaded(),
            |ctx, i| {
                let c = (i % 8) as usize;
                let v = ctx.tx.read_i64(counters, c);
                ctx.tx.write_i64(counters, c, v + 1);
                ctx.tx.write_i64(log, i as usize, v);
            },
        )
        .unwrap();
        (heap.digest(), stats.attempts)
    };
    let (d1, a1) = run();
    let (d2, a2) = run();
    assert_eq!(d1, d2);
    assert_eq!(a1, a2);
}
