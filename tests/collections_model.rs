//! Model-based property tests for the ALTER collection classes: the
//! transactional structures must behave exactly like their std
//! counterparts under arbitrary operation sequences.

use alter::collections::{AlterHashSet, AlterList, AlterVec};
use alter::heap::{Heap, ObjId};
use alter::runtime::{Driver, ExecParams, LoopBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// Sequential list operations, applied to both AlterList and a Vec model.
#[derive(Clone, Debug)]
enum ListOp {
    PushBack(i64),
    /// Remove the k-th live node (mod current length).
    Remove(usize),
}

fn list_op_strategy() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        (-1000i64..1000).prop_map(ListOp::PushBack),
        (0usize..64).prop_map(ListOp::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// AlterList behaves as a `Vec` model under arbitrary push/remove
    /// sequences (sequential API).
    #[test]
    fn alter_list_matches_vec_model(ops in prop::collection::vec(list_op_strategy(), 0..48)) {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::new(&mut heap);
        let mut model: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                ListOp::PushBack(v) => {
                    list.push_back(&mut heap, v);
                    model.push(v);
                }
                ListOp::Remove(k) => {
                    if !model.is_empty() {
                        let k = k % model.len();
                        let node = ObjId::from_index(list.node_ids(&heap)[k] as u32);
                        list.seq_remove(&mut heap, node);
                        model.remove(k);
                    }
                }
            }
            prop_assert_eq!(list.seq_values(&heap), model.clone());
            prop_assert_eq!(list.len(&heap), model.len());
            prop_assert_eq!(list.is_empty(&heap), model.is_empty());
        }
    }

    /// AlterHashSet agrees with `std::collections::HashSet` on membership
    /// and cardinality after arbitrary insert streams run through the
    /// transactional engine.
    #[test]
    fn alter_hashset_matches_std_model(
        keys in prop::collection::vec(-200i64..200, 1..120),
        buckets in 1usize..40,
        cap in 1usize..6,
        workers in 1usize..5,
    ) {
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, buckets, cap);
        let params = ExecParams::new(workers, 4);
        let keys2 = keys.clone();
        LoopBuilder::new(&params)
            .range(0, keys.len() as u64)
            .run(&mut heap, Driver::sequential(), move |ctx, i| {
                set.insert(ctx, keys2[i as usize]);
            })
            .unwrap();
        let model: HashSet<i64> = keys.iter().copied().collect();
        prop_assert_eq!(set.seq_len(&heap), model.len());
        let got: HashSet<i64> = set.seq_keys(&heap).into_iter().collect();
        prop_assert_eq!(got, model);
    }

    /// AlterVec round-trips arbitrary contents through transactional and
    /// sequential access.
    #[test]
    fn alter_vec_roundtrips(values in prop::collection::vec(any::<i64>(), 1..64)) {
        let mut heap = Heap::new();
        let v: AlterVec<i64> = AlterVec::from_slice(&mut heap, &values);
        prop_assert_eq!(v.seq_to_vec(&heap), values.clone());

        // Rotate every element by one slot inside a parallel loop.
        let n = values.len();
        let params = ExecParams::new(2, 4);
        let snapshot = values.clone();
        LoopBuilder::new(&params)
            .range(0, n as u64)
            .run(&mut heap, Driver::sequential(), move |ctx, i| {
                let i = i as usize;
                v.set(ctx, i, snapshot[(i + 1) % n]);
            })
            .unwrap();
        let expect: Vec<i64> = (0..n).map(|i| values[(i + 1) % n]).collect();
        prop_assert_eq!(v.seq_to_vec(&heap), expect);
    }
}

/// Transactional removals from a list leave exactly the survivors,
/// regardless of chunking and conflicts.
#[test]
fn transactional_removals_keep_survivors() {
    for chunk in [1usize, 2, 5] {
        for workers in [1usize, 3, 4] {
            let mut heap = Heap::new();
            let list: AlterList<i64> = AlterList::from_iter(&mut heap, 0..40);
            let nodes = list.node_ids(&heap);
            let params = ExecParams::new(workers, chunk);
            LoopBuilder::new(&params)
                .items(nodes)
                .run(&mut heap, Driver::sequential(), |ctx, raw| {
                    let node = ObjId::from_index(raw as u32);
                    if list.is_node_live(ctx, node) {
                        let v = list.value(ctx, node);
                        if v % 3 == 0 {
                            list.remove(ctx, node);
                        }
                    }
                })
                .unwrap();
            let expect: Vec<i64> = (0..40).filter(|v| v % 3 != 0).collect();
            assert_eq!(
                list.seq_values(&heap),
                expect,
                "workers={workers} chunk={chunk}"
            );
        }
    }
}
