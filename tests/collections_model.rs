//! Model-based tests for the ALTER collection classes: the transactional
//! structures must behave exactly like their std counterparts under
//! arbitrary operation sequences.
//!
//! Operation sequences come from a fixed-seed SplitMix64 stream (the
//! workspace builds offline, without `proptest`), so failures replay
//! exactly; each assertion names its case index.

use alter::collections::{AlterHashSet, AlterList, AlterVec};
use alter::heap::{Heap, ObjId};
use alter::runtime::{Driver, ExecParams, LoopBuilder};
use std::collections::HashSet;

/// Minimal SplitMix64 for deterministic case generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// Sequential list operations, applied to both AlterList and a Vec model.
#[derive(Clone, Debug)]
enum ListOp {
    PushBack(i64),
    /// Remove the k-th live node (mod current length).
    Remove(usize),
}

/// AlterList behaves as a `Vec` model under arbitrary push/remove
/// sequences (sequential API).
#[test]
fn alter_list_matches_vec_model() {
    let mut rng = Rng(0xc011_0001);
    for case in 0..96 {
        let n_ops = rng.below(48);
        let ops: Vec<ListOp> = (0..n_ops)
            .map(|_| {
                if rng.below(2) == 0 {
                    ListOp::PushBack(rng.range_i64(-1000, 1000))
                } else {
                    ListOp::Remove(rng.below(64))
                }
            })
            .collect();
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::new(&mut heap);
        let mut model: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                ListOp::PushBack(v) => {
                    list.push_back(&mut heap, v);
                    model.push(v);
                }
                ListOp::Remove(k) => {
                    if !model.is_empty() {
                        let k = k % model.len();
                        let node = ObjId::from_index(list.node_ids(&heap)[k] as u32);
                        list.seq_remove(&mut heap, node);
                        model.remove(k);
                    }
                }
            }
            assert_eq!(list.seq_values(&heap), model, "case {case}");
            assert_eq!(list.len(&heap), model.len(), "case {case}");
            assert_eq!(list.is_empty(&heap), model.is_empty(), "case {case}");
        }
    }
}

/// AlterHashSet agrees with `std::collections::HashSet` on membership and
/// cardinality after arbitrary insert streams run through the
/// transactional engine.
#[test]
fn alter_hashset_matches_std_model() {
    let mut rng = Rng(0xc011_0002);
    for case in 0..48 {
        let n_keys = 1 + rng.below(119);
        let keys: Vec<i64> = (0..n_keys).map(|_| rng.range_i64(-200, 200)).collect();
        let buckets = 1 + rng.below(39);
        let cap = 1 + rng.below(5);
        let workers = 1 + rng.below(4);
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, buckets, cap);
        let params = ExecParams::new(workers, 4);
        let keys2 = keys.clone();
        LoopBuilder::new(&params)
            .range(0, keys.len() as u64)
            .run(&mut heap, Driver::sequential(), move |ctx, i| {
                set.insert(ctx, keys2[i as usize]);
            })
            .unwrap();
        let model: HashSet<i64> = keys.iter().copied().collect();
        assert_eq!(set.seq_len(&heap), model.len(), "case {case}");
        let got: HashSet<i64> = set.seq_keys(&heap).into_iter().collect();
        assert_eq!(got, model, "case {case}");
    }
}

/// AlterVec round-trips arbitrary contents through transactional and
/// sequential access.
#[test]
fn alter_vec_roundtrips() {
    let mut rng = Rng(0xc011_0003);
    for case in 0..48 {
        let n = 1 + rng.below(63);
        let values: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
        let mut heap = Heap::new();
        let v: AlterVec<i64> = AlterVec::from_slice(&mut heap, &values);
        assert_eq!(v.seq_to_vec(&heap), values, "case {case}");

        // Rotate every element by one slot inside a parallel loop.
        let params = ExecParams::new(2, 4);
        let snapshot = values.clone();
        LoopBuilder::new(&params)
            .range(0, n as u64)
            .run(&mut heap, Driver::sequential(), move |ctx, i| {
                let i = i as usize;
                v.set(ctx, i, snapshot[(i + 1) % n]);
            })
            .unwrap();
        let expect: Vec<i64> = (0..n).map(|i| values[(i + 1) % n]).collect();
        assert_eq!(v.seq_to_vec(&heap), expect, "case {case}");
    }
}

/// Transactional removals from a list leave exactly the survivors,
/// regardless of chunking and conflicts.
#[test]
fn transactional_removals_keep_survivors() {
    for chunk in [1usize, 2, 5] {
        for workers in [1usize, 3, 4] {
            let mut heap = Heap::new();
            let list: AlterList<i64> = AlterList::from_iter(&mut heap, 0..40);
            let nodes = list.node_ids(&heap);
            let params = ExecParams::new(workers, chunk);
            LoopBuilder::new(&params)
                .items(nodes)
                .run(&mut heap, Driver::sequential(), |ctx, raw| {
                    let node = ObjId::from_index(raw as u32);
                    if list.is_node_live(ctx, node) {
                        let v = list.value(ctx, node);
                        if v % 3 == 0 {
                            list.remove(ctx, node);
                        }
                    }
                })
                .unwrap();
            let expect: Vec<i64> = (0..40).filter(|v| v % 3 != 0).collect();
            assert_eq!(
                list.seq_values(&heap),
                expect,
                "workers={workers} chunk={chunk}"
            );
        }
    }
}
