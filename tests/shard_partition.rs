//! Seeded property test of the shard partition of `AccessSet`: the
//! per-shard views, fingerprints, and word-block overlap scans the sharded
//! heap validates with must reassemble the unsharded set exactly. Fifty
//! fixed-seed cases (SplitMix64; the workspace builds offline, without
//! `proptest`) each check, at every power-of-two shard count up to
//! `SHARD_LANES`:
//!
//! * the union of the shard views reproduces the original set range for
//!   range (and therefore its fingerprint and word count);
//! * the OR of the per-shard fingerprints equals the global fingerprint,
//!   and the per-shard word counts sum to `words()`;
//! * the OR over shards of the exact per-shard overlap verdict — both the
//!   word-block `shard_block_overlaps` scan and the shard-view cross
//!   product — equals the unsharded `overlaps` verdict.
//!
//! A failure names the case index for replay.

use alter::heap::{AccessSet, Fingerprint, ObjId, RangeSet, SHARD_LANES};

/// Minimal SplitMix64 for deterministic case generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % u64::from(bound)) as u32
    }
}

/// A random access set: a mix of clustered ids (same snapshot page, so the
/// same shard at every count) and spread ids (distinct pages), with short
/// word ranges that overlap another draw's ranges often enough for the
/// conflict verdicts to exercise both answers.
fn random_set(rng: &mut Rng) -> AccessSet {
    let mut set = AccessSet::new();
    for _ in 0..(1 + rng.below(40)) {
        // Bias toward a small id universe so two independent draws collide
        // on allocations (and words) in roughly half the cases.
        let id = match rng.below(3) {
            0 => rng.below(8),       // one hot page
            1 => 64 * rng.below(64), // page-aligned spread
            _ => rng.below(4096),    // anywhere
        };
        let lo = rng.below(96);
        let hi = lo + 1 + rng.below(32);
        set.insert(ObjId::from_index(id), lo, hi);
    }
    set
}

/// Canonical form for exact set equality: sorted `(id, ranges)` pairs.
fn canon(set: &AccessSet) -> Vec<(u32, Vec<(u32, u32)>)> {
    set.iter_sorted()
        .into_iter()
        .map(|(id, ranges)| (id.index(), ranges.iter().collect()))
        .collect()
}

#[test]
fn shard_views_partition_access_sets_at_every_count() {
    let mut rng = Rng(0x5eed_a11e);
    for case in 0..50 {
        let a = random_set(&mut rng);
        let b = random_set(&mut rng);
        let global_verdict = a.overlaps(&b);
        for shards in [1usize, 2, 4, 8, 16] {
            assert!(shards <= SHARD_LANES);
            let tag = format!("case {case}, {shards} shard(s)");

            let mut union = AccessSet::new();
            let mut fp = Fingerprint::default();
            let mut words = 0u64;
            let mut scan_verdict = false;
            let mut view_verdict = false;
            for s in 0..shards {
                let view = a.shard_view(s, shards);
                assert_eq!(
                    view.fingerprint(),
                    a.shard_fingerprint(s, shards),
                    "{tag}: a view's fingerprint is its shard's lanes"
                );
                union.union_with(&view);
                fp.union_with(a.shard_fingerprint(s, shards));
                words += a.shard_words(s, shards);
                scan_verdict |= a.shard_block_overlaps(&b, s, shards).0;
                view_verdict |= view.overlaps(&b.shard_view(s, shards));
            }
            assert_eq!(
                canon(&union),
                canon(&a),
                "{tag}: views must partition the set"
            );
            assert_eq!(
                fp,
                a.fingerprint(),
                "{tag}: shard fingerprints must OR to the global one"
            );
            assert_eq!(words, a.words(), "{tag}: shard words must sum to the total");
            assert_eq!(
                scan_verdict, global_verdict,
                "{tag}: per-shard block scans must reassemble the overlap verdict"
            );
            assert_eq!(
                view_verdict, global_verdict,
                "{tag}: shard-view overlaps must reassemble the overlap verdict"
            );
        }
    }
}

#[test]
fn block_scans_agree_with_exact_overlap() {
    let mut rng = Rng(0xb10c_5ca9);
    for case in 0..50 {
        let mut a = RangeSet::new();
        let mut b = RangeSet::new();
        for _ in 0..(1 + rng.below(12)) {
            let lo = rng.below(192);
            a.insert(lo, lo + 1 + rng.below(48));
            let lo = rng.below(192);
            b.insert(lo, lo + 1 + rng.below(48));
        }
        let (hit, words) = a.block_scan(&b);
        assert_eq!(
            hit,
            a.overlaps(&b),
            "case {case}: word-block verdict must equal the exact merge scan"
        );
        assert!(
            words <= a.words().min(b.words()),
            "case {case}: a block scan never compares more words than the \
             smaller set holds"
        );
    }
}
