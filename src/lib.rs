//! # alter — facade crate
//!
//! Re-exports the whole ALTER system (PLDI 2011 reproduction) behind one
//! dependency. See the individual crates for details:
//!
//! * [`heap`] — versioned object heap, snapshots, COW transactions.
//! * [`trace`] — deterministic structured tracing: events, recorders,
//!   metrics, JSONL export, flight-recorder rendering, trace hashing.
//! * [`runtime`] — annotation language, conflict policies, reductions, and
//!   the deterministic fork-join loop executor.
//! * [`collections`] — `AlterVec` / `AlterList` / `AlterMap` collection
//!   classes whose iterators act as induction variables.
//! * [`sim`] — deterministic virtual-time multicore simulator (substitute
//!   for the paper's 8-core Xeon; see DESIGN.md).
//! * [`analyze`] — dependence/annotation soundness analyzer: breakability
//!   classification, annotation linting, inference pruning verdicts, and
//!   the trace isolation sanitizer behind `alter-lint`.
//! * [`infer`] — test-driven annotation inference.
//! * [`workloads`] — the 12 evaluation loops from the paper.
//!
//! ## Quickstart
//!
//! ```
//! use alter::runtime::{Annotation, ExecParams, LoopBuilder, Driver};
//! use alter::heap::{Heap, ObjData};
//!
//! // A loop with a breakable dependence: x[i] = f(all of x).
//! let mut heap = Heap::new();
//! let xs = heap.alloc(ObjData::F64(vec![1.0; 8]));
//!
//! let ann: Annotation = "[StaleReads]".parse()?;
//! let params = ExecParams::from_annotation(&ann, 2, 2);
//! let stats = LoopBuilder::new(&params)
//!     .range(0, 8)
//!     .run(&mut heap, Driver::sequential(), |ctx, i| {
//!         let n = ctx.tx.len(xs);
//!         let sum = ctx.tx.with_f64s(xs, 0, n, |s| s.iter().sum::<f64>());
//!         ctx.tx.write_f64(xs, i as usize, sum / n as f64);
//!     })?;
//! assert_eq!(stats.committed, 4); // 8 iterations / chunk factor 2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use alter_analyze as analyze;
pub use alter_collections as collections;
pub use alter_heap as heap;
pub use alter_infer as infer;
pub use alter_runtime as runtime;
pub use alter_sim as sim;
pub use alter_trace as trace;
pub use alter_workloads as workloads;
