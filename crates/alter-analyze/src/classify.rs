//! Breakability classification and schedule-prediction verdicts.
//!
//! Two exports. [`classify_edge`] answers the static question: can this
//! dependence edge be *broken* — by snapshot isolation, by the StaleReads
//! policy, or by routing the location through a reduction — or is it
//! unbreakable? [`predict`] answers the dynamic question: under a given
//! (conflict policy, commit order) and probe geometry, is the loop
//! *provably* going to fail its probe? It simulates the runtime's exact
//! lock-step round algorithm (retries drain first, validation in ascending
//! task order against the round's committed write sets, in-order squash
//! cascade) over the replay-derived per-chunk access sets, and converts
//! the predicted retry rate and tracked-words footprint into conservative
//! must-fail verdicts.
//!
//! The contract is one-sided (see the crate docs): a [`Verdict::Unknown`]
//! probe must still be run; a must-fail verdict skips it. Thresholds carry
//! a safety margin precisely because the simulation is an approximation —
//! a retried task re-executes against a newer snapshot and may touch
//! different words than the sequential replay saw.

use alter_heap::{AccessSet, ObjId};
use alter_runtime::{
    CommitOrder, ConflictPolicy, DepEdge, DepKind, LocationStats, LoopSummary, RedOp,
};
use std::collections::{BTreeSet, VecDeque};

/// Analyzer knobs. The defaults mirror `InferConfig`: the probe geometry
/// (4 workers, chunk 16) and the 0.5 high-conflict threshold, plus the
/// analyzer's own safety margins.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Concurrent workers the probe will use.
    pub workers: usize,
    /// Iterations per transaction the probe will use.
    pub chunk: usize,
    /// The inference engine's high-conflict threshold (retry rate above
    /// which a probe is classified `h.c.`).
    pub high_conflict_threshold: f64,
    /// Extra margin on top of the threshold before the analyzer dares a
    /// must-fail verdict (the simulation is an approximation).
    pub prune_margin: f64,
    /// Per-transaction tracked-words budget of the probe.
    pub budget_words: u64,
    /// A chunk must track more than `oom_factor × budget_words` in the
    /// replay before the analyzer predicts an out-of-memory abort.
    pub oom_factor: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            workers: 4,
            chunk: 16,
            high_conflict_threshold: 0.5,
            prune_margin: 0.1,
            budget_words: 1 << 22,
            oom_factor: 2.0,
        }
    }
}

/// How (whether) a dependence edge can be broken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Breakability {
    /// A WAR edge: broken by snapshot isolation alone, under every model —
    /// writes land in private copies, earlier readers saw the snapshot.
    Snapshot,
    /// A RAW edge: the StaleReads policy commits through it (later
    /// iterations read stale snapshot values); `OutOfOrder`/TLS validation
    /// rejects it.
    StaleReads,
    /// Every access to the location flows through this one commutative
    /// operator, so a `Reduction(var, op)` annotation breaks the edge by
    /// merging private copies at commit.
    Reduction(RedOp),
    /// A WAW edge on a location that is not reduction-shaped: no
    /// annotation commits through it soundly (StaleReads validation
    /// rejects it; RAW validation would silently lose an update).
    Unbreakable,
}

/// Whether the location's accesses all flow through exactly one reduction
/// operator (scalar word 0 only, no plain reads or writes).
///
/// One caveat, inherited from the replay's operator log: an iteration that
/// both applies the operator *and* separately reads the cell raw is
/// indistinguishable from a purely reductive one. Such a probe still gets
/// run (never pruned), and the paper's testing-as-correctness contract
/// (§6) is the final arbiter either way.
pub fn reduction_shaped(loc: &LocationStats) -> Option<RedOp> {
    match loc.ops.as_slice() {
        [op] if loc.plain_iters == 0 && loc.max_word == 0 => Some(*op),
        _ => None,
    }
}

/// Classifies one dependence edge of a summary (see [`Breakability`]).
pub fn classify_edge(summary: &LoopSummary, edge: &DepEdge) -> Breakability {
    if let Some(loc) = summary.location(edge.obj) {
        if let Some(op) = reduction_shaped(loc) {
            return Breakability::Reduction(op);
        }
    }
    match edge.kind {
        DepKind::War => Breakability::Snapshot,
        DepKind::Raw => Breakability::StaleReads,
        DepKind::Waw => Breakability::Unbreakable,
    }
}

/// A conservative prediction for one probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No proof of failure — run the probe.
    Unknown,
    /// A single transaction's tracked sets exceed the budget by the safety
    /// factor: the probe will abort out-of-memory (paper §7.1, the
    /// AggloClust read sets).
    OutOfMemory {
        /// Replay-derived tracked words of the worst chunk.
        words: u64,
        /// The probe's budget.
        budget: u64,
    },
    /// The simulated schedule retries so much that the probe is certain to
    /// classify as high-conflicts (or trip its work-budget timeout first).
    HighConflicts {
        /// Predicted retry rate, in permille (deterministic integer form).
        rate_permille: u32,
    },
}

impl Verdict {
    /// Whether this verdict prunes the probe.
    pub fn must_fail(&self) -> bool {
        !matches!(self, Verdict::Unknown)
    }

    /// Short stable class name (`unknown`, `o.o.m.`, `h.c.`), matching the
    /// inference engine's outcome vocabulary.
    pub fn class(&self) -> &'static str {
        match self {
            Verdict::Unknown => "unknown",
            Verdict::OutOfMemory { .. } => "o.o.m.",
            Verdict::HighConflicts { .. } => "h.c.",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Unknown => write!(f, "unknown"),
            Verdict::OutOfMemory { words, budget } => {
                write!(f, "o.o.m. ({words} words > {budget} budget)")
            }
            Verdict::HighConflicts { rate_permille } => {
                write!(f, "h.c. (predicted retry rate {rate_permille}‰)")
            }
        }
    }
}

/// One simulated transaction: the union of its chunk's per-iteration sets.
struct ChunkSets {
    reads: AccessSet,
    writes: AccessSet,
}

/// Regroups the summary's per-iteration sets into per-chunk sets at the
/// probe geometry, dropping accesses to `elide`d objects (the allocations
/// a reduction annotation privatises).
fn chunk_sets(summary: &LoopSummary, chunk: usize, elide: &[ObjId]) -> Vec<ChunkSets> {
    let mut out = Vec::new();
    for iters in summary.iters.chunks(chunk.max(1)) {
        let mut cs = ChunkSets {
            reads: AccessSet::new(),
            writes: AccessSet::new(),
        };
        for it in iters {
            for &(obj, lo, hi) in &it.reads {
                if !elide.contains(&obj) {
                    cs.reads.insert(obj, lo, hi);
                }
            }
            for &(obj, lo, hi) in &it.writes {
                if !elide.contains(&obj) {
                    cs.writes.insert(obj, lo, hi);
                }
            }
        }
        out.push(cs);
    }
    out
}

/// The words written by *every* iteration of the loop (accumulator-style
/// locations). A sequentially observed write may be conditional — Floyd
/// writes a cell only when a path improves, so a re-execution against a
/// different snapshot writes different cells — but a word written by all
/// iterations alike is written regardless of what the iteration read.
/// Write-driven conflict predictions are restricted to these words.
fn universal_write_words(summary: &LoopSummary, elide: &[ObjId]) -> BTreeSet<(ObjId, u32)> {
    let mut universal: Option<BTreeSet<(ObjId, u32)>> = None;
    for it in &summary.iters {
        let mut cur = BTreeSet::new();
        for &(obj, lo, hi) in &it.writes {
            if !elide.contains(&obj) {
                for w in lo..hi {
                    cur.insert((obj, w));
                }
            }
        }
        universal = Some(match universal {
            None => cur,
            Some(prev) => prev.intersection(&cur).cloned().collect(),
        });
        if universal.as_ref().is_some_and(|u| u.is_empty()) {
            break;
        }
    }
    universal.unwrap_or_default()
}

/// The engine's conflict test, over summarised sets.
fn conflicts(policy: ConflictPolicy, task: &ChunkSets, earlier_writes: &AccessSet) -> bool {
    match policy {
        ConflictPolicy::Full => {
            task.reads.overlaps(earlier_writes) || task.writes.overlaps(earlier_writes)
        }
        ConflictPolicy::Waw => task.writes.overlaps(earlier_writes),
        ConflictPolicy::Raw => task.reads.overlaps(earlier_writes),
        ConflictPolicy::None => false,
    }
}

/// Predicts whether a probe under `(policy, order)` at the configured
/// geometry must fail, by simulating the lock-step round schedule over the
/// replay-derived chunk sets.
///
/// `elide` lists heap objects privatised by the candidate's reduction
/// annotation: their accesses vanish from the simulated sets, exactly as
/// the reduction machinery removes them from the real transaction sets.
/// Eliding can only *reduce* simulated conflicts, so an over-approximate
/// elision errs toward [`Verdict::Unknown`] — the safe direction.
///
/// An empty summary (no replay evidence) always yields
/// [`Verdict::Unknown`].
pub fn predict(
    summary: &LoopSummary,
    policy: ConflictPolicy,
    order: CommitOrder,
    elide: &[ObjId],
    cfg: &AnalyzeConfig,
) -> Verdict {
    if summary.is_empty() {
        return Verdict::Unknown;
    }
    let chunks = chunk_sets(summary, cfg.chunk, elide);

    // Out-of-memory first: a single over-budget transaction aborts the
    // probe before conflicts matter. Tracked words follow the policy's
    // track mode — StaleReads does not instrument reads.
    let mut worst: u64 = 0;
    for c in &chunks {
        let tracked = if policy.track_mode().tracks_reads() {
            c.reads.words() + c.writes.words()
        } else {
            c.writes.words()
        };
        worst = worst.max(tracked);
    }
    if (worst as f64) > cfg.oom_factor * cfg.budget_words as f64 {
        return Verdict::OutOfMemory {
            words: worst,
            budget: cfg.budget_words,
        };
    }
    if worst > cfg.budget_words {
        // Too close to call: the real run probably aborts out-of-memory
        // before any conflict verdict, so a high-conflict prediction here
        // could misreport the failure *kind*. Run the probe.
        return Verdict::Unknown;
    }

    if policy == ConflictPolicy::None {
        return Verdict::Unknown;
    }

    // Conflict predictions are driven by the committed tasks' *write*
    // sets, and sequentially observed writes may be conditional (written
    // only because of what the sequential iteration read). Read sets are
    // structural by comparison — an iteration reads its inputs no matter
    // what it finds in them. So under a read-tracking policy the full
    // replay sets are trusted, while a write-only policy (StaleReads)
    // only simulates conflicts on words every iteration writes.
    let chunks: Vec<ChunkSets> = if policy.track_mode().tracks_reads() {
        chunks
    } else {
        let universal = universal_write_words(summary, elide);
        if universal.is_empty() {
            return Verdict::Unknown;
        }
        chunks
            .into_iter()
            .map(|cs| {
                let mut writes = AccessSet::new();
                for &(obj, w) in &universal {
                    if cs.writes.contains_range(obj, w, w + 1) {
                        writes.insert(obj, w, w + 1);
                    }
                }
                ChunkSets {
                    reads: cs.reads,
                    writes,
                }
            })
            .collect()
    };

    // Schedule simulation: the engine's round algorithm verbatim — drain
    // pending retries first (they hold the lowest sequence numbers), fill
    // with fresh chunks up to the worker count, validate in ascending task
    // order against this round's committed write sets, and under in-order
    // commit squash everything after the first failure.
    let workers = cfg.workers.max(1);
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut next_fresh = 0usize;
    let mut attempts: u64 = 0;
    let mut commits: u64 = 0;
    while !pending.is_empty() || next_fresh < chunks.len() {
        let mut round: Vec<usize> = Vec::with_capacity(workers);
        while round.len() < workers {
            match pending.pop_front() {
                Some(s) => round.push(s),
                None => break,
            }
        }
        while round.len() < workers && next_fresh < chunks.len() {
            round.push(next_fresh);
            next_fresh += 1;
        }
        let mut round_writes = AccessSet::new();
        let mut squash = false;
        for &seq in &round {
            attempts += 1;
            if squash || conflicts(policy, &chunks[seq], &round_writes) {
                if order == CommitOrder::InOrder {
                    squash = true;
                }
                pending.push_back(seq);
            } else {
                commits += 1;
                round_writes.union_with(&chunks[seq].writes);
            }
        }
    }

    let rate = if attempts == 0 {
        0.0
    } else {
        (attempts - commits) as f64 / attempts as f64
    };
    if rate >= cfg.high_conflict_threshold + cfg.prune_margin {
        Verdict::HighConflicts {
            rate_permille: (rate * 1000.0).round() as u32,
        }
    } else {
        Verdict::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_heap::{Heap, ObjData};
    use alter_runtime::{summarize_dependences, RangeSpace, RedVal};

    fn shared_counter_summary(n: u64) -> (LoopSummary, ObjId) {
        let mut heap = Heap::new();
        let acc = heap.alloc(ObjData::scalar_i64(0));
        let s = summarize_dependences(&mut heap, &mut RangeSpace::new(0, n), |ctx, _| {
            let v = ctx.tx.read_i64(acc, 0);
            ctx.tx.write_i64(acc, 0, v + 1);
        });
        (s, acc)
    }

    #[test]
    fn doall_shaped_loop_is_unknown_everywhere() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(64));
        let s = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 64), |ctx, i| {
            ctx.tx.write_f64(xs, i as usize, 1.0);
        });
        let cfg = AnalyzeConfig::default();
        for (policy, order) in [
            (ConflictPolicy::Raw, CommitOrder::InOrder),
            (ConflictPolicy::Raw, CommitOrder::OutOfOrder),
            (ConflictPolicy::Waw, CommitOrder::OutOfOrder),
            (ConflictPolicy::None, CommitOrder::OutOfOrder),
        ] {
            assert_eq!(predict(&s, policy, order, &[], &cfg), Verdict::Unknown);
        }
    }

    #[test]
    fn shared_counter_is_predicted_high_conflict() {
        let (s, _) = shared_counter_summary(512);
        let cfg = AnalyzeConfig::default();
        // Every chunk reads and writes word 0: only one task of each round
        // commits under any conflicting policy.
        for (policy, order) in [
            (ConflictPolicy::Raw, CommitOrder::InOrder),
            (ConflictPolicy::Raw, CommitOrder::OutOfOrder),
            (ConflictPolicy::Waw, CommitOrder::OutOfOrder),
        ] {
            let v = predict(&s, policy, order, &[], &cfg);
            assert!(v.must_fail(), "{policy:?}/{order:?} gave {v:?}");
            match v {
                Verdict::HighConflicts { rate_permille } => {
                    assert!(rate_permille >= 600, "{rate_permille}")
                }
                other => panic!("expected h.c., got {other:?}"),
            }
        }
        // DOALL never conflicts (it will mismatch instead — not provable
        // statically, so it stays unknown).
        assert_eq!(
            predict(&s, ConflictPolicy::None, CommitOrder::OutOfOrder, &[], &cfg),
            Verdict::Unknown
        );
    }

    #[test]
    fn eliding_the_accumulator_clears_the_prediction() {
        let (s, acc) = shared_counter_summary(512);
        let cfg = AnalyzeConfig::default();
        assert_eq!(
            predict(
                &s,
                ConflictPolicy::Waw,
                CommitOrder::OutOfOrder,
                &[acc],
                &cfg
            ),
            Verdict::Unknown
        );
    }

    #[test]
    fn huge_read_sets_predict_oom() {
        let mut heap = Heap::new();
        let table = heap.alloc(ObjData::zeros_f64(4096));
        let out = heap.alloc(ObjData::zeros_f64(64));
        let s = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 64), |ctx, i| {
            let v = ctx
                .tx
                .with_f64s(table, 0, 4096, |xs| xs.iter().sum::<f64>());
            ctx.tx.write_f64(out, i as usize, v);
        });
        let cfg = AnalyzeConfig {
            budget_words: 128,
            ..AnalyzeConfig::default()
        };
        // Read-tracking policies trip the budget...
        match predict(&s, ConflictPolicy::Raw, CommitOrder::InOrder, &[], &cfg) {
            Verdict::OutOfMemory { words, budget } => {
                assert!(words > 2 * budget);
            }
            other => panic!("expected o.o.m., got {other:?}"),
        }
        // ...while write-only tracking stays within it.
        assert_eq!(
            predict(&s, ConflictPolicy::Waw, CommitOrder::OutOfOrder, &[], &cfg),
            Verdict::Unknown
        );
    }

    #[test]
    fn in_order_squash_raises_the_rate() {
        // x[i] = x[i-1] + 1 with chunk 1: under RAW validation neighbours
        // conflict whenever they share a round.
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(256));
        let s = summarize_dependences(&mut heap, &mut RangeSpace::new(1, 256), |ctx, i| {
            let prev = ctx.tx.read_f64(xs, i as usize - 1);
            ctx.tx.write_f64(xs, i as usize, prev + 1.0);
        });
        let cfg = AnalyzeConfig {
            chunk: 1,
            ..AnalyzeConfig::default()
        };
        let tls = predict(&s, ConflictPolicy::Raw, CommitOrder::InOrder, &[], &cfg);
        assert!(tls.must_fail(), "chained reads serialize TLS: {tls:?}");
        // StaleReads ignores the RAW edge entirely: writes are disjoint.
        assert_eq!(
            predict(&s, ConflictPolicy::Waw, CommitOrder::OutOfOrder, &[], &cfg),
            Verdict::Unknown
        );
    }

    #[test]
    fn empty_summary_is_never_pruned() {
        let cfg = AnalyzeConfig::default();
        assert_eq!(
            predict(
                &LoopSummary::default(),
                ConflictPolicy::Raw,
                CommitOrder::InOrder,
                &[],
                &cfg
            ),
            Verdict::Unknown
        );
    }

    #[test]
    fn edge_classification_follows_location_shape() {
        let mut heap = Heap::new();
        let mut reds = alter_runtime::RedVars::new();
        let sum = alter_runtime::BoundScalar::declare(&mut heap, &mut reds, "sum", RedVal::I64(0));
        let xs = heap.alloc(ObjData::zeros_f64(256));
        let mut s = summarize_dependences(&mut heap, &mut RangeSpace::new(1, 256), {
            move |ctx, i| {
                let prev = ctx.tx.read_f64(xs, i as usize - 1);
                ctx.tx.write_f64(xs, i as usize, prev);
                sum.add(ctx, 1i64);
            }
        });
        s.label("sum", sum.object());
        for e in &s.edges {
            let b = classify_edge(&s, e);
            if e.obj == sum.object() {
                assert_eq!(b, Breakability::Reduction(RedOp::Add), "{e:?}");
            } else {
                assert_eq!(e.kind, DepKind::Raw);
                assert_eq!(b, Breakability::StaleReads);
            }
        }
    }
}
