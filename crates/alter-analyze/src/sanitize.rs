//! The trace isolation sanitizer behind `alter-lint`.
//!
//! Replays a recorded structured trace — with the opt-in
//! `ExecParams::record_sets` payloads — and re-checks the engine's
//! isolation invariants from first principles:
//!
//! * **Round structure** — rounds are consecutive within a run (a new run
//!   segment starts at round 0), and every verdict belongs to a round.
//! * **Deterministic commit order** — verdicts and commits are processed
//!   in ascending task order within a round.
//! * **Verdicts consistent with the recorded sets** — every
//!   `validate_ok`/`validate_conflict` is recomputed from the task's
//!   recorded read/write sets against the round's committed write sets,
//!   including the exact `(kind, obj, word, winner)` attribution the
//!   engine reported (reads checked before writes under FULL, first
//!   overlapping word in ascending object/word order, first committed
//!   writer wins).
//! * **Committed write sets disjoint** — under write-checking policies
//!   (StaleReads/FULL) the round's committed write sets must be pairwise
//!   disjoint; `commit` word counts must match the recorded sets.
//! * **Squash discipline** — squashes only under in-order commit, only
//!   after an earlier failure in the same round, attributed to the round's
//!   first failing task.
//! * **Run accounting** — `run_end` counters equal the replayed
//!   attempt/commit/round counts.
//!
//! A trace that ends mid-run (crash, OOM, work-budget abort, or a
//! truncated ring buffer) is tolerated: the sanitizer checks what is
//! there and does not require a trailing `run_end`.

use alter_heap::AccessSet;
use alter_runtime::{CommitOrder, ConflictPolicy};
use alter_trace::{parse_set, ConflictKind, Event};

/// The recording conditions of the trace under audit.
#[derive(Clone, Copy, Debug)]
pub struct SanitizeConfig {
    /// Conflict policy the run was validated under.
    pub conflict: ConflictPolicy,
    /// Commit order discipline of the run.
    pub order: CommitOrder,
}

/// One isolation-invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending event in the stream (0-based).
    pub event: usize,
    /// What was violated.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: {}", self.event, self.message)
    }
}

/// One committed transaction of the current round.
struct Committed {
    seq: u64,
    writes: AccessSet,
}

/// Recomputes the engine's conflict verdict for a task against the
/// round's committed writers, in commit order: the first writer with an
/// overlap wins, reads are checked before writes under FULL, and the
/// conflicting word is the first in ascending (object, word) order.
///
/// Shared with the schedule-space model checker (`check`), which
/// replays it under candidate commit orders — hence the borrowed
/// `(seq, write set)` pairs rather than this module's `Committed`.
pub(crate) fn recompute_conflict<'a>(
    policy: ConflictPolicy,
    reads: &AccessSet,
    writes: &AccessSet,
    committed: impl IntoIterator<Item = (u64, &'a AccessSet)>,
) -> Option<(ConflictKind, u32, u32, u64)> {
    for (seq, cw) in committed {
        let raw_hit = match policy {
            ConflictPolicy::Full | ConflictPolicy::Raw => reads.first_overlap(cw),
            _ => None,
        };
        if let Some((obj, word)) = raw_hit {
            return Some((ConflictKind::Raw, obj.index(), word, seq));
        }
        let waw_hit = match policy {
            ConflictPolicy::Full | ConflictPolicy::Waw => writes.first_overlap(cw),
            _ => None,
        };
        if let Some((obj, word)) = waw_hit {
            return Some((ConflictKind::Waw, obj.index(), word, seq));
        }
    }
    None
}

/// Audits a trace against the isolation invariants. Returns every
/// violation found (empty = clean). See the module docs for the checks.
pub fn sanitize(events: &[Event], cfg: &SanitizeConfig) -> Vec<Violation> {
    let mut v: Vec<Violation> = Vec::new();
    let mut fail = |idx: usize, msg: String| {
        v.push(Violation {
            event: idx,
            message: msg,
        })
    };

    // Per-run state.
    let mut in_run = false;
    let mut next_round: u64 = 0;
    let mut run_attempts: u64 = 0;
    let mut run_commits: u64 = 0;
    let mut run_rounds: u64 = 0;
    // Per-round state.
    let mut committed: Vec<Committed> = Vec::new();
    let mut last_verdict_seq: Option<u64> = None;
    let mut first_failure: Option<u64> = None;
    // The sets of the task about to receive its verdict.
    let mut pending: Option<(u64, AccessSet, AccessSet)> = None;
    let mut saw_sets = false;

    for (idx, ev) in events.iter().enumerate() {
        // Any verdict event consumes the pending sets; other events must
        // not interleave between task_sets and its verdict.
        match ev {
            Event::RoundStart { round, .. } => {
                if pending.is_some() {
                    fail(idx, "task_sets without a following verdict".into());
                    pending = None;
                }
                if *round == 0 {
                    // New run segment (convergence loops run the engine
                    // repeatedly inside one probe).
                    in_run = true;
                    next_round = 0;
                    run_attempts = 0;
                    run_commits = 0;
                    run_rounds = 0;
                } else if !in_run || *round != next_round {
                    fail(
                        idx,
                        format!("round {round} out of order (expected {next_round})"),
                    );
                    next_round = *round;
                }
                next_round += 1;
                run_rounds += 1;
                committed.clear();
                last_verdict_seq = None;
                first_failure = None;
            }
            Event::TaskStart { .. } => {}
            Event::TaskSets { seq, reads, writes } => {
                saw_sets = true;
                if pending.is_some() {
                    fail(idx, "task_sets without a following verdict".into());
                }
                let mut parse = |s: &str, what: &str| match parse_set(s) {
                    Ok(ranges) => {
                        let mut set = AccessSet::new();
                        for (obj, lo, hi) in ranges {
                            set.insert(obj, lo, hi);
                        }
                        Some(set)
                    }
                    Err(e) => {
                        fail(idx, format!("unparseable {what} set: {e}"));
                        None
                    }
                };
                match (parse(reads, "read"), parse(writes, "write")) {
                    (Some(r), Some(w)) => pending = Some((*seq, r, w)),
                    _ => pending = None,
                }
            }
            Event::ValidateOk { seq, .. }
            | Event::ValidateConflict { seq, .. }
            | Event::Squash { seq, .. } => {
                run_attempts += 1;
                if let Some(prev) = last_verdict_seq {
                    if *seq <= prev {
                        fail(
                            idx,
                            format!(
                                "verdict for task {seq} after task {prev}: validation order must ascend within a round"
                            ),
                        );
                    }
                }
                last_verdict_seq = Some(*seq);

                let sets = match pending.take() {
                    Some((pseq, r, w)) => {
                        if pseq != *seq {
                            fail(
                                idx,
                                format!(
                                    "verdict for task {seq} but recorded sets are for task {pseq}"
                                ),
                            );
                            None
                        } else {
                            Some((r, w))
                        }
                    }
                    None => {
                        if saw_sets && !matches!(ev, Event::Squash { .. }) {
                            fail(idx, format!("no recorded sets for task {seq}"));
                        }
                        None
                    }
                };

                match ev {
                    Event::ValidateOk { .. } => {
                        if let Some((r, w)) = &sets {
                            if let Some((kind, obj, word, winner)) = recompute_conflict(
                                cfg.conflict,
                                r,
                                w,
                                committed.iter().map(|c| (c.seq, &c.writes)),
                            ) {
                                fail(
                                    idx,
                                    format!(
                                        "task {seq} validated ok but its sets conflict ({kind}) with committed task {winner} at obj {obj} word {word}"
                                    ),
                                );
                            }
                        }
                        if first_failure.is_some() && cfg.order == CommitOrder::InOrder {
                            fail(
                                idx,
                                format!(
                                    "task {seq} validated after an in-order failure: it must have been squashed"
                                ),
                            );
                        }
                        // Remember the write set; the Commit event that
                        // must follow carries the word counts.
                        if let Some((_, w)) = sets {
                            committed.push(Committed {
                                seq: *seq,
                                writes: w,
                            });
                        } else {
                            committed.push(Committed {
                                seq: *seq,
                                writes: AccessSet::new(),
                            });
                        }
                    }
                    Event::ValidateConflict {
                        kind,
                        obj,
                        word,
                        winner_seq,
                        ..
                    } => {
                        first_failure.get_or_insert(*seq);
                        if let Some((r, w)) = &sets {
                            match recompute_conflict(
                                cfg.conflict,
                                r,
                                w,
                                committed.iter().map(|c| (c.seq, &c.writes)),
                            ) {
                                None => fail(
                                    idx,
                                    format!(
                                        "task {seq} reported a conflict but its sets are disjoint from every committed writer"
                                    ),
                                ),
                                Some((k, o, wd, win)) => {
                                    if (k, o, wd, win) != (*kind, obj.index(), *word, *winner_seq) {
                                        fail(
                                            idx,
                                            format!(
                                                "task {seq} conflict attribution mismatch: trace says {} obj {} word {} winner {}, sets say {} obj {} word {} winner {}",
                                                kind.as_str(), obj.index(), word, winner_seq,
                                                k.as_str(), o, wd, win
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Event::Squash { by_seq, .. } => {
                        if cfg.order != CommitOrder::InOrder {
                            fail(
                                idx,
                                format!("task {seq} squashed under out-of-order commit"),
                            );
                        }
                        match first_failure {
                            None => fail(
                                idx,
                                format!("task {seq} squashed with no earlier failure in the round"),
                            ),
                            Some(f) => {
                                if *by_seq != f {
                                    fail(
                                        idx,
                                        format!(
                                            "task {seq} squashed by {by_seq}, but the round's first failure was {f}"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Event::Commit {
                seq,
                read_words,
                write_words,
                ..
            } => {
                run_commits += 1;
                match committed.last() {
                    Some(c) if c.seq == *seq => {
                        if saw_sets {
                            let w = c.writes.words();
                            if w != *write_words {
                                fail(
                                    idx,
                                    format!(
                                        "task {seq} commit claims {write_words} write words but its recorded set has {w}"
                                    ),
                                );
                            }
                            // Read words are only recorded under
                            // read-tracking policies; recorded reads are
                            // empty otherwise and both sides agree on 0.
                            let _ = read_words;
                        }
                        // Disjointness under write-checking policies: the
                        // new writer must not overlap any earlier one.
                        if matches!(cfg.conflict, ConflictPolicy::Full | ConflictPolicy::Waw) {
                            for earlier in &committed[..committed.len() - 1] {
                                if let Some((obj, word)) = c.writes.first_overlap(&earlier.writes) {
                                    fail(
                                        idx,
                                        format!(
                                            "committed write sets overlap: tasks {} and {} both wrote obj {} word {}",
                                            earlier.seq,
                                            seq,
                                            obj.index(),
                                            word
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    _ => fail(
                        idx,
                        format!("commit for task {seq} without a preceding validate_ok"),
                    ),
                }
            }
            Event::ReductionMerge { .. } => {}
            Event::Oom { .. } | Event::Crash { .. } | Event::WorkBudgetExceeded { .. } => {
                // Abnormal termination: the run ends here; drop any
                // half-recorded task.
                pending = None;
                in_run = false;
            }
            // Phase-profile entries land after a round's verdicts and carry
            // no isolation evidence; probe brackets are outside rounds.
            // Ticket lifecycle events mirror the task events the sanitizer
            // already checks (issue ↔ task_start, validate ↔ commit,
            // requeue ↔ conflict/squash) and carry no access sets.
            Event::PhaseProfile { .. }
            | Event::TicketIssued { .. }
            | Event::TicketValidated { .. }
            | Event::TicketRequeued { .. }
            | Event::ProbeStart { .. }
            | Event::ProbeOutcome { .. } => {}
            Event::RunEnd {
                rounds,
                attempts,
                committed: run_committed,
            } => {
                if pending.is_some() {
                    fail(idx, "task_sets without a following verdict".into());
                    pending = None;
                }
                if in_run {
                    if *rounds != run_rounds {
                        fail(
                            idx,
                            format!("run_end claims {rounds} rounds, replay counted {run_rounds}"),
                        );
                    }
                    if *attempts != run_attempts {
                        fail(
                            idx,
                            format!(
                                "run_end claims {attempts} attempts, replay counted {run_attempts}"
                            ),
                        );
                    }
                    if *run_committed != run_commits {
                        fail(
                            idx,
                            format!(
                                "run_end claims {run_committed} commits, replay counted {run_commits}"
                            ),
                        );
                    }
                }
                in_run = false;
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_heap::ObjId;

    fn cfg_stale() -> SanitizeConfig {
        SanitizeConfig {
            conflict: ConflictPolicy::Waw,
            order: CommitOrder::OutOfOrder,
        }
    }

    fn ok_trace() -> Vec<Event> {
        vec![
            Event::RoundStart {
                round: 0,
                tasks: 2,
                snapshot_slots: 4,
            },
            Event::TaskSets {
                seq: 0,
                reads: String::new(),
                writes: "1:0-4".into(),
            },
            Event::ValidateOk {
                seq: 0,
                validate_words: 0,
            },
            Event::Commit {
                seq: 0,
                read_words: 0,
                write_words: 4,
                allocs: 0,
                frees: 0,
            },
            Event::TaskSets {
                seq: 1,
                reads: String::new(),
                writes: "1:4-8".into(),
            },
            Event::ValidateOk {
                seq: 1,
                validate_words: 4,
            },
            Event::Commit {
                seq: 1,
                read_words: 0,
                write_words: 4,
                allocs: 0,
                frees: 0,
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 2,
                committed: 2,
            },
        ]
    }

    #[test]
    fn clean_trace_passes() {
        assert_eq!(sanitize(&ok_trace(), &cfg_stale()), vec![]);
    }

    #[test]
    fn overlapping_committed_write_sets_are_rejected() {
        let mut evs = ok_trace();
        // Second task now writes words 2..6, overlapping the first.
        evs[4] = Event::TaskSets {
            seq: 1,
            reads: String::new(),
            writes: "1:2-6".into(),
        };
        let violations = sanitize(&evs, &cfg_stale());
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("validated ok but its sets conflict")),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("committed write sets overlap")),
            "{violations:?}"
        );
    }

    #[test]
    fn reordered_commits_are_rejected() {
        let mut evs = ok_trace();
        // Swap the two (task_sets, validate_ok, commit) triples: task 1
        // now validates before task 0 — commit order broken.
        evs.swap(1, 4);
        evs.swap(2, 5);
        evs.swap(3, 6);
        let violations = sanitize(&evs, &cfg_stale());
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("validation order must ascend")),
            "{violations:?}"
        );
    }

    #[test]
    fn fabricated_conflict_is_rejected() {
        let mut evs = ok_trace();
        // Replace task 1's verdict with a conflict its sets don't show.
        evs[5] = Event::ValidateConflict {
            seq: 1,
            kind: ConflictKind::Waw,
            obj: ObjId::from_index(1),
            word: 0,
            winner_seq: 0,
        };
        evs.remove(6); // its commit
        let violations = sanitize(&evs, &cfg_stale());
        assert!(
            violations.iter().any(|v| v
                .message
                .contains("sets are disjoint from every committed writer")),
            "{violations:?}"
        );
        // And the run_end counters no longer match either.
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("run_end claims")),
            "{violations:?}"
        );
    }

    #[test]
    fn wrong_commit_word_count_is_rejected() {
        let mut evs = ok_trace();
        evs[6] = Event::Commit {
            seq: 1,
            read_words: 0,
            write_words: 7,
            allocs: 0,
            frees: 0,
        };
        let violations = sanitize(&evs, &cfg_stale());
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("claims 7 write words")),
            "{violations:?}"
        );
    }

    #[test]
    fn squash_requires_in_order_and_a_failure() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: 0,
            },
            Event::Squash { seq: 0, by_seq: 0 },
        ];
        let violations = sanitize(&evs, &cfg_stale());
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("squashed under out-of-order commit")),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("no earlier failure")),
            "{violations:?}"
        );
    }

    #[test]
    fn rounds_must_be_consecutive() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: 0,
            },
            Event::RoundStart {
                round: 2,
                tasks: 1,
                snapshot_slots: 0,
            },
        ];
        let violations = sanitize(&evs, &cfg_stale());
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("out of order")),
            "{violations:?}"
        );
    }

    #[test]
    fn truncated_run_without_run_end_is_tolerated() {
        let mut evs = ok_trace();
        evs.pop();
        evs.push(Event::Crash {
            message: "boom".into(),
        });
        assert_eq!(sanitize(&evs, &cfg_stale()), vec![]);
    }
}
