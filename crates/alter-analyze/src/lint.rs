//! The annotation linter: structured soundness diagnostics for a parsed
//! annotation (or the DOALL/TLS targets) against a loop's dependence
//! summary.
//!
//! Rules (DESIGN.md §11):
//!
//! * **DOALL** — any RAW or WAW edge is an error (no conflict checking,
//!   so a broken flow dependence or lost update commits silently). WAR
//!   edges are informational: snapshotting breaks them for free.
//! * **TLS** — always sound (sequential semantics); RAW/WAW edges are
//!   warnings because validation will serialize the loop.
//! * **OutOfOrder** — RAW edges are errors when they connect (nearly)
//!   every iteration pair ("cannot commit") and warnings otherwise; a WAW
//!   edge with no covering RAW on the same words is an error, because RAW
//!   validation never looks at write sets and the lost update commits
//!   silently.
//! * **StaleReads** — RAW edges are informational (that is the point of
//!   the annotation); WAW edges are errors when pervasive, warnings
//!   otherwise.
//! * **Reductions** — `Reduction(var, op)` is checked against the
//!   location's access shape: plain (non-reductive) accesses, multiple
//!   observed operators, or a non-scalar location are errors; an
//!   annotation operator that differs from the observed source operator is
//!   only a warning (the paper's SG3D writes `err max=` under a
//!   `Reduction(err, +)` annotation — testing is the final arbiter).
//!   Locations that check out reduction-shaped suppress the policy
//!   diagnostics above, exactly as the runtime privatises them.
//!
//! Diagnostics are deterministic: generation follows the summary's sorted
//! edge order and the annotation's declaration order, and
//! [`diagnostics_json`] renders them in a canonical single-line JSON form
//! (fixed field order, no external deps) suitable for byte-comparison.

use crate::classify::reduction_shaped;
use alter_runtime::{Annotation, DepKind, LoopSummary, Policy};
use std::fmt::Write as _;

/// What the linter checks an annotation-shaped target against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintTarget {
    /// DOALL: no conflict checking at all (Theorem 4.4).
    Doall,
    /// Thread-level speculation: RAW validation, in-order commit
    /// (Theorem 4.3) — sound for every loop.
    Tls,
    /// A parsed annotation: `[OutOfOrder]`, `[StaleReads]`, with optional
    /// reductions.
    Annotated(Annotation),
}

impl std::fmt::Display for LintTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintTarget::Doall => f.write_str("DOALL"),
            LintTarget::Tls => f.write_str("TLS"),
            LintTarget::Annotated(a) => write!(f, "{a}"),
        }
    }
}

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The annotation is unsound or cannot make progress concurrently.
    Error,
    /// Suspicious: likely high-conflict, or sound only by testing.
    Warning,
    /// Informational: a dependence the model breaks by design.
    Info,
}

impl Severity {
    /// Stable lowercase name used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// One structured diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable rule code, e.g. `doall-waw`.
    pub code: &'static str,
    /// The location (allocation index) the diagnostic is about, if any.
    pub obj: Option<u32>,
    /// Human name of the location, when the summary has a label for it.
    pub label: Option<String>,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        )
    }
}

/// Renders diagnostics in canonical machine-readable form: one JSON object
/// per line, fixed field order, byte-stable across runs.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = write!(
            out,
            "{{\"severity\":\"{}\",\"code\":\"{}\"",
            d.severity.as_str(),
            d.code
        );
        if let Some(obj) = d.obj {
            let _ = write!(out, ",\"obj\":{obj}");
        }
        if let Some(label) = &d.label {
            let _ = write!(out, ",\"label\":\"{}\"", escape(label));
        }
        let _ = writeln!(out, ",\"message\":\"{}\"}}", escape(&d.message));
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Names a location for messages: `delta (obj 3)` or `obj 3`.
fn loc_name(summary: &LoopSummary, obj: alter_heap::ObjId) -> String {
    match summary.label_of(obj) {
        Some(n) => format!("{n} (obj {})", obj.index()),
        None => format!("obj {}", obj.index()),
    }
}

/// Whether an edge connects (nearly) every iteration pair it could: each
/// later iteration touching the location depends on an earlier one.
fn pervasive(summary: &LoopSummary, edge: &alter_runtime::DepEdge) -> bool {
    summary.iterations > 1 && edge.dsts >= summary.iterations - 1
}

/// Lints one target against a loop summary. See the module docs for the
/// rule set. An empty summary yields a single informational diagnostic.
pub fn lint(summary: &LoopSummary, target: &LintTarget) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if summary.is_empty() {
        out.push(Diagnostic {
            severity: Severity::Info,
            code: "no-evidence",
            obj: None,
            label: None,
            message: "no replay evidence: summary is empty".into(),
        });
        return out;
    }

    let mut diag = |severity, code, obj: Option<alter_heap::ObjId>, message: String| {
        out.push(Diagnostic {
            severity,
            code,
            obj: obj.map(|o| o.index()),
            label: obj.and_then(|o| summary.label_of(o).map(str::to_owned)),
            message,
        });
    };

    // Locations privatised by the target's reductions (when their shape
    // checks out) are exempt from the policy rules.
    let reductions: &[alter_runtime::Reduction] = match target {
        LintTarget::Annotated(a) => &a.reductions,
        _ => &[],
    };
    let covered: Vec<alter_heap::ObjId> = reductions
        .iter()
        .filter_map(|r| summary.labeled(&r.var))
        .filter(|&o| summary.location(o).and_then(reduction_shaped).is_some())
        .collect();

    for edge in &summary.edges {
        if covered.contains(&edge.obj) {
            continue;
        }
        let name = loc_name(summary, edge.obj);
        let shape = if pervasive(summary, edge) {
            format!(
                "{} edge on every iteration pair (word {}, distance {}..{})",
                edge.kind, edge.word, edge.min_dist, edge.max_dist
            )
        } else {
            format!(
                "{} edge over {} of {} iterations (word {}, distance {}..{})",
                edge.kind, edge.dsts, summary.iterations, edge.word, edge.min_dist, edge.max_dist
            )
        };
        match (target, edge.kind) {
            (LintTarget::Doall, DepKind::Raw) => diag(
                Severity::Error,
                "doall-raw",
                Some(edge.obj),
                format!("DOALL invalid: {shape} on {name} commits stale reads unchecked"),
            ),
            (LintTarget::Doall, DepKind::Waw) => diag(
                Severity::Error,
                "doall-waw",
                Some(edge.obj),
                format!("DOALL invalid: {shape} on {name} loses updates"),
            ),
            (LintTarget::Doall, DepKind::War) | (LintTarget::Tls, DepKind::War) => diag(
                Severity::Info,
                "war-snapshot",
                Some(edge.obj),
                format!("{shape} on {name}: broken by snapshot isolation"),
            ),
            (LintTarget::Tls, _) => diag(
                Severity::Warning,
                "tls-serializes",
                Some(edge.obj),
                format!("TLS stays sound but will serialize: {shape} on {name}"),
            ),
            (LintTarget::Annotated(a), DepKind::Raw) => match a.policy {
                Policy::OutOfOrder => {
                    let sev = if pervasive(summary, edge) {
                        Severity::Error
                    } else {
                        Severity::Warning
                    };
                    let verb = if sev == Severity::Error {
                        "cannot commit"
                    } else {
                        "will retry"
                    };
                    diag(
                        sev,
                        "outoforder-raw",
                        Some(edge.obj),
                        format!("OutOfOrder {verb}: {shape} on {name}"),
                    );
                }
                Policy::StaleReads => diag(
                    Severity::Info,
                    "stalereads-raw-broken",
                    Some(edge.obj),
                    format!("{shape} on {name}: StaleReads commits through it (reads may be stale)"),
                ),
            },
            (LintTarget::Annotated(a), DepKind::Waw) => match a.policy {
                Policy::OutOfOrder => diag(
                    Severity::Error,
                    "outoforder-waw-unchecked",
                    Some(edge.obj),
                    format!(
                        "OutOfOrder unsound: {shape} on {name} is invisible to RAW validation (lost update)"
                    ),
                ),
                Policy::StaleReads => {
                    let sev = if pervasive(summary, edge) {
                        Severity::Error
                    } else {
                        Severity::Warning
                    };
                    let verb = if sev == Severity::Error {
                        "cannot commit"
                    } else {
                        "will retry"
                    };
                    diag(
                        sev,
                        "stalereads-waw",
                        Some(edge.obj),
                        format!("StaleReads {verb}: {shape} on {name}"),
                    );
                }
            },
            (LintTarget::Annotated(_), DepKind::War) => diag(
                Severity::Info,
                "war-snapshot",
                Some(edge.obj),
                format!("{shape} on {name}: broken by snapshot isolation"),
            ),
        }
    }

    // Reduction shape checks, in annotation declaration order.
    for r in reductions {
        let Some(obj) = summary.labeled(&r.var) else {
            diag(
                Severity::Warning,
                "reduction-unknown-var",
                None,
                format!(
                    "Reduction({}, {}) names a variable the summary has no label for",
                    r.var, r.op
                ),
            );
            continue;
        };
        let Some(loc) = summary.location(obj) else {
            diag(
                Severity::Info,
                "reduction-untouched",
                Some(obj),
                format!("Reduction({}, {}): the loop never touches it", r.var, r.op),
            );
            continue;
        };
        let dist = summary.edges_on(obj).map(|e| e.min_dist).min().unwrap_or(0);
        if loc.plain_iters > 0 {
            diag(
                Severity::Error,
                "reduction-plain-access",
                Some(obj),
                format!(
                    "Reduction({}, {}) unsound: {} read non-reductively in {} of {} iterations at iteration distance {}",
                    r.var, r.op, r.var, loc.plain_iters, summary.iterations, dist
                ),
            );
        }
        if loc.ops.len() > 1 {
            let names: Vec<&str> = loc.ops.iter().map(|o| o.as_str()).collect();
            diag(
                Severity::Error,
                "reduction-mixed-ops",
                Some(obj),
                format!(
                    "Reduction({}, {}) unsound: multiple operators observed ({})",
                    r.var,
                    r.op,
                    names.join(", ")
                ),
            );
        }
        if loc.max_word > 0 {
            diag(
                Severity::Error,
                "reduction-not-scalar",
                Some(obj),
                format!(
                    "Reduction({}, {}) unsound: {} spans {} words (reductions privatise scalars)",
                    r.var,
                    r.op,
                    r.var,
                    loc.max_word + 1
                ),
            );
        }
        if let [op] = loc.ops.as_slice() {
            if loc.plain_iters == 0 && loc.max_word == 0 {
                if *op != r.op {
                    diag(
                        Severity::Warning,
                        "reduction-op-mismatch",
                        Some(obj),
                        format!(
                            "Reduction({}, {}): observed source operator is {} — sound only if testing accepts the {} merge (paper §4.2)",
                            r.var, r.op, op, r.op
                        ),
                    );
                } else {
                    diag(
                        Severity::Info,
                        "reduction-verified",
                        Some(obj),
                        format!(
                            "Reduction({}, {}) verified: every access flows through {}",
                            r.var, r.op, op
                        ),
                    );
                }
            }
        } else if loc.ops.is_empty() && loc.plain_iters > 0 {
            // Already reported as plain access; nothing reductive at all.
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_heap::Heap;
    use alter_runtime::{summarize_dependences, BoundScalar, RangeSpace, RedVal, RedVars};

    fn counter_summary() -> (LoopSummary, alter_heap::ObjId) {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));
        let mut s = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 32), {
            move |ctx, _| {
                delta.add(ctx, 1.0);
            }
        });
        s.label("delta", delta.object());
        (s, delta.object())
    }

    #[test]
    fn doall_flags_raw_and_waw_as_errors() {
        let (s, obj) = counter_summary();
        let diags = lint(&s, &LintTarget::Doall);
        let errors: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert_eq!(errors.len(), 2, "{diags:?}");
        assert!(errors.iter().all(|d| d.obj == Some(obj.index())));
        assert!(errors.iter().any(|d| d.code == "doall-raw"));
        assert!(errors.iter().any(|d| d.code == "doall-waw"));
        assert!(diags.iter().any(|d| d.message.contains("DOALL invalid")));
    }

    #[test]
    fn tls_warns_but_never_errors() {
        let (s, _) = counter_summary();
        let diags = lint(&s, &LintTarget::Tls);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
        assert!(diags.iter().any(|d| d.code == "tls-serializes"));
    }

    #[test]
    fn stale_reads_with_the_reduction_is_clean() {
        let (s, _) = counter_summary();
        let ann: Annotation = "[StaleReads + Reduction(delta, +)]".parse().unwrap();
        let diags = lint(&s, &LintTarget::Annotated(ann));
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == "reduction-verified"));
    }

    #[test]
    fn bare_stale_reads_cannot_commit_the_counter() {
        let (s, _) = counter_summary();
        let ann: Annotation = "[StaleReads]".parse().unwrap();
        let diags = lint(&s, &LintTarget::Annotated(ann));
        let err = diags
            .iter()
            .find(|d| d.code == "stalereads-waw")
            .expect("WAW error");
        assert_eq!(err.severity, Severity::Error);
        assert_eq!(err.label.as_deref(), Some("delta"));
        assert!(err.message.contains("cannot commit"), "{}", err.message);
        assert!(
            err.message.contains("every iteration pair"),
            "{}",
            err.message
        );
    }

    #[test]
    fn non_reductive_read_is_reported_with_distance() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));
        let mut s = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 16), {
            move |ctx, i| {
                if i % 2 == 0 {
                    delta.add(ctx, 1.0);
                } else {
                    let _ = ctx.tx.read_f64(delta.object(), 0);
                }
            }
        });
        s.label("delta", delta.object());
        let ann: Annotation = "[StaleReads + Reduction(delta, +)]".parse().unwrap();
        let diags = lint(&s, &LintTarget::Annotated(ann));
        let err = diags
            .iter()
            .find(|d| d.code == "reduction-plain-access")
            .expect("plain access error");
        assert_eq!(err.severity, Severity::Error);
        assert!(
            err.message.contains("read non-reductively"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains("iteration distance 1"),
            "{}",
            err.message
        );
    }

    #[test]
    fn operator_mismatch_is_a_warning_not_an_error() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let err_var = BoundScalar::declare(&mut heap, &mut reds, "err", RedVal::F64(0.0));
        let mut s = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 16), {
            move |ctx, i| {
                err_var.max(ctx, i as f64);
            }
        });
        s.label("err", err_var.object());
        let ann: Annotation = "[StaleReads + Reduction(err, +)]".parse().unwrap();
        let diags = lint(&s, &LintTarget::Annotated(ann));
        let w = diags
            .iter()
            .find(|d| d.code == "reduction-op-mismatch")
            .expect("mismatch warning");
        assert_eq!(w.severity, Severity::Warning);
        // The covered location suppresses the WAW policy error.
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn json_form_is_canonical_and_deterministic() {
        let (s, _) = counter_summary();
        let ann: Annotation = "[StaleReads]".parse().unwrap();
        let a = diagnostics_json(&lint(&s, &LintTarget::Annotated(ann.clone())));
        let b = diagnostics_json(&lint(&s, &LintTarget::Annotated(ann)));
        assert_eq!(a, b);
        let first = a.lines().next().unwrap();
        assert!(first.starts_with("{\"severity\":\""), "{first}");
        assert!(first.contains("\"code\":\""), "{first}");
        assert!(first.contains("\"label\":\"delta\""), "{first}");
        assert!(first.ends_with('}'), "{first}");
    }

    #[test]
    fn empty_summary_reports_no_evidence() {
        let diags = lint(&LoopSummary::default(), &LintTarget::Doall);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "no-evidence");
        assert_eq!(diags[0].severity, Severity::Info);
    }
}
