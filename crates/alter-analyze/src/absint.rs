//! Symbolic loop-summary abstract interpretation (`alter-absint`).
//!
//! PR 5's [`LoopSummary`] is a *dynamic* artifact: everything the analyzer
//! knows it learned by replaying the loop once. This module adds the static
//! half of the synergy: each workload declares its loop body's accesses as
//! symbolic expressions over the iteration ordinal (a [`LoopSpec`]), and an
//! abstract interpreter evaluates them under an interval × stride
//! (congruence) domain ([`StrideInterval`]) into a [`StaticSummary`] —
//! symbolic per-iteration footprints plus dependence edges with symbolic
//! iteration distances — without executing a single iteration.
//!
//! Two consumers sit on top:
//!
//! * [`static_verdict`] mirrors the classifier's taxonomy with a
//!   *two-sided* answer: [`StaticVerdict::ProvedSafe`] (the probe must
//!   succeed — no loop-carried edges and the per-transaction footprint fits
//!   the budget), [`StaticVerdict::ProvedUnsound`] (the probe must fail —
//!   iteration 0's unconditional footprint alone exceeds the tracked-words
//!   budget), or [`StaticVerdict::Unknown`] (fall back to the dynamic
//!   tier). The inference engine skips the probe entirely in the first two
//!   cases.
//! * [`cross_validate`] enforces the soundness contract structurally:
//!   `static ⊇ dynamic` — every word the replay observed must be covered by
//!   a declared access, and every observed dependence edge must be covered
//!   by a static edge whose distance interval contains the observed
//!   distances. A `LoopSpec` that under-declares its loop fails tier-1.
//!
//! The domain is deliberately small. A [`StrideInterval`] `⟨lo, hi, s⟩`
//! concretises to `{lo, lo+s, …, hi}` (`s = 0` means the singleton `{lo}`);
//! `join` falls back to the gcd congruence, `add`/`mul` are the standard
//! sound transfer functions, and `widen` caps unstable bounds so chains
//! stabilise. Seeded property tests in `tests/absint.rs` check soundness
//! and monotonicity of all four against concrete u64 sets.

use crate::classify::{AnalyzeConfig, Verdict};
use alter_heap::ObjId;
use alter_runtime::{ConflictPolicy, DepEdge, DepKind, LoopSummary, RedOp};
use std::collections::BTreeSet;
use std::fmt;

/// Widening cap for upper bounds: any unstable `hi` jumps straight here,
/// so a widening chain changes `hi` at most once.
pub const WIDEN_TOP: u64 = u64::MAX >> 1;

/// Greatest common divisor with the lattice convention `gcd(0, x) = x`.
fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

/// A non-empty interval-with-congruence abstract value over `u64`:
/// `γ(⟨lo, hi, s⟩) = {lo + k·s | k ≥ 0, lo + k·s ≤ hi}`, with `s = 0`
/// denoting the singleton `{lo}` (then `hi == lo`).
///
/// Invariants (maintained by every constructor and transfer function):
/// `lo ≤ hi`; `s == 0 ⇔ lo == hi`; `s > 0 ⇒ (hi − lo) % s == 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrideInterval {
    /// Smallest element.
    pub lo: u64,
    /// Largest element.
    pub hi: u64,
    /// Congruence stride (0 for a singleton).
    pub stride: u64,
}

impl StrideInterval {
    /// Normalises raw bounds into a valid value: clamps `hi` down to the
    /// largest element reachable from `lo` by whole strides.
    fn norm(lo: u64, hi: u64, stride: u64) -> Self {
        debug_assert!(lo <= hi);
        if lo == hi || stride == 0 {
            return StrideInterval {
                lo,
                hi: lo,
                stride: 0,
            };
        }
        let hi = lo + ((hi - lo) / stride) * stride;
        if hi == lo {
            StrideInterval { lo, hi, stride: 0 }
        } else {
            StrideInterval { lo, hi, stride }
        }
    }

    /// The singleton `{c}`.
    pub fn constant(c: u64) -> Self {
        StrideInterval {
            lo: c,
            hi: c,
            stride: 0,
        }
    }

    /// The dense range `{lo, lo+1, …, hi}` (inclusive bounds).
    pub fn range(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty range");
        Self::norm(lo, hi, 1)
    }

    /// The affine image `{offset + scale·i | 0 ≤ i < n}` of an `n`-element
    /// iteration space (`n ≥ 1`).
    pub fn affine(scale: u64, offset: u64, n: u64) -> Self {
        assert!(n >= 1, "empty iteration space");
        if scale == 0 || n == 1 {
            return Self::constant(offset);
        }
        StrideInterval {
            lo: offset,
            hi: offset + scale * (n - 1),
            stride: scale,
        }
    }

    /// Whether `v ∈ γ(self)`.
    pub fn contains(&self, v: u64) -> bool {
        if v < self.lo || v > self.hi {
            return false;
        }
        if self.stride == 0 {
            v == self.lo
        } else {
            (v - self.lo).is_multiple_of(self.stride)
        }
    }

    /// Whether `γ(other) ⊆ γ(self)`.
    pub fn covers(&self, other: &StrideInterval) -> bool {
        if other.lo < self.lo || other.hi > self.hi {
            return false;
        }
        if self.stride == 0 {
            return other.stride == 0 && other.lo == self.lo;
        }
        // Every element of `other` is ≡ other.lo (mod other.stride); they
        // all land on self's lattice iff other.lo does and the stride is a
        // multiple.
        self.contains(other.lo) && other.stride.is_multiple_of(self.stride)
    }

    /// Number of concrete elements.
    pub fn count(&self) -> u64 {
        match (self.hi - self.lo).checked_div(self.stride) {
            None => 1, // stride 0: singleton
            Some(steps) => steps + 1,
        }
    }

    /// Least upper bound: the tightest stride interval containing both —
    /// interval hull on the bounds, gcd on the congruence.
    pub fn join(&self, other: &StrideInterval) -> Self {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let diff = self.lo.abs_diff(other.lo);
        let stride = gcd(gcd(self.stride, other.stride), diff);
        Self::norm(lo, hi, if lo == hi { 0 } else { stride.max(1) })
    }

    /// Widening: like [`StrideInterval::join`], but any bound that moved
    /// against `self` jumps to its extreme (`0` below, [`WIDEN_TOP`]
    /// above), so iterated widening stabilises after at most two steps per
    /// bound (strides only ever shrink through the gcd).
    pub fn widen(&self, next: &StrideInterval) -> Self {
        let j = self.join(next);
        let lo = if next.lo < self.lo { 0 } else { j.lo };
        let hi = if next.hi > self.hi { WIDEN_TOP } else { j.hi };
        // Dropping `lo` re-anchors the congruence class: the join's
        // elements (≡ j.lo mod j.stride) stay on the lattice only if the
        // stride also divides the offset to the new anchor.
        let stride = gcd(j.stride, j.lo - lo);
        Self::norm(lo, hi, if lo == hi { 0 } else { stride.max(1) })
    }

    /// Sound addition: `γ(a) + γ(b) ⊆ γ(a.add(b))` (element-wise sums).
    pub fn add(&self, other: &StrideInterval) -> Self {
        let lo = self.lo.saturating_add(other.lo);
        let hi = self.hi.saturating_add(other.hi);
        let stride = gcd(self.stride, other.stride);
        Self::norm(lo, hi, if lo == hi { 0 } else { stride.max(1) })
    }

    /// Sound multiplication: `γ(a) · γ(b) ⊆ γ(a.mul(b))`. The congruence
    /// follows from `(lo_a + i·s_a)(lo_b + j·s_b) ≡ lo_a·lo_b` modulo
    /// `gcd(s_a·lo_b, s_b·lo_a, s_a·s_b)`.
    pub fn mul(&self, other: &StrideInterval) -> Self {
        let lo = self.lo.saturating_mul(other.lo);
        let hi = self.hi.saturating_mul(other.hi);
        let stride = gcd(
            gcd(
                self.stride.saturating_mul(other.lo),
                other.stride.saturating_mul(self.lo),
            ),
            self.stride.saturating_mul(other.stride),
        );
        Self::norm(lo, hi, if lo == hi { 0 } else { stride.max(1) })
    }
}

impl fmt::Display for StrideInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stride == 0 {
            write!(f, "{{{}}}", self.lo)
        } else if self.stride == 1 {
            write!(f, "[{}..{}]", self.lo, self.hi)
        } else {
            write!(f, "[{}..{}]%{}", self.lo, self.hi, self.stride)
        }
    }
}

/// A named set of heap allocations a loop touches, declared up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name (rendered in `STATIC.json` and `--deps`).
    pub name: &'static str,
    /// The member allocations, in declaration order. [`Member::Each`]
    /// indexes this vector by iteration ordinal.
    pub objects: Vec<ObjId>,
    /// Words per member object (the declared upper bound on word indices).
    pub words_per_object: u32,
    /// Reduction-variable label, when the region backs a named scalar.
    pub label: Option<&'static str>,
}

/// Which member(s) of a region one access may touch at iteration ordinal
/// `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Member {
    /// `objects[i]` — the ordinal-indexed member. The map `i ↦ objects[i]`
    /// is injective, so two distinct iterations touch distinct objects;
    /// `Each`-vs-`Each` pairs never produce a loop-carried edge. (The
    /// cross-validation gate falsifies a spec that mislabels a
    /// non-injective access as `Each`.)
    Each,
    /// The fixed member `objects[k]`.
    At(usize),
    /// Every member, every iteration.
    All,
    /// A data-dependent member — may be any subset of the region.
    Some,
}

/// Which words of the touched member(s) an access may cover at ordinal `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Words {
    /// The affine window `[scale·i + offset, scale·i + offset + width)`.
    Affine {
        /// Per-ordinal stride of the window start.
        scale: u64,
        /// Window start at ordinal 0.
        offset: u64,
        /// Window width in words.
        width: u32,
    },
    /// The fixed window `[lo, hi)`.
    Range {
        /// First word.
        lo: u32,
        /// One past the last word.
        hi: u32,
    },
    /// Data-dependent words somewhere within `[0, bound)`.
    Unknown {
        /// Exclusive upper bound on touched word indices.
        bound: u32,
    },
}

impl Words {
    /// Width in words of the window this access may touch in one
    /// iteration.
    fn width(&self) -> u64 {
        match *self {
            Words::Affine { width, .. } => width as u64,
            Words::Range { lo, hi } => (hi - lo) as u64,
            Words::Unknown { bound } => bound as u64,
        }
    }

    /// Whether the window is exactly determined (usable in must-footprint
    /// reasoning).
    fn is_exact(&self) -> bool {
        !matches!(self, Words::Unknown { .. })
    }

    /// The concrete word window at ordinal `i`, as `[lo, hi)`. For
    /// [`Words::Unknown`] this is the may-window `[0, bound)`.
    fn at(&self, i: u64) -> (u64, u64) {
        match *self {
            Words::Affine {
                scale,
                offset,
                width,
            } => {
                let lo = scale * i + offset;
                (lo, lo + width as u64)
            }
            Words::Range { lo, hi } => (lo as u64, hi as u64),
            Words::Unknown { bound } => (0, bound as u64),
        }
    }

    /// The symbolic word footprint over the whole `n`-iteration loop, as a
    /// stride interval of word indices.
    fn over_loop(&self, n: u64) -> StrideInterval {
        match *self {
            Words::Affine {
                scale,
                offset,
                width,
            } => {
                let starts = StrideInterval::affine(scale, offset, n);
                if width <= 1 {
                    starts
                } else {
                    starts.add(&StrideInterval::range(0, width as u64 - 1))
                }
            }
            Words::Range { lo, hi } => StrideInterval::range(lo as u64, hi.max(lo + 1) as u64 - 1),
            Words::Unknown { bound } => StrideInterval::range(0, bound.max(1) as u64 - 1),
        }
    }
}

/// How an access touches its words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Pure read.
    Read,
    /// Pure (blind) write.
    Write,
    /// Read-modify-write.
    Update,
    /// Read-modify-write routed through one commutative reduction
    /// operator (a `BoundScalar::apply`).
    Reduce(RedOp),
}

impl AccessKind {
    fn reads(self) -> bool {
        !matches!(self, AccessKind::Write)
    }

    fn writes(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One declared access of the loop body: region × member × words × kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessSpec {
    /// Index into [`LoopSpec::regions`].
    pub region: usize,
    /// Member selector.
    pub member: Member,
    /// Word selector.
    pub words: Words,
    /// Access kind.
    pub kind: AccessKind,
    /// Whether the access may be skipped in some iterations (guards,
    /// early exits). Conditional accesses still contribute to the
    /// may-footprint and may-edges, but never to must-footprints.
    pub conditional: bool,
}

/// The declarative loop IR: a symbolic description of the same loop
/// instance `probe_summary` replays — same deterministic heap construction,
/// same `ObjId`s — which is what makes [`cross_validate`] an exact check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopSpec {
    /// Iteration (replay-ordinal) count.
    pub iterations: u64,
    /// Declared regions.
    pub regions: Vec<Region>,
    /// Declared accesses.
    pub accesses: Vec<AccessSpec>,
    /// Allocation watermark at loop entry: objects with
    /// `ObjId::index() ≥ watermark` are loop-local allocations.
    pub watermark: u32,
    /// Whether the body may allocate mid-loop (e.g. hash-set overflow
    /// buckets). Allocated objects may be read or written by any later
    /// iteration, so this implies may-edges of every kind.
    pub allocates: bool,
}

impl LoopSpec {
    /// A spec for an `n`-iteration loop over a heap whose high-water mark
    /// at loop entry is `watermark`.
    pub fn new(iterations: u64, watermark: u32) -> Self {
        LoopSpec {
            iterations,
            regions: Vec::new(),
            accesses: Vec::new(),
            watermark,
            allocates: false,
        }
    }

    /// Declares a region; returns its index for use in access specs.
    pub fn region(
        &mut self,
        name: &'static str,
        objects: Vec<ObjId>,
        words_per_object: u32,
    ) -> usize {
        self.regions.push(Region {
            name,
            objects,
            words_per_object,
            label: None,
        });
        self.regions.len() - 1
    }

    /// Declares a region backing the named reduction scalar.
    pub fn labeled_region(&mut self, name: &'static str, obj: ObjId, label: &'static str) -> usize {
        self.regions.push(Region {
            name,
            objects: vec![obj],
            words_per_object: 1,
            label: Some(label),
        });
        self.regions.len() - 1
    }

    /// Declares an unconditional access.
    pub fn access(&mut self, region: usize, member: Member, words: Words, kind: AccessKind) {
        self.push(region, member, words, kind, false);
    }

    /// Declares a conditional access (may be skipped in some iterations).
    pub fn access_if(&mut self, region: usize, member: Member, words: Words, kind: AccessKind) {
        self.push(region, member, words, kind, true);
    }

    fn push(
        &mut self,
        region: usize,
        member: Member,
        words: Words,
        kind: AccessKind,
        conditional: bool,
    ) {
        assert!(region < self.regions.len(), "undeclared region");
        self.accesses.push(AccessSpec {
            region,
            member,
            words,
            kind,
            conditional,
        });
    }

    /// Marks the loop as allocating mid-iteration (watermark escape).
    pub fn allocates(&mut self) {
        self.allocates = true;
    }

    /// The region containing `obj`, if any.
    pub fn region_of(&self, obj: ObjId) -> Option<usize> {
        self.regions.iter().position(|r| r.objects.contains(&obj))
    }

    /// Whether `obj` is a loop-local allocation under the watermark rule.
    pub fn is_loop_local(&self, obj: ObjId) -> bool {
        self.allocates && obj.index() >= self.watermark
    }
}

/// Region index of the synthetic "loop-local allocations" pseudo-region in
/// [`StaticEdge::region`].
pub const ALLOC_REGION: usize = usize::MAX;

/// One symbolic dependence edge: all iteration pairs of one kind that may
/// collide within one region, with a symbolic distance interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticEdge {
    /// Dependence kind.
    pub kind: DepKind,
    /// Region index ([`ALLOC_REGION`] for the mid-loop allocation
    /// pseudo-region).
    pub region: usize,
    /// Symbolic iteration distances the edge may span.
    pub dist: StrideInterval,
    /// Whether the edge provably occurs (both endpoint accesses
    /// unconditional with exactly-determined members and words), as
    /// opposed to merely may occur.
    pub must: bool,
}

/// Per-region symbolic word footprints (union over the whole loop).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionFootprint {
    /// Region index.
    pub region: usize,
    /// Word indices any iteration may read, or `None` if never read.
    pub read_words: Option<StrideInterval>,
    /// Word indices any iteration may write, or `None` if never written.
    pub write_words: Option<StrideInterval>,
}

/// The abstract interpreter's result: symbolic footprints, symbolic
/// dependence edges, and the footprint scalars the verdict rules consume.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticSummary {
    /// Iteration count (copied from the spec).
    pub iterations: u64,
    /// Per-region footprints, in region order.
    pub footprints: Vec<RegionFootprint>,
    /// Symbolic dependence edges, ascending by (region, kind).
    pub edges: Vec<StaticEdge>,
    /// Upper bound on one iteration's tracked words under read-and-write
    /// tracking (RAW/Full policies).
    pub may_iter_words_rw: u64,
    /// Upper bound on one iteration's tracked words under write-only
    /// tracking (WAW policy).
    pub may_iter_words_w: u64,
    /// Lower bound on iteration 0's distinct tracked words under
    /// read-and-write tracking: unconditional accesses with exactly
    /// determined members and words only.
    pub must_first_words_rw: u64,
    /// Same lower bound under write-only tracking.
    pub must_first_words_w: u64,
    /// Whether the loop may allocate mid-iteration.
    pub allocates: bool,
}

impl StaticSummary {
    /// Whether a dynamic edge is covered by some static edge: same kind,
    /// same region (or the allocation pseudo-region), distance interval
    /// containing the observed extremes.
    pub fn covers_edge(&self, spec: &LoopSpec, edge: &DepEdge) -> bool {
        let region = match spec.region_of(edge.obj) {
            Some(r) => Some(r),
            None if spec.is_loop_local(edge.obj) => None, // ALLOC_REGION
            None => return false,
        };
        let want = region.unwrap_or(ALLOC_REGION);
        self.edges.iter().any(|e| {
            e.kind == edge.kind
                && e.region == want
                && e.dist.contains(edge.min_dist)
                && e.dist.contains(edge.max_dist)
                && e.dist.lo <= edge.min_dist
                && e.dist.hi >= edge.max_dist
        })
    }
}

/// Member selectors `x@i` and `y@j` (i ≠ j) may name the same object.
fn members_may_alias(x: Member, y: Member) -> bool {
    !matches!((x, y), (Member::Each, Member::Each))
}

/// The loop-carried distance interval over which `earlier`'s window may
/// overlap `later`'s window `d ≥ 1` iterations later, or `None` if they
/// provably never collide. `n` is the iteration count.
fn carried_distances(earlier: &Words, later: &Words, n: u64) -> Option<StrideInterval> {
    if n < 2 {
        return None;
    }
    let full = StrideInterval::range(1, n - 1);
    match (earlier, later) {
        (
            Words::Affine {
                scale: a1,
                offset: b1,
                width: w1,
            },
            Words::Affine {
                scale: a2,
                offset: b2,
                width: w2,
            },
        ) if a1 == a2 && *a1 > 0 => {
            // earlier@i covers [a·i + b1, +w1); later@(i+d) covers
            // [a·(i+d) + b2, +w2). They intersect iff
            // a·d ∈ (b1 − b2 − w2, b1 − b2 + w1), i.e. for integer d in a
            // window of width < (w1 + w2)/a + 1 around (b1 − b2)/a.
            let a = *a1 as i128;
            let b1 = *b1 as i128;
            let b2 = *b2 as i128;
            let (w1, w2) = (*w1 as i128, *w2 as i128);
            let lo_num = b1 - b2 - w2 + 1; // a·d ≥ lo_num
            let hi_num = b1 - b2 + w1 - 1; // a·d ≤ hi_num
            let d_lo = lo_num.div_euclid(a) + i128::from(lo_num.rem_euclid(a) != 0);
            let d_hi = hi_num.div_euclid(a);
            let lo = d_lo.max(1);
            let hi = d_hi.min(n as i128 - 1);
            if lo > hi {
                None
            } else {
                Some(StrideInterval::range(lo as u64, hi as u64))
            }
        }
        _ => {
            // At least one side's window reaches every ordinal (fixed
            // range, unknown, or mismatched affine scales): fall back to
            // an interval-hull intersection test over the whole loop.
            let e = earlier.over_loop(n);
            let l = later.over_loop(n);
            if e.lo <= l.hi && l.lo <= e.hi {
                Some(full)
            } else {
                None
            }
        }
    }
}

/// Evaluates a [`LoopSpec`] under the stride-interval domain into a
/// [`StaticSummary`] — footprints, edges, and the must/may scalars — in
/// time polynomial in the number of declared accesses, independent of the
/// iteration count.
pub fn interpret(spec: &LoopSpec) -> StaticSummary {
    let n = spec.iterations.max(1);

    // Per-region symbolic footprints.
    let mut footprints = Vec::with_capacity(spec.regions.len());
    for (ri, _region) in spec.regions.iter().enumerate() {
        let mut read_words: Option<StrideInterval> = None;
        let mut write_words: Option<StrideInterval> = None;
        for a in spec.accesses.iter().filter(|a| a.region == ri) {
            let w = a.words.over_loop(n);
            if a.kind.reads() {
                read_words = Some(read_words.map_or(w, |r| r.join(&w)));
            }
            if a.kind.writes() {
                write_words = Some(write_words.map_or(w, |r| r.join(&w)));
            }
        }
        footprints.push(RegionFootprint {
            region: ri,
            read_words,
            write_words,
        });
    }

    // Per-iteration may-footprint upper bounds (duplicates over-counted —
    // it is an upper bound).
    let mut may_rw = 0u64;
    let mut may_w = 0u64;
    for a in &spec.accesses {
        let members = match a.member {
            Member::Each | Member::At(_) => 1,
            Member::All | Member::Some => spec.regions[a.region].objects.len() as u64,
        };
        let words = members * a.words.width();
        if a.kind.writes() {
            may_w += words;
        }
        may_rw += words;
    }

    // Iteration-0 must-footprint lower bounds: distinct (object, word)
    // pairs of unconditional accesses whose members and words are exactly
    // determined at ordinal 0.
    let mut must_rw: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut must_w: BTreeSet<(u32, u64)> = BTreeSet::new();
    for a in &spec.accesses {
        if a.conditional || !a.words.is_exact() {
            continue;
        }
        let region = &spec.regions[a.region];
        let objs: Vec<ObjId> = match a.member {
            Member::Each => region.objects.first().copied().into_iter().collect(),
            Member::At(k) => region.objects.get(k).copied().into_iter().collect(),
            Member::All => region.objects.clone(),
            Member::Some => Vec::new(),
        };
        let (lo, hi) = a.words.at(0);
        for obj in objs {
            for w in lo..hi {
                must_rw.insert((obj.index(), w));
                if a.kind.writes() {
                    must_w.insert((obj.index(), w));
                }
            }
        }
    }

    // Symbolic edges: for every same-region spec pair whose members may
    // alias across iterations, intersect the word windows at symbolic
    // distance d and classify by direction. The aggregated edge per
    // (region, kind) joins the distance intervals.
    let mut edges: Vec<StaticEdge> = Vec::new();
    let mut add_edge = |kind: DepKind, region: usize, dist: StrideInterval, must: bool| {
        if let Some(e) = edges
            .iter_mut()
            .find(|e| e.kind == kind && e.region == region)
        {
            e.dist = e.dist.join(&dist);
            e.must |= must;
        } else {
            edges.push(StaticEdge {
                kind,
                region,
                dist,
                must,
            });
        }
    };
    for (xi, x) in spec.accesses.iter().enumerate() {
        for y in &spec.accesses[xi..] {
            if x.region != y.region {
                continue;
            }
            for (earlier, later) in [(x, y), (y, x)] {
                if !members_may_alias(earlier.member, later.member) {
                    continue;
                }
                let must_pair = !earlier.conditional
                    && !later.conditional
                    && earlier.words.is_exact()
                    && later.words.is_exact()
                    && !matches!(earlier.member, Member::Some)
                    && !matches!(later.member, Member::Some)
                    // Only fully-aliasing member pairs make the collision
                    // certain at every distance the words allow.
                    && matches!(
                        (earlier.member, later.member),
                        (Member::All, _) | (_, Member::All) | (Member::At(_), Member::At(_))
                    );
                if let Some(d) = carried_distances(&earlier.words, &later.words, n) {
                    if earlier.kind.writes() && later.kind.reads() {
                        add_edge(DepKind::Raw, x.region, d, must_pair);
                    }
                    if earlier.kind.writes() && later.kind.writes() {
                        add_edge(DepKind::Waw, x.region, d, must_pair);
                    }
                    if earlier.kind.reads() && later.kind.writes() {
                        add_edge(DepKind::War, x.region, d, must_pair);
                    }
                }
                if std::ptr::eq(earlier, later) {
                    break; // self-pair: both directions coincide
                }
            }
        }
    }
    if spec.allocates && n >= 2 {
        // Mid-loop allocations may be revisited by any later iteration
        // (hash-set overflow chains): admit every edge kind on the
        // pseudo-region at every distance.
        let full = StrideInterval::range(1, n - 1);
        for kind in [DepKind::Raw, DepKind::Waw, DepKind::War] {
            add_edge(kind, ALLOC_REGION, full, false);
        }
    }
    edges.sort_by_key(|e| (e.region, e.kind));

    StaticSummary {
        iterations: spec.iterations,
        footprints,
        edges,
        may_iter_words_rw: may_rw,
        may_iter_words_w: may_w,
        must_first_words_rw: must_rw.len() as u64,
        must_first_words_w: must_w.len() as u64,
        allocates: spec.allocates,
    }
}

/// A two-sided static verdict for one probe, mirroring the dynamic
/// classifier's taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticVerdict {
    /// The probe must succeed: no loop-carried edges exist (any commit
    /// order reproduces the sequential output with zero conflicts) and the
    /// per-transaction footprint provably fits the tracked-words budget.
    ProvedSafe,
    /// The probe must fail, with the predicted dynamic verdict (currently
    /// always an out-of-memory abort: iteration 0's unconditional
    /// footprint alone exceeds the budget).
    ProvedUnsound(Verdict),
    /// No static proof either way — consult the dynamic tier.
    Unknown,
}

impl StaticVerdict {
    /// Short stable class name (`safe`, `o.o.m.`, `unknown`), used by
    /// `STATIC.json` and the `--deps` table.
    pub fn class(&self) -> &'static str {
        match self {
            StaticVerdict::ProvedSafe => "safe",
            StaticVerdict::ProvedUnsound(v) => v.class(),
            StaticVerdict::Unknown => "unknown",
        }
    }
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticVerdict::ProvedSafe => write!(f, "proved safe"),
            StaticVerdict::ProvedUnsound(v) => write!(f, "proved unsound: {v}"),
            StaticVerdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// Derives the static verdict for one probe configuration.
///
/// Both proofs are sound without margins, unlike the dynamic predictor's:
///
/// * the unsound proof compares a true *lower* bound (iteration 0's
///   unconditional, exactly-determined footprint — a subset of the first
///   transaction's real tracked set under any chunking) against the
///   budget, so `must > budget` implies the real probe aborts
///   out-of-memory. This closes the dynamic predictor's abstention band:
///   `predict` must return `Unknown` when the replayed chunk footprint
///   lands between `budget` and `oom_factor × budget`.
/// * the safe proof requires the absence of *any* loop-carried edge (so
///   every schedule commits first-try and reproduces the sequential
///   output exactly) plus a per-transaction *upper* bound
///   (`chunk × per-iteration may-footprint`) within the budget, so the
///   probe cannot abort, conflict, or time out.
pub fn static_verdict(
    summary: &StaticSummary,
    policy: ConflictPolicy,
    cfg: &AnalyzeConfig,
) -> StaticVerdict {
    if policy == ConflictPolicy::None {
        // DOALL tracks nothing and is judged on output alone — not
        // provable from footprints.
        return StaticVerdict::Unknown;
    }
    let tracks_reads = policy.track_mode().tracks_reads();
    let must = if tracks_reads {
        summary.must_first_words_rw
    } else {
        summary.must_first_words_w
    };
    if must > cfg.budget_words {
        return StaticVerdict::ProvedUnsound(Verdict::OutOfMemory {
            words: must,
            budget: cfg.budget_words,
        });
    }
    let may_chunk = (cfg.chunk as u64).saturating_mul(if tracks_reads {
        summary.may_iter_words_rw
    } else {
        summary.may_iter_words_w
    });
    if summary.edges.is_empty() && !summary.allocates && may_chunk <= cfg.budget_words {
        return StaticVerdict::ProvedSafe;
    }
    StaticVerdict::Unknown
}

/// Checks the `static ⊇ dynamic` soundness contract of one workload's
/// [`LoopSpec`] against its replayed [`LoopSummary`]: every observed word
/// access must be covered by a declared access at its ordinal, and every
/// observed dependence edge by a static edge containing its distances.
/// Returns human-readable violations (empty = the spec over-approximates).
pub fn cross_validate(
    spec: &LoopSpec,
    summary: &StaticSummary,
    dynamic: &LoopSummary,
) -> Vec<String> {
    let mut violations = Vec::new();
    if spec.iterations != dynamic.iterations {
        violations.push(format!(
            "iteration count: spec declares {}, replay observed {}",
            spec.iterations, dynamic.iterations
        ));
        return violations;
    }

    // Location coverage: each observed (ordinal, object, word, mode) must
    // fall inside the union of the matching specs' windows at that
    // ordinal.
    let cover = |ordinal: u64, obj: ObjId, word: u64, want_write: bool| -> bool {
        if spec.is_loop_local(obj) {
            return true;
        }
        spec.accesses.iter().any(|a| {
            if want_write && !a.kind.writes() {
                return false;
            }
            if !want_write && !a.kind.reads() {
                return false;
            }
            let region = &spec.regions[a.region];
            let member_hit = match a.member {
                Member::Each => region.objects.get(ordinal as usize) == Some(&obj),
                Member::At(k) => region.objects.get(k) == Some(&obj),
                Member::All | Member::Some => region.objects.contains(&obj),
            };
            if !member_hit {
                return false;
            }
            let (lo, hi) = a.words.at(ordinal);
            lo <= word && word < hi
        })
    };
    'iters: for (ordinal, it) in dynamic.iters.iter().enumerate() {
        let ordinal = ordinal as u64;
        for (ranges, want_write, what) in [(&it.reads, false, "read"), (&it.writes, true, "write")]
        {
            for &(obj, lo, hi) in ranges.iter() {
                for w in lo..hi {
                    if !cover(ordinal, obj, w as u64, want_write) {
                        violations.push(format!(
                            "iteration {ordinal}: {what} of obj {} word {w} not covered by any \
                             declared access",
                            obj.index()
                        ));
                        if violations.len() >= 8 {
                            break 'iters; // enough evidence; stay readable
                        }
                    }
                }
            }
        }
    }

    // Edge coverage.
    for e in &dynamic.edges {
        if !summary.covers_edge(spec, e) {
            violations.push(format!(
                "{} edge on obj {} (dist {}..{}) not covered by any static edge",
                e.kind,
                e.obj.index(),
                e.min_dist,
                e.max_dist
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si(lo: u64, hi: u64, stride: u64) -> StrideInterval {
        StrideInterval::norm(lo, hi, stride)
    }

    #[test]
    fn constructors_normalise() {
        assert_eq!(StrideInterval::constant(5), si(5, 5, 0));
        assert_eq!(StrideInterval::range(2, 2), si(2, 2, 0));
        assert_eq!(StrideInterval::affine(4, 1, 3), si(1, 9, 4));
        assert_eq!(StrideInterval::affine(0, 7, 10), si(7, 7, 0));
        assert_eq!(StrideInterval::affine(3, 0, 1), si(0, 0, 0));
    }

    #[test]
    fn contains_respects_congruence() {
        let x = StrideInterval::affine(4, 1, 3); // {1, 5, 9}
        assert!(x.contains(1) && x.contains(5) && x.contains(9));
        assert!(!x.contains(3) && !x.contains(13) && !x.contains(0));
        assert_eq!(x.count(), 3);
    }

    #[test]
    fn join_takes_gcd_congruence() {
        let a = StrideInterval::affine(6, 0, 4); // {0, 6, 12, 18}
        let b = StrideInterval::affine(4, 2, 3); // {2, 6, 10}
        let j = a.join(&b);
        // gcd(6, 4, |0-2|) = 2.
        assert_eq!(j, si(0, 18, 2));
        for v in [0, 6, 12, 18, 2, 10] {
            assert!(j.contains(v));
        }
    }

    #[test]
    fn widen_stabilises() {
        let a = StrideInterval::range(4, 10);
        let b = StrideInterval::range(2, 12);
        let w = a.widen(&b);
        assert_eq!((w.lo, w.hi), (0, WIDEN_TOP));
        // A second widening against anything inside is a fixpoint.
        assert_eq!(w.widen(&b), w);
        assert_eq!(w.widen(&w), w);
    }

    #[test]
    fn add_and_mul_are_sound_on_examples() {
        let a = StrideInterval::affine(2, 1, 3); // {1, 3, 5}
        let b = StrideInterval::affine(4, 0, 2); // {0, 4}
        let s = a.add(&b);
        for x in [1u64, 3, 5] {
            for y in [0u64, 4] {
                assert!(s.contains(x + y), "{} ∉ {s}", x + y);
            }
        }
        let p = a.mul(&b);
        for x in [1u64, 3, 5] {
            for y in [0u64, 4] {
                assert!(p.contains(x * y), "{} ∉ {p}", x * y);
            }
        }
    }

    /// A tiny spec: per-iteration rows (Each) plus a shared accumulator.
    fn toy_spec() -> LoopSpec {
        let mut s = LoopSpec::new(8, 10);
        let rows = s.region("rows", (0..8).map(ObjId::from_index).collect(), 4);
        let acc = s.region("acc", vec![ObjId::from_index(9)], 1);
        s.access(
            rows,
            Member::Each,
            Words::Range { lo: 0, hi: 4 },
            AccessKind::Update,
        );
        s.access(
            acc,
            Member::At(0),
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Update,
        );
        s
    }

    #[test]
    fn each_members_produce_no_edges_but_shared_members_do() {
        let s = toy_spec();
        let sum = interpret(&s);
        // The rows region is Each-only: no edges on region 0.
        assert!(sum.edges.iter().all(|e| e.region != 0));
        // The accumulator has all three kinds at distance [1, 7].
        for kind in [DepKind::Raw, DepKind::Waw, DepKind::War] {
            let e = sum
                .edges
                .iter()
                .find(|e| e.kind == kind && e.region == 1)
                .expect("accumulator edge");
            assert_eq!((e.dist.lo, e.dist.hi), (1, 7));
            assert!(e.must);
        }
    }

    #[test]
    fn affine_injective_writes_prove_waw_absence() {
        // write x[i] vs read x[0..n]: RAW/WAR at all distances, no WAW.
        let mut s = LoopSpec::new(8, 1);
        let x = s.region("x", vec![ObjId::from_index(0)], 8);
        s.access(
            x,
            Member::At(0),
            Words::Affine {
                scale: 1,
                offset: 0,
                width: 1,
            },
            AccessKind::Write,
        );
        s.access(
            x,
            Member::At(0),
            Words::Range { lo: 0, hi: 8 },
            AccessKind::Read,
        );
        let sum = interpret(&s);
        assert!(sum.edges.iter().any(|e| e.kind == DepKind::Raw));
        assert!(sum.edges.iter().any(|e| e.kind == DepKind::War));
        assert!(
            sum.edges.iter().all(|e| e.kind != DepKind::Waw),
            "affine scale-1 width-1 writes are injective: {:?}",
            sum.edges
        );
    }

    #[test]
    fn affine_offset_collisions_have_exact_distance() {
        // write x[i+1] vs read x[i]: RAW at exactly distance 1... direction:
        // earlier write@i covers i+1, later read@(i+d) covers i+d — collide
        // iff d = 1.
        let mut s = LoopSpec::new(8, 1);
        let x = s.region("x", vec![ObjId::from_index(0)], 16);
        s.access(
            x,
            Member::At(0),
            Words::Affine {
                scale: 1,
                offset: 1,
                width: 1,
            },
            AccessKind::Write,
        );
        s.access(
            x,
            Member::At(0),
            Words::Affine {
                scale: 1,
                offset: 0,
                width: 1,
            },
            AccessKind::Read,
        );
        let sum = interpret(&s);
        let raw = sum
            .edges
            .iter()
            .find(|e| e.kind == DepKind::Raw)
            .expect("RAW edge");
        assert_eq!((raw.dist.lo, raw.dist.hi), (1, 1));
    }

    #[test]
    fn verdicts_cover_all_three_classes() {
        let cfg = AnalyzeConfig {
            budget_words: 64,
            ..AnalyzeConfig::default()
        };
        // Safe: Each-only rows, tiny footprint.
        let mut safe = LoopSpec::new(8, 10);
        let rows = safe.region("rows", (0..8).map(ObjId::from_index).collect(), 2);
        safe.access(
            rows,
            Member::Each,
            Words::Range { lo: 0, hi: 2 },
            AccessKind::Update,
        );
        let s = interpret(&safe);
        assert_eq!(
            static_verdict(&s, ConflictPolicy::Raw, &cfg),
            StaticVerdict::ProvedSafe
        );
        assert_eq!(
            static_verdict(&s, ConflictPolicy::Waw, &cfg),
            StaticVerdict::ProvedSafe
        );
        assert_eq!(
            static_verdict(&s, ConflictPolicy::None, &cfg),
            StaticVerdict::Unknown
        );

        // Unsound under read tracking: iteration 0 must read 100 words.
        let mut heavy = LoopSpec::new(4, 200);
        let all = heavy.region("table", (0..100).map(ObjId::from_index).collect(), 1);
        heavy.access(
            all,
            Member::All,
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Read,
        );
        heavy.access(
            all,
            Member::Each,
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Write,
        );
        let h = interpret(&heavy);
        match static_verdict(&h, ConflictPolicy::Raw, &cfg) {
            StaticVerdict::ProvedUnsound(Verdict::OutOfMemory { words, budget }) => {
                assert_eq!(words, 100);
                assert_eq!(budget, 64);
            }
            other => panic!("expected o.o.m., got {other:?}"),
        }
        // Write-only tracking stays within budget but the RAW/WAR edges
        // block a safe proof: unknown.
        assert_eq!(
            static_verdict(&h, ConflictPolicy::Waw, &cfg),
            StaticVerdict::Unknown
        );
    }

    #[test]
    fn toy_spec_cross_validates_against_a_matching_replay() {
        use alter_heap::{Heap, ObjData};
        use alter_runtime::{summarize_dependences, RangeSpace};
        let mut heap = Heap::new();
        let rows: Vec<ObjId> = (0..8).map(|_| heap.alloc(ObjData::zeros_i64(4))).collect();
        let extra = heap.alloc(ObjData::zeros_i64(2)); // pad to watermark 9
        let acc = heap.alloc(ObjData::scalar_i64(0));
        let _ = extra;
        let dynamic = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 8), |ctx, i| {
            let v = ctx.tx.read_i64(rows[i as usize], 0);
            ctx.tx.write_i64(rows[i as usize], 3, v + 1);
            let a = ctx.tx.read_i64(acc, 0);
            ctx.tx.write_i64(acc, 0, a + 1);
        });

        let mut s = LoopSpec::new(8, heap.high_water());
        let r = s.region("rows", rows.clone(), 4);
        let a = s.region("acc", vec![acc], 1);
        s.access(
            r,
            Member::Each,
            Words::Range { lo: 0, hi: 4 },
            AccessKind::Update,
        );
        s.access(
            a,
            Member::At(0),
            Words::Range { lo: 0, hi: 1 },
            AccessKind::Update,
        );
        let sum = interpret(&s);
        assert_eq!(cross_validate(&s, &sum, &dynamic), Vec::<String>::new());

        // Under-declaring the accumulator must be caught (drop its spec).
        let mut bad = LoopSpec::new(8, heap.high_water());
        let r = bad.region("rows", rows, 4);
        bad.access(
            r,
            Member::Each,
            Words::Range { lo: 0, hi: 4 },
            AccessKind::Update,
        );
        let bad_sum = interpret(&bad);
        let violations = cross_validate(&bad, &bad_sum, &dynamic);
        assert!(
            violations.iter().any(|v| v.contains("not covered")),
            "{violations:?}"
        );
    }
}
