//! # alter-analyze — dependence/annotation soundness analysis
//!
//! The inference engine of the paper (§5) brute-forces every candidate
//! annotation and lets probes fail at runtime; `dep.rs` reduces the whole
//! dependence structure to three booleans. This crate adds the layer that
//! *explains* and *predicts*, consuming the
//! [`LoopSummary`](alter_runtime::LoopSummary) IR produced by the shared
//! sequential replay:
//!
//! * [`classify`] — per-edge breakability classification
//!   ([`Breakability`]) and a schedule-prediction simulator ([`predict`])
//!   that replays the engine's exact lock-step round algorithm over the
//!   summarised access sets, yielding conservative must-fail verdicts
//!   ([`Verdict`]) the inference engine uses to prune provably-failing
//!   probes.
//! * [`lint`] — an annotation linter: given a parsed
//!   [`Annotation`](alter_runtime::Annotation) (or the DOALL/TLS targets),
//!   emit structured [`Diagnostic`]s — severity, location, human message —
//!   with a canonical machine-readable JSON form.
//! * [`sanitize`] — a trace isolation sanitizer: replay a recorded JSONL
//!   trace (with `ExecParams::record_sets` payloads) and re-check the
//!   isolation invariants — deterministic commit order, committed
//!   write-sets disjoint under StaleReads, validate verdicts consistent
//!   with the recorded read/write sets.
//! * [`absint`] — the static half of the synergy: a declarative
//!   [`LoopSpec`] IR (symbolic per-iteration accesses over the iteration
//!   index) evaluated by an abstract interpreter under an interval ×
//!   stride congruence domain ([`StrideInterval`]) into a
//!   [`StaticSummary`] with two-sided per-probe verdicts
//!   ([`StaticVerdict`]); a CI-gated [`cross_validate`] pass proves
//!   `static ⊇ dynamic` against the replayed summary for every workload.
//! * [`check`] — a DPOR schedule-space model checker over recorded
//!   journals: enumerate the alternative commit orders each round's
//!   tickets could legally produce, prune Mazurkiewicz-equivalent ones
//!   by access-set commutativity, and run the sanitizer as the
//!   per-schedule oracle, reporting unsound rounds as bisected
//!   [`Divergence`](alter_runtime::replay::Divergence) counterexamples.
//!
//! The prediction contract is deliberately one-sided: [`predict`] may
//! return [`Verdict::Unknown`] for a probe that will fail, but must never
//! return a must-fail verdict for a probe that would succeed — pruning
//! never changes the outcome of inference, only its cost. The
//! cross-validation suite in `tests/analysis.rs` checks this against the
//! observed probe outcomes of all 12 workloads.

#![warn(missing_docs)]

pub mod absint;
pub mod check;
pub mod classify;
pub mod lint;
pub mod sanitize;

pub use absint::{
    cross_validate, interpret, static_verdict, AccessKind, AccessSpec, LoopSpec, Member, Region,
    RegionFootprint, StaticEdge, StaticSummary, StaticVerdict, StrideInterval, Words,
};
pub use check::{
    check_events, check_journal, CheckConfig, CheckReport, UnsoundRound, DEFAULT_SCHEDULE_BUDGET,
};
pub use classify::{classify_edge, predict, AnalyzeConfig, Breakability, Verdict};
pub use lint::{diagnostics_json, lint, Diagnostic, LintTarget, Severity};
pub use sanitize::{sanitize, SanitizeConfig, Violation};
