//! DPOR schedule-space model checker over recorded trace journals —
//! the engine behind `alter-check`.
//!
//! A recorded journal proves an annotation sound on exactly *one*
//! schedule: the deterministic commit order the engine happened to
//! produce. But ALTER's correctness claim quantifies over every commit
//! order the ticket sequencer could legally have chosen (worker
//! interleavings quotient onto commit orders: validation consumes task
//! results in commit order, so two interleavings that commit identically
//! are the same schedule). This module closes that gap: for each round
//! of a journal recorded with `ExecParams::record_sets`, it enumerates
//! alternative commit orders, prunes equivalent ones with dynamic
//! partial-order reduction, and runs the [`sanitize`] verdict
//! re-derivation as the per-schedule oracle.
//!
//! **Commutativity criterion.** Two tasks of a round commute iff their
//! recorded access sets are disjoint under the run's conflict policy:
//! overlapping write sets never commute (the final heap words depend on
//! commit order), and under read-checking policies (FULL/OutOfOrder) a
//! read overlapping the other task's writes breaks commutativity too.
//! Overlap tests reuse the word-block machinery of the sharded
//! validator ([`alter_heap::RangeSet::block_scan`]) behind a fingerprint
//! pre-filter, so building the relation costs the same deterministic
//! `scan_words` currency the runtime reports.
//!
//! **DPOR.** Schedules are equivalent (one Mazurkiewicz trace) iff they
//! agree on the relative order of every non-commuting pair, so a
//! schedule's equivalence class is the orientation signature of the
//! conflict edges. The enumerator schedules conflict-free tasks
//! canonically (they cannot change any signature bit) and branches only
//! on tasks that still carry a conflict edge, deduplicating by
//! signature: a round whose tasks are pairwise disjoint — the common
//! case for a sound annotation — collapses from `n!` naive schedules to
//! exactly one representative.
//!
//! **Oracle and counterexamples.** For each representative the checker
//! re-sequences the recorded verdicts under the candidate order
//! (sequence numbers relabelled to schedule positions) and sanitizes
//! the synthesized stream; it also re-derives the verdicts from the
//! recorded sets alone. A clean journal passes the identity schedule
//! exactly and gets its genuinely conflicting reorderings *flagged* —
//! evidence the oracle is two-sided. An unsound journal (or an
//! annotation whose committed writers overlap, which order-insensitive
//! policies never check at run time) produces a structured
//! [`Divergence`] by bisecting the re-derived stream against the
//! recorded claims — the same counterexample format `alter-replay diff`
//! bisects and renders, so every verdict here is replayable evidence.

use crate::sanitize::{recompute_conflict, sanitize, SanitizeConfig, Violation};
use alter_heap::{AccessSet, ObjId};
use alter_runtime::replay::{diverge_bisect, Divergence, ReplayOutcome};
use alter_runtime::{CommitOrder, ConflictPolicy};
use alter_trace::{parse_set, render_set, trace_hash, ConflictKind, Event, Journal, TraceHasher};
use std::collections::{HashMap, HashSet};

/// Default per-round budget of DPOR representatives to run through the
/// oracle. Rounds are at most `workers` tasks wide, so the budget only
/// bites on densely conflicting rounds — which is exactly where the
/// signature space explodes and sampling the first representatives is
/// the honest trade.
pub const DEFAULT_SCHEDULE_BUDGET: u64 = 256;

/// Rounds wider than this are not exhaustively explored (the identity
/// schedule is still checked): the branching walk is factorial in round
/// width and engine rounds are never wider than the worker count.
const MAX_EXPLORE_TASKS: usize = 16;

/// At most this many per-round counterexamples are kept with their full
/// event streams; further unsound rounds are only counted.
const MAX_COUNTEREXAMPLES: usize = 8;

/// The recording conditions and exploration budget of a check run.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Conflict policy the journal's run was validated under.
    pub conflict: ConflictPolicy,
    /// Commit order discipline of the run. Under
    /// [`CommitOrder::InOrder`] the commit order is predefined, so the
    /// recorded schedule is the *only* legal one and the checker audits
    /// just it.
    pub order: CommitOrder,
    /// Per-round budget of DPOR representatives (minimum 1: the
    /// identity schedule is always checked).
    pub max_schedules_per_round: u64,
}

impl CheckConfig {
    /// A config with the default exploration budget.
    pub fn new(conflict: ConflictPolicy, order: CommitOrder) -> CheckConfig {
        CheckConfig {
            conflict,
            order,
            max_schedules_per_round: DEFAULT_SCHEDULE_BUDGET,
        }
    }
}

/// One round the checker proved unsound, with the bisected
/// counterexample: `expected` is the stream the recorded access sets
/// imply, `actual` re-sequences the journal's recorded claims. Both are
/// structurally valid single-round streams (round renumbered to 0), so
/// they can be packaged as journals and fed to `alter-replay diff`.
#[derive(Clone, Debug)]
pub struct UnsoundRound {
    /// Global round ordinal in the journal (across run segments).
    pub round: u64,
    /// The first divergent event, bisected exactly as replay mismatches
    /// are.
    pub divergence: Box<Divergence>,
    /// The re-derived (sets-implied) event stream.
    pub expected: Vec<Event>,
    /// The recorded-claims event stream.
    pub actual: Vec<Event>,
}

/// Aggregate result of model-checking a journal's schedule space.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Rounds audited.
    pub rounds: u64,
    /// Tasks across all audited rounds.
    pub tasks: u64,
    /// Naive schedule count: `Σ n!` over rounds of `n` tasks under
    /// out-of-order commit (1 per round under in-order), saturating.
    pub naive_schedules: u64,
    /// DPOR representatives actually run through the oracle.
    pub explored: u64,
    /// Reordered representatives the oracle correctly rejected — the
    /// completeness side of the check (a reordering of two conflicting
    /// tasks must not pass).
    pub flagged: u64,
    /// Rounds whose representative count was truncated by the budget.
    pub budget_hits: u64,
    /// Words compared by the block scans that built the commutativity
    /// relation (deterministic work currency).
    pub scan_words: u64,
    /// Total rounds proved unsound (counterexamples beyond
    /// the retention cap are counted here but not stored).
    pub unsound_rounds: u64,
    /// Retained counterexamples, in round order.
    pub unsound: Vec<UnsoundRound>,
}

impl CheckReport {
    /// Whether every round survived every explored schedule.
    pub fn sound(&self) -> bool {
        self.unsound_rounds == 0
    }

    /// Schedules the DPOR pruning avoided running: naive minus
    /// explored, saturating.
    pub fn pruned(&self) -> u64 {
        self.naive_schedules.saturating_sub(self.explored)
    }
}

/// A recorded verdict, exactly as the journal claims it.
#[derive(Clone, Debug)]
enum RecordedVerdict {
    Ok {
        validate_words: u64,
        /// `(read_words, write_words, allocs, frees)` of the recorded
        /// `commit` event; `None` when the stream truncated before it.
        commit: Option<(u64, u64, u32, u32)>,
    },
    Conflict {
        kind: ConflictKind,
        obj: u32,
        word: u32,
        winner_seq: u64,
    },
    Squash {
        by_seq: u64,
    },
}

/// One task of a round: its recorded sets and claimed verdict.
struct Task {
    seq: u64,
    reads: AccessSet,
    writes: AccessSet,
    verdict: RecordedVerdict,
}

/// One extracted round.
struct RoundTasks {
    snapshot_slots: u64,
    tasks: Vec<Task>,
}

/// A verdict re-derived from the recorded sets under a candidate
/// schedule. `winner`/`by` are task *indices* (into the round's task
/// vector), mapped to schedule positions at synthesis time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DerivedVerdict {
    Ok,
    Conflict {
        kind: ConflictKind,
        obj: u32,
        word: u32,
        winner: usize,
    },
    Squash {
        by: usize,
    },
}

/// A fully resolved per-position verdict, ready to render as events.
enum SynthVerdict {
    Ok {
        validate_words: u64,
        commit: (u64, u64, u32, u32),
    },
    Conflict {
        kind: ConflictKind,
        obj: u32,
        word: u32,
        winner_seq: u64,
    },
    Squash {
        by_seq: u64,
    },
}

/// Parses a canonical set rendering back into an [`AccessSet`].
fn parse_access_set(s: &str, what: &str, seq: u64) -> Result<AccessSet, String> {
    let ranges = parse_set(s).map_err(|e| format!("task {seq}: unparseable {what} set ({e})"))?;
    let mut set = AccessSet::new();
    for (obj, lo, hi) in ranges {
        set.insert(obj, lo, hi);
    }
    Ok(set)
}

/// Walks the event stream and groups it into rounds of tasks. Requires
/// `task_sets` payloads before every verdict (squashes excepted — the
/// engine may squash a task whose sets were never tracked); truncated
/// trailing tasks are dropped, matching the sanitizer's tolerance.
fn extract_rounds(events: &[Event]) -> Result<Vec<RoundTasks>, String> {
    let mut rounds: Vec<RoundTasks> = Vec::new();
    let mut current: Option<RoundTasks> = None;
    let mut pending: Option<(u64, AccessSet, AccessSet)> = None;
    for ev in events {
        match ev {
            Event::RoundStart { snapshot_slots, .. } => {
                pending = None;
                if let Some(r) = current.take() {
                    rounds.push(r);
                }
                current = Some(RoundTasks {
                    snapshot_slots: *snapshot_slots,
                    tasks: Vec::new(),
                });
            }
            Event::TaskSets { seq, reads, writes } => {
                pending = Some((
                    *seq,
                    parse_access_set(reads, "read", *seq)?,
                    parse_access_set(writes, "write", *seq)?,
                ));
            }
            Event::ValidateOk {
                seq,
                validate_words,
            } => {
                let (pseq, reads, writes) = pending.take().ok_or(format!(
                    "no recorded task_sets for task {seq}: record the journal with --sets"
                ))?;
                if pseq != *seq {
                    return Err(format!(
                        "verdict for task {seq} but recorded sets are for task {pseq}"
                    ));
                }
                let round = current.as_mut().ok_or("verdict before any round_start")?;
                round.tasks.push(Task {
                    seq: *seq,
                    reads,
                    writes,
                    verdict: RecordedVerdict::Ok {
                        validate_words: *validate_words,
                        commit: None,
                    },
                });
            }
            Event::ValidateConflict {
                seq,
                kind,
                obj,
                word,
                winner_seq,
            } => {
                let (pseq, reads, writes) = pending.take().ok_or(format!(
                    "no recorded task_sets for task {seq}: record the journal with --sets"
                ))?;
                if pseq != *seq {
                    return Err(format!(
                        "verdict for task {seq} but recorded sets are for task {pseq}"
                    ));
                }
                let round = current.as_mut().ok_or("verdict before any round_start")?;
                round.tasks.push(Task {
                    seq: *seq,
                    reads,
                    writes,
                    verdict: RecordedVerdict::Conflict {
                        kind: *kind,
                        obj: obj.index(),
                        word: *word,
                        winner_seq: *winner_seq,
                    },
                });
            }
            Event::Squash { seq, by_seq } => {
                let (reads, writes) = match pending.take() {
                    Some((pseq, r, w)) if pseq == *seq => (r, w),
                    _ => (AccessSet::new(), AccessSet::new()),
                };
                let round = current.as_mut().ok_or("verdict before any round_start")?;
                round.tasks.push(Task {
                    seq: *seq,
                    reads,
                    writes,
                    verdict: RecordedVerdict::Squash { by_seq: *by_seq },
                });
            }
            Event::Commit {
                seq,
                read_words,
                write_words,
                allocs,
                frees,
            } => {
                let task = current
                    .as_mut()
                    .and_then(|r| r.tasks.last_mut())
                    .filter(|t| t.seq == *seq);
                match task {
                    Some(t) => match &mut t.verdict {
                        RecordedVerdict::Ok { commit, .. } if commit.is_none() => {
                            *commit = Some((*read_words, *write_words, *allocs, *frees));
                        }
                        _ => {
                            return Err(format!(
                                "commit for task {seq} without a preceding validate_ok"
                            ))
                        }
                    },
                    None => {
                        return Err(format!(
                            "commit for task {seq} without a preceding validate_ok"
                        ))
                    }
                }
            }
            Event::RunEnd { .. }
            | Event::Oom { .. }
            | Event::Crash { .. }
            | Event::WorkBudgetExceeded { .. } => {
                pending = None;
                if let Some(r) = current.take() {
                    rounds.push(r);
                }
            }
            _ => {}
        }
    }
    if let Some(r) = current.take() {
        rounds.push(r);
    }
    Ok(rounds)
}

/// Exact overlap test via the word-block scanner, behind the same
/// fingerprint pre-filter the sharded validator uses. Returns the
/// verdict and the words the block scans compared.
fn overlap_block_scan(a: &AccessSet, b: &AccessSet) -> (bool, u64) {
    if a.is_empty() || b.is_empty() || !a.fingerprint().may_intersect(b.fingerprint()) {
        return (false, 0);
    }
    let mut words = 0u64;
    for (id, ranges) in a.iter_sorted() {
        if let Some(other) = b.ranges(id) {
            let (hit, w) = ranges.block_scan(other);
            words += w;
            if hit {
                return (true, words);
            }
        }
    }
    (false, words)
}

/// The round's dependence (non-commutativity) relation.
struct DepGraph {
    n: usize,
    /// Symmetric `n×n` adjacency: tasks that do not commute.
    dep: Vec<bool>,
    /// Symmetric `n×n` write-write overlap (order-sensitive final
    /// state even under policies that never check writes).
    ww: Vec<bool>,
    /// Dependence edges `(i, j)` with `i < j`, in ascending order — the
    /// signature bit layout.
    edges: Vec<(usize, usize)>,
    /// Words the block scans compared building the relation.
    scan_words: u64,
}

/// Builds the dependence relation from the recorded sets: write-write
/// overlap always breaks commutativity; read-vs-write overlap breaks it
/// under read-checking policies.
fn dep_graph(tasks: &[Task], policy: ConflictPolicy) -> DepGraph {
    let n = tasks.len();
    let reads_checked = matches!(policy, ConflictPolicy::Full | ConflictPolicy::Raw);
    let mut g = DepGraph {
        n,
        dep: vec![false; n * n],
        ww: vec![false; n * n],
        edges: Vec::new(),
        scan_words: 0,
    };
    for j in 0..n {
        for i in 0..j {
            let (w_hit, w) = overlap_block_scan(&tasks[i].writes, &tasks[j].writes);
            g.scan_words += w;
            g.ww[i * n + j] = w_hit;
            g.ww[j * n + i] = w_hit;
            let mut d = w_hit;
            if !d && reads_checked {
                let (rw, w1) = overlap_block_scan(&tasks[i].reads, &tasks[j].writes);
                let (wr, w2) = overlap_block_scan(&tasks[j].reads, &tasks[i].writes);
                g.scan_words += w1 + w2;
                d = rw || wr;
            }
            if d {
                g.dep[i * n + j] = true;
                g.dep[j * n + i] = true;
                g.edges.push((i, j));
            }
        }
    }
    g
}

/// Orientation signature of a schedule: one bit per dependence edge,
/// true iff the edge's lower-indexed task commits first. Two schedules
/// with equal signatures are one Mazurkiewicz trace.
fn signature(g: &DepGraph, order: &[usize]) -> Vec<bool> {
    let mut pos = vec![0usize; g.n];
    for (p, &t) in order.iter().enumerate() {
        pos[t] = p;
    }
    g.edges.iter().map(|&(i, j)| pos[i] < pos[j]).collect()
}

/// `n!`, saturating at `u64::MAX`.
fn factorial_sat(n: usize) -> u64 {
    (1..=n as u64).fold(1u64, u64::saturating_mul)
}

/// Recursive representative enumeration: drain tasks with no dependence
/// edge into the canonical (ascending) order — their placement cannot
/// flip a signature bit — then branch on every task that still carries
/// an edge, deduplicating completed schedules by signature.
#[allow(clippy::too_many_arguments)]
fn explore(
    g: &DepGraph,
    mut remaining: Vec<usize>,
    mut order: Vec<usize>,
    seen: &mut HashSet<Vec<bool>>,
    schedules: &mut Vec<Vec<usize>>,
    budget: u64,
    walks: &mut u64,
    hit: &mut bool,
) {
    if *hit {
        return;
    }
    loop {
        let free: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&t| !remaining.iter().any(|&u| u != t && g.dep[t * g.n + u]))
            .collect();
        if free.is_empty() {
            break;
        }
        order.extend_from_slice(&free);
        remaining.retain(|t| !free.contains(t));
    }
    if remaining.is_empty() {
        *walks += 1;
        if seen.insert(signature(g, &order)) {
            if schedules.len() as u64 >= budget {
                *hit = true;
                return;
            }
            schedules.push(order);
        } else if *walks > budget.saturating_mul(64) {
            // Duplicate-heavy walk on a dense round: stop rather than
            // chase an exhausted signature space.
            *hit = true;
        }
        return;
    }
    for i in 0..remaining.len() {
        let mut r2 = remaining.clone();
        let t = r2.remove(i);
        let mut o2 = order.clone();
        o2.push(t);
        explore(g, r2, o2, seen, schedules, budget, walks, hit);
        if *hit {
            return;
        }
    }
}

/// Enumerates DPOR representatives. The literal identity schedule is
/// always first (it claims the identity signature, so the walk's
/// equivalent variants deduplicate onto it).
fn representatives(g: &DepGraph, budget: u64) -> (Vec<Vec<usize>>, bool) {
    let identity: Vec<usize> = (0..g.n).collect();
    let mut seen = HashSet::new();
    seen.insert(signature(g, &identity));
    let mut schedules = vec![identity];
    if g.edges.is_empty() || g.n > MAX_EXPLORE_TASKS {
        return (schedules, g.n > MAX_EXPLORE_TASKS && !g.edges.is_empty());
    }
    let mut hit = false;
    let mut walks = 0u64;
    explore(
        g,
        (0..g.n).collect(),
        Vec::new(),
        &mut seen,
        &mut schedules,
        budget,
        &mut walks,
        &mut hit,
    );
    (schedules, hit)
}

/// Re-derives every verdict from the recorded sets alone, validating in
/// schedule order: first committed writer wins, in-order commit
/// squashes everything after the round's first failure.
fn derive(
    tasks: &[Task],
    sched: &[usize],
    policy: ConflictPolicy,
    order: CommitOrder,
) -> Vec<DerivedVerdict> {
    let mut out = Vec::with_capacity(sched.len());
    let mut committed: Vec<usize> = Vec::new();
    let mut first_fail: Option<usize> = None;
    for &t in sched {
        if let (CommitOrder::InOrder, Some(f)) = (order, first_fail) {
            out.push(DerivedVerdict::Squash { by: f });
            continue;
        }
        let hit = recompute_conflict(
            policy,
            &tasks[t].reads,
            &tasks[t].writes,
            committed.iter().map(|&c| (c as u64, &tasks[c].writes)),
        );
        match hit {
            None => {
                out.push(DerivedVerdict::Ok);
                committed.push(t);
            }
            Some((kind, obj, word, winner)) => {
                out.push(DerivedVerdict::Conflict {
                    kind,
                    obj,
                    word,
                    winner: winner as usize,
                });
                first_fail.get_or_insert(t);
            }
        }
    }
    out
}

/// Renders per-position verdicts as a structurally valid single-round
/// stream: `round_start`, then `task_sets` + verdict (+ `commit`) per
/// position with sequence numbers relabelled to schedule positions,
/// closed by a consistent `run_end`. The round is renumbered to 0 so
/// the stream packages as a standalone journal.
fn synth_events(
    tasks: &[Task],
    sched: &[usize],
    verdicts: &[SynthVerdict],
    snapshot_slots: u64,
) -> Vec<Event> {
    let n = sched.len();
    let mut evs = Vec::with_capacity(3 * n + 2);
    evs.push(Event::RoundStart {
        round: 0,
        tasks: n as u32,
        snapshot_slots,
    });
    let mut commits = 0u64;
    for (p, (&t, v)) in sched.iter().zip(verdicts).enumerate() {
        evs.push(Event::TaskSets {
            seq: p as u64,
            reads: render_set(&tasks[t].reads),
            writes: render_set(&tasks[t].writes),
        });
        match v {
            SynthVerdict::Ok {
                validate_words,
                commit: (read_words, write_words, allocs, frees),
            } => {
                evs.push(Event::ValidateOk {
                    seq: p as u64,
                    validate_words: *validate_words,
                });
                evs.push(Event::Commit {
                    seq: p as u64,
                    read_words: *read_words,
                    write_words: *write_words,
                    allocs: *allocs,
                    frees: *frees,
                });
                commits += 1;
            }
            SynthVerdict::Conflict {
                kind,
                obj,
                word,
                winner_seq,
            } => evs.push(Event::ValidateConflict {
                seq: p as u64,
                kind: *kind,
                obj: ObjId::from_index(*obj),
                word: *word,
                winner_seq: *winner_seq,
            }),
            SynthVerdict::Squash { by_seq } => evs.push(Event::Squash {
                seq: p as u64,
                by_seq: *by_seq,
            }),
        }
    }
    evs.push(Event::RunEnd {
        rounds: 1,
        attempts: n as u64,
        committed: commits,
    });
    evs
}

/// Resolves the *recorded* claims under a candidate schedule. Conflict
/// attribution is schedule-relative reporting, not semantics: when both
/// the record and the re-derivation agree a reordered task conflicts,
/// the synthesized stream carries the schedule's own attribution (the
/// recorded winner may legitimately differ once commit order moves).
/// On the identity schedule the recorded attribution is kept verbatim
/// (positions permitting), so the oracle there is exactly as strict as
/// the sanitizer.
fn recorded_verdicts(
    tasks: &[Task],
    sched: &[usize],
    derived: &[DerivedVerdict],
    identity: bool,
) -> Vec<SynthVerdict> {
    let mut pos = vec![0usize; tasks.len()];
    for (p, &t) in sched.iter().enumerate() {
        pos[t] = p;
    }
    let seq_to_pos: HashMap<u64, u64> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.seq, pos[i] as u64))
        .collect();
    let remap = |seq: u64| seq_to_pos.get(&seq).copied().unwrap_or(seq);
    sched
        .iter()
        .zip(derived)
        .map(|(&t, d)| match &tasks[t].verdict {
            RecordedVerdict::Ok {
                validate_words,
                commit,
            } => SynthVerdict::Ok {
                validate_words: *validate_words,
                commit: commit.unwrap_or((tasks[t].reads.words(), tasks[t].writes.words(), 0, 0)),
            },
            RecordedVerdict::Conflict {
                kind,
                obj,
                word,
                winner_seq,
            } => {
                if let (
                    false,
                    DerivedVerdict::Conflict {
                        kind: dk,
                        obj: dobj,
                        word: dword,
                        winner,
                    },
                ) = (identity, d)
                {
                    SynthVerdict::Conflict {
                        kind: *dk,
                        obj: *dobj,
                        word: *dword,
                        winner_seq: pos[*winner] as u64,
                    }
                } else {
                    SynthVerdict::Conflict {
                        kind: *kind,
                        obj: *obj,
                        word: *word,
                        winner_seq: remap(*winner_seq),
                    }
                }
            }
            RecordedVerdict::Squash { by_seq } => SynthVerdict::Squash {
                by_seq: remap(*by_seq),
            },
        })
        .collect()
}

/// Resolves the *re-derived* verdicts under a candidate schedule. Commit
/// payloads come from the recorded sets (word counts a commit must
/// match); allocation counters carry over from the record where one
/// exists, since sets cannot derive them.
fn derived_verdicts(
    tasks: &[Task],
    sched: &[usize],
    derived: &[DerivedVerdict],
) -> Vec<SynthVerdict> {
    let mut pos = vec![0usize; tasks.len()];
    for (p, &t) in sched.iter().enumerate() {
        pos[t] = p;
    }
    sched
        .iter()
        .zip(derived)
        .map(|(&t, d)| match d {
            DerivedVerdict::Ok => {
                let (validate_words, allocs, frees) = match &tasks[t].verdict {
                    RecordedVerdict::Ok {
                        validate_words,
                        commit,
                    } => {
                        let (_, _, a, f) = commit.unwrap_or((0, 0, 0, 0));
                        (*validate_words, a, f)
                    }
                    _ => (0, 0, 0),
                };
                SynthVerdict::Ok {
                    validate_words,
                    commit: (
                        tasks[t].reads.words(),
                        tasks[t].writes.words(),
                        allocs,
                        frees,
                    ),
                }
            }
            DerivedVerdict::Conflict {
                kind,
                obj,
                word,
                winner,
            } => SynthVerdict::Conflict {
                kind: *kind,
                obj: *obj,
                word: *word,
                winner_seq: pos[*winner] as u64,
            },
            DerivedVerdict::Squash { by } => SynthVerdict::Squash {
                by_seq: pos[*by] as u64,
            },
        })
        .collect()
}

/// First pair of schedule-committed tasks whose write sets overlap, in
/// schedule order. Under write-checking policies this cannot happen (the
/// re-derivation would have conflicted the later writer); under
/// RAW-only or unchecked policies it is the order-sensitivity witness.
fn first_ww_committed(
    g: &DepGraph,
    sched: &[usize],
    derived: &[DerivedVerdict],
) -> Option<(usize, usize)> {
    let committed: Vec<usize> = sched
        .iter()
        .zip(derived)
        .filter(|(_, d)| matches!(d, DerivedVerdict::Ok))
        .map(|(&t, _)| t)
        .collect();
    for j in 1..committed.len() {
        for &earlier in &committed[..j] {
            if g.ww[earlier * g.n + committed[j]] {
                return Some((earlier, committed[j]));
            }
        }
    }
    None
}

/// Escalates a policy to its write-checking counterpart — the reference
/// isolation an order-sensitivity counterexample is rendered against.
fn escalate(policy: ConflictPolicy) -> ConflictPolicy {
    match policy {
        ConflictPolicy::None => ConflictPolicy::Waw,
        ConflictPolicy::Raw => ConflictPolicy::Full,
        p => p,
    }
}

/// Bisects the two synthesized streams into a [`Divergence`]. The
/// streams differ whenever the oracle rejected the schedule; the
/// fallback (identical streams despite violations, possible only for
/// identical overlapping write sets) still reports the first violating
/// event as structured evidence.
fn make_divergence(
    expected: Vec<Event>,
    actual: Vec<Event>,
    violations: &[Violation],
) -> (Box<Divergence>, Vec<Event>, Vec<Event>) {
    match diverge_bisect(&expected, &actual) {
        ReplayOutcome::Diverged(d) => (d, expected, actual),
        ReplayOutcome::Identical { .. } => {
            let index = violations.first().map_or(0, |v| v.event);
            let mut h = TraceHasher::new();
            for ev in actual.iter().take(index) {
                h.update_event(ev);
            }
            let d = Divergence {
                round: 0,
                seq: None,
                index,
                expected: None,
                actual: actual.get(index).cloned(),
                prefix_hash: h.finish(),
                expected_hash: trace_hash(&expected),
                actual_hash: trace_hash(&actual),
                set_delta: None,
            };
            (Box::new(d), expected, actual)
        }
    }
}

/// Per-round outcome of the schedule-space walk.
#[derive(Default)]
struct RoundOutcome {
    naive: u64,
    explored: u64,
    flagged: u64,
    budget_hit: bool,
    scan_words: u64,
    unsound: Option<(Box<Divergence>, Vec<Event>, Vec<Event>)>,
}

/// Model-checks one round: enumerate representatives, sanitize the
/// recorded claims under each, and re-derive against the sets for the
/// counterexample on rejection.
fn check_round(round: &RoundTasks, cfg: &CheckConfig) -> RoundOutcome {
    let tasks = &round.tasks;
    let n = tasks.len();
    let mut out = RoundOutcome::default();
    if n == 0 {
        out.naive = 1;
        out.explored = 1;
        return out;
    }
    let g = dep_graph(tasks, cfg.conflict);
    out.scan_words = g.scan_words;
    let (schedules, budget_hit) = match cfg.order {
        // Predefined commit order: the recorded schedule is the only
        // legal one (Saad et al.'s framing) — audit exactly it.
        CommitOrder::InOrder => (vec![(0..n).collect::<Vec<usize>>()], false),
        CommitOrder::OutOfOrder => representatives(&g, cfg.max_schedules_per_round.max(1)),
    };
    out.budget_hit = budget_hit;
    out.naive = match cfg.order {
        CommitOrder::InOrder => 1,
        CommitOrder::OutOfOrder => factorial_sat(n),
    };
    out.explored = schedules.len() as u64;
    let scfg = SanitizeConfig {
        conflict: cfg.conflict,
        order: cfg.order,
    };
    let write_checked = matches!(cfg.conflict, ConflictPolicy::Full | ConflictPolicy::Waw);
    for (si, sched) in schedules.iter().enumerate() {
        let identity = si == 0;
        let derived = derive(tasks, sched, cfg.conflict, cfg.order);
        let actual = synth_events(
            tasks,
            sched,
            &recorded_verdicts(tasks, sched, &derived, identity),
            round.snapshot_slots,
        );
        let violations = sanitize(&actual, &scfg);
        if identity && !violations.is_empty() {
            // The journal's own claims fail re-derivation: bisect the
            // sets-implied stream against the recorded one.
            let expected = synth_events(
                tasks,
                sched,
                &derived_verdicts(tasks, sched, &derived),
                round.snapshot_slots,
            );
            out.unsound = Some(make_divergence(expected, actual, &violations));
            break;
        }
        if !write_checked && first_ww_committed(&g, sched, &derived).is_some() {
            // Two committed writers overlap: the final heap state
            // depends on commit order. Render the counterexample
            // against the write-checking reference policy.
            let esc = derive(tasks, sched, escalate(cfg.conflict), cfg.order);
            let expected = synth_events(
                tasks,
                sched,
                &derived_verdicts(tasks, sched, &esc),
                round.snapshot_slots,
            );
            out.unsound = Some(make_divergence(expected, actual, &violations));
            break;
        }
        if !identity && !violations.is_empty() {
            out.flagged += 1;
        }
    }
    out
}

/// Model-checks a recorded event stream (with `task_sets` payloads)
/// against every DPOR-representative commit order per round.
pub fn check_events(events: &[Event], cfg: &CheckConfig) -> Result<CheckReport, String> {
    let rounds = extract_rounds(events)?;
    let mut report = CheckReport::default();
    for (ordinal, round) in rounds.iter().enumerate() {
        let out = check_round(round, cfg);
        report.rounds += 1;
        report.tasks += round.tasks.len() as u64;
        report.naive_schedules = report.naive_schedules.saturating_add(out.naive);
        report.explored += out.explored;
        report.flagged += out.flagged;
        report.budget_hits += u64::from(out.budget_hit);
        report.scan_words += out.scan_words;
        if let Some((divergence, expected, actual)) = out.unsound {
            report.unsound_rounds += 1;
            if report.unsound.len() < MAX_COUNTEREXAMPLES {
                report.unsound.push(UnsoundRound {
                    round: ordinal as u64,
                    divergence,
                    expected,
                    actual,
                });
            }
        }
    }
    Ok(report)
}

/// Model-checks a loaded journal. The journal must have been recorded
/// with `--sets` (the header's `record_sets` flag) — the access sets
/// *are* the model.
pub fn check_journal(journal: &Journal, cfg: &CheckConfig) -> Result<CheckReport, String> {
    if !journal.header().record_sets {
        return Err(
            "journal was recorded without task_sets payloads: re-record with --sets".into(),
        );
    }
    check_events(journal.events(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_waw() -> CheckConfig {
        CheckConfig::new(ConflictPolicy::Waw, CommitOrder::OutOfOrder)
    }

    fn sets_event(seq: u64, reads: &str, writes: &str) -> Event {
        Event::TaskSets {
            seq,
            reads: reads.into(),
            writes: writes.into(),
        }
    }

    fn ok_pair(seq: u64, write_words: u64) -> [Event; 2] {
        [
            Event::ValidateOk {
                seq,
                validate_words: 0,
            },
            Event::Commit {
                seq,
                read_words: 0,
                write_words,
                allocs: 0,
                frees: 0,
            },
        ]
    }

    /// Three pairwise-disjoint committed writers.
    fn disjoint_round() -> Vec<Event> {
        let mut evs = vec![Event::RoundStart {
            round: 0,
            tasks: 3,
            snapshot_slots: 4,
        }];
        for s in 0..3u64 {
            evs.push(sets_event(s, "", &format!("1:{}-{}", s * 8, s * 8 + 4)));
            evs.extend(ok_pair(s, 4));
        }
        evs.push(Event::RunEnd {
            rounds: 1,
            attempts: 3,
            committed: 3,
        });
        evs
    }

    #[test]
    fn disjoint_round_collapses_to_one_representative() {
        let report = check_events(&disjoint_round(), &cfg_waw()).unwrap();
        assert!(report.sound(), "{:?}", report.unsound);
        assert_eq!(report.naive_schedules, 6);
        assert_eq!(report.explored, 1);
        assert_eq!(report.pruned(), 5);
        assert_eq!(report.flagged, 0);
    }

    /// Task 1 overlaps task 0 and correctly conflicted; the flipped
    /// orientation is a distinct representative the oracle must flag.
    fn conflicting_round() -> Vec<Event> {
        let mut evs = vec![Event::RoundStart {
            round: 0,
            tasks: 2,
            snapshot_slots: 4,
        }];
        evs.push(sets_event(0, "", "1:0-4"));
        evs.extend(ok_pair(0, 4));
        evs.push(sets_event(1, "", "1:2-6"));
        evs.push(Event::ValidateConflict {
            seq: 1,
            kind: ConflictKind::Waw,
            obj: ObjId::from_index(1),
            word: 2,
            winner_seq: 0,
        });
        evs.push(Event::RunEnd {
            rounds: 1,
            attempts: 2,
            committed: 1,
        });
        evs
    }

    #[test]
    fn conflicting_pair_yields_two_representatives_and_a_flag() {
        let report = check_events(&conflicting_round(), &cfg_waw()).unwrap();
        assert!(report.sound(), "{:?}", report.unsound);
        assert_eq!(report.explored, 2);
        assert_eq!(report.flagged, 1);
    }

    #[test]
    fn overlapping_committed_writers_are_unsound() {
        let mut evs = disjoint_round();
        // Task 2 now writes over task 0's words but still claims ok.
        evs[7] = sets_event(2, "", "1:2-6");
        let report = check_events(&evs, &cfg_waw()).unwrap();
        assert_eq!(report.unsound_rounds, 1);
        let cex = &report.unsound[0];
        assert_eq!(cex.round, 0);
        assert_eq!(cex.divergence.seq, Some(2));
        assert!(matches!(
            cex.divergence.expected,
            Some(Event::ValidateConflict { .. })
        ));
        assert!(matches!(
            cex.divergence.actual,
            Some(Event::ValidateOk { .. })
        ));
    }

    #[test]
    fn unchecked_overlapping_writers_are_order_sensitive() {
        // Same overlapping claims, but under DOALL's unchecked policy the
        // sanitizer alone is blind — the write-write witness must fire.
        let mut evs = disjoint_round();
        evs[7] = sets_event(2, "", "1:2-6");
        let cfg = CheckConfig::new(ConflictPolicy::None, CommitOrder::OutOfOrder);
        let report = check_events(&evs, &cfg).unwrap();
        assert_eq!(report.unsound_rounds, 1);
        let cex = &report.unsound[0];
        // The reference (write-checking) stream conflicts the later
        // writer where the recorded stream commits it.
        assert!(matches!(
            cex.divergence.expected,
            Some(Event::ValidateConflict { .. })
        ));
    }

    #[test]
    fn in_order_rounds_audit_only_the_recorded_schedule() {
        let cfg = CheckConfig::new(ConflictPolicy::Raw, CommitOrder::InOrder);
        let mut evs = vec![Event::RoundStart {
            round: 0,
            tasks: 2,
            snapshot_slots: 4,
        }];
        evs.push(sets_event(0, "1:0-2", "1:0-4"));
        evs.extend(ok_pair(0, 4));
        evs.push(sets_event(1, "1:2-6", ""));
        evs.push(Event::ValidateConflict {
            seq: 1,
            kind: ConflictKind::Raw,
            obj: ObjId::from_index(1),
            word: 2,
            winner_seq: 0,
        });
        evs.push(Event::RunEnd {
            rounds: 1,
            attempts: 2,
            committed: 1,
        });
        let report = check_events(&evs, &cfg).unwrap();
        assert!(report.sound(), "{:?}", report.unsound);
        assert_eq!(report.naive_schedules, 1);
        assert_eq!(report.explored, 1);
    }

    #[test]
    fn journals_without_sets_are_rejected() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: 0,
            },
            Event::ValidateOk {
                seq: 0,
                validate_words: 0,
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 1,
                committed: 0,
            },
        ];
        let err = check_events(&evs, &cfg_waw()).unwrap_err();
        assert!(err.contains("--sets"), "{err}");
    }
}
