//! # alter-sim — deterministic virtual-time multicore simulation
//!
//! The paper's evaluation runs on an 8-core Xeon. This reproduction may run
//! on a single core, where wall-clock speedup is physically impossible — so
//! speedup figures (Figures 6–13) are regenerated on a *simulated*
//! multicore. The loop is executed for real through the deterministic
//! runtime (results are identical to threaded execution by the determinism
//! guarantee, §4.3); a [`SimObserver`] watches each lock-step round and
//! charges virtual time under a [`CostModel`]:
//!
//! * execution: workers run concurrently, a round lasts as long as its
//!   slowest worker;
//! * instrumentation: tracked accesses pay per-operation costs — elided
//!   read tracking under WAW is exactly why StaleReads beats OutOfOrder;
//! * commit & validation: serialized in deterministic commit order;
//! * barrier & snapshot: fixed per-round overhead;
//! * optional shared-bandwidth ceiling for memory-bound kernels.
//!
//! All inputs are measured (op counts, set sizes, retry schedules), so the
//! *shape* of the paper's results — who wins, by what factor, where scaling
//! saturates — is driven by the same mechanisms as on real hardware. See
//! DESIGN.md for the substitution argument.
#![warn(missing_docs)]

mod cost;
mod sim;

pub use cost::CostModel;
pub use sim::{simulate_loop, SimClock, SimObserver};
