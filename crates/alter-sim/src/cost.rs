//! The virtual-time cost model.
//!
//! The paper evaluates on an 8-core Xeon; this reproduction runs on
//! whatever machine it finds — possibly a single core — so speedup figures
//! are regenerated on a deterministic *simulated* multicore (see DESIGN.md).
//! The model charges each transaction for its compute work and data
//! movement, each round for its serialized commit/validation and its
//! barrier, and optionally caps each round at a shared memory-bandwidth
//! ceiling. Every input comes from *measured* execution (operation counts,
//! set sizes, retry schedules), not from assumptions about the workload.

/// Cost coefficients, in abstract time units (one unit ≈ one word touched).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Cost per unit of compute work declared via `Tx::work`.
    pub per_work: f64,
    /// Cost per word read or written (raw data movement; paid by both the
    /// sequential baseline and the parallel execution).
    pub per_word_touch: f64,
    /// Cost per *instrumented* access operation (the hash-set insert the
    /// paper's `InstrumentRead`/`InstrumentWrite` perform). Elided reads
    /// under WAW pay nothing — the source of StaleReads' advantage.
    pub per_instr_op: f64,
    /// Cost per word copied on write. The paper's runtime copies at page
    /// granularity, so the simulator charges
    /// `min(overlay, write_ranges × page + written words)` rather than the
    /// whole private object (see [`CostModel::page_words`]).
    pub per_cow_word: f64,
    /// Words per copy-on-write page (the 4 KiB page of the paper's Win32
    /// mappings = 512 words).
    pub page_words: u64,
    /// Cost per word merged into the committed state (serialized across
    /// the round's committing transactions).
    pub per_commit_word: f64,
    /// Cost per word compared during conflict validation (serialized).
    pub per_validate_word: f64,
    /// Fixed cost per round: the fork-join barrier plus commit
    /// orchestration.
    pub barrier: f64,
    /// Cost per heap slot to establish the round's snapshot.
    pub per_snapshot_slot: f64,
    /// Shared memory-bandwidth ceiling, in words per time unit across all
    /// workers. With `per_word_touch = 1` a single worker demands 1 word
    /// per unit, so e.g. `Some(2.5)` saturates memory-bound loops at ~2.5×
    /// — the behaviour the paper reports for Gauss-Seidel ("memory bound
    /// and hence do not scale well beyond 4 cores", §7.2). `None` models
    /// compute-bound kernels.
    pub bandwidth_words_per_unit: Option<f64>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            per_work: 1.0,
            per_word_touch: 1.0,
            per_instr_op: 4.0,
            page_words: 512,
            per_cow_word: 0.1,
            per_commit_word: 0.1,
            per_validate_word: 0.05,
            barrier: 200.0,
            per_snapshot_slot: 0.005,
            bandwidth_words_per_unit: None,
        }
    }
}

impl CostModel {
    /// The default model with a shared-bandwidth ceiling, for memory-bound
    /// kernels.
    pub fn memory_bound(bandwidth_words_per_unit: f64) -> Self {
        CostModel {
            bandwidth_words_per_unit: Some(bandwidth_words_per_unit),
            ..CostModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_compute_bound() {
        let m = CostModel::default();
        assert!(m.bandwidth_words_per_unit.is_none());
        assert!(
            m.per_instr_op > m.per_word_touch,
            "instrumentation dominates raw touches"
        );
    }

    #[test]
    fn memory_bound_sets_ceiling() {
        let m = CostModel::memory_bound(2.5);
        assert_eq!(m.bandwidth_words_per_unit, Some(2.5));
        assert_eq!(m.per_work, CostModel::default().per_work);
    }
}
