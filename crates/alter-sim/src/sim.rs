//! The deterministic virtual-time multicore executor.

use crate::cost::CostModel;
use alter_heap::Heap;
use alter_runtime::{
    run_loop_observed, Driver, ExecParams, IterSpace, RedVars, RoundObserver, RoundReport,
    RunError, RunStats, TaskReport, TxCtx,
};

/// Accumulated virtual-time accounting for one or more loop executions
/// (convergence algorithms run the inner loop many times; keep one
/// `SimClock` across all sweeps).
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    /// Virtual time of the simulated parallel execution.
    pub par_units: f64,
    /// Virtual time the same committed work costs sequentially (no
    /// instrumentation, no isolation, no retries, no barriers).
    pub seq_units: f64,
    /// Rounds observed.
    pub rounds: u64,
    /// Breakdown: execution time (max over workers, summed over rounds).
    pub exec_units: f64,
    /// Breakdown: serialized commit and validation time.
    pub commit_units: f64,
    /// Breakdown: barriers and snapshot establishment.
    pub overhead_units: f64,
    /// Breakdown: extra time added by the bandwidth ceiling.
    pub bandwidth_stall_units: f64,
}

impl SimClock {
    /// Simulated speedup over the sequential baseline.
    pub fn speedup(&self) -> f64 {
        if self.par_units == 0.0 {
            1.0
        } else {
            self.seq_units / self.par_units
        }
    }

    /// Adds sequential-only work (program phases outside the parallel
    /// loop) to both clocks — they dilute speedup identically, which is
    /// how loop weight (< 100%) enters Amdahl accounting.
    pub fn add_sequential(&mut self, units: f64) {
        self.par_units += units;
        self.seq_units += units;
    }
}

fn exec_cost(m: &CostModel, t: &TaskReport) -> f64 {
    // Copy-on-write cost at page granularity: each dirtied range touches at
    // most one extra page beyond the words written, and never more than the
    // materialized overlay.
    let cow_words = t
        .overlay_words
        .min(t.write_ranges * m.page_words + t.write_words)
        + t.alloc_words;
    t.stats.work as f64 * m.per_work
        + (t.stats.read_words + t.stats.write_words + t.stats.traffic_words) as f64
            * m.per_word_touch
        + (t.instr_read_ops + t.instr_write_ops) as f64 * m.per_instr_op
        + cow_words as f64 * m.per_cow_word
}

fn seq_cost(m: &CostModel, t: &TaskReport) -> f64 {
    t.stats.work as f64 * m.per_work
        + (t.stats.read_words + t.stats.write_words + t.stats.traffic_words) as f64
            * m.per_word_touch
}

/// A [`RoundObserver`] that advances a [`SimClock`] according to a
/// [`CostModel`].
#[derive(Debug)]
pub struct SimObserver<'m> {
    model: &'m CostModel,
    clock: SimClock,
    workers: usize,
}

impl<'m> SimObserver<'m> {
    /// Creates an observer simulating `workers` cores under `model`.
    pub fn new(model: &'m CostModel, workers: usize) -> Self {
        SimObserver {
            model,
            clock: SimClock::default(),
            workers: workers.max(1),
        }
    }

    /// Consumes the observer, yielding the accumulated clock.
    pub fn into_clock(self) -> SimClock {
        self.clock
    }

    /// The clock so far.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

impl RoundObserver for SimObserver<'_> {
    fn on_round(&mut self, r: &RoundReport<'_>) {
        let m = self.model;
        // Workers execute their transactions concurrently: the round's
        // execution phase lasts as long as its slowest worker.
        let mut worker_time = vec![0.0f64; self.workers];
        let mut round_words = 0u64;
        for t in r.tasks {
            worker_time[t.worker % self.workers] += exec_cost(m, t);
            round_words += t.stats.read_words + t.stats.write_words + t.stats.traffic_words;
            // Only committed work advances the sequential baseline:
            // retried and squashed executions are parallel-only overhead.
            if t.committed {
                self.clock.seq_units += seq_cost(m, t);
            }
        }
        let exec = worker_time.iter().cloned().fold(0.0, f64::max);

        // Commits and validations serialize in deterministic order.
        let commit: f64 = r
            .tasks
            .iter()
            .map(|t| {
                let validate = t.validate_words as f64 * m.per_validate_word;
                if t.committed {
                    validate
                        + t.write_words as f64 * m.per_commit_word
                        + t.alloc_words as f64 * m.per_commit_word
                } else {
                    validate
                }
            })
            .sum();

        let overhead = m.barrier + r.snapshot_slots as f64 * m.per_snapshot_slot;

        let mut round_time = exec + commit + overhead;
        if let Some(bw) = m.bandwidth_words_per_unit {
            let floor = round_words as f64 / bw;
            if floor > round_time {
                self.clock.bandwidth_stall_units += floor - round_time;
                round_time = floor;
            }
        }
        self.clock.par_units += round_time;
        self.clock.exec_units += exec;
        self.clock.commit_units += commit;
        self.clock.overhead_units += overhead;
        self.clock.rounds += 1;
    }
}

/// Runs one loop on the simulated multicore: executes it for real (with the
/// sequential driver, so results are identical to any other driver) while a
/// [`SimObserver`] charges virtual time.
///
/// # Errors
///
/// Propagates the runtime's [`RunError`]s.
pub fn simulate_loop<F>(
    heap: &mut Heap,
    reds: &mut RedVars,
    space: &mut dyn IterSpace,
    params: &ExecParams,
    model: &CostModel,
    body: F,
) -> Result<(RunStats, SimClock), RunError>
where
    F: Fn(&mut TxCtx<'_>, u64) + Sync,
{
    let mut obs = SimObserver::new(model, params.workers);
    let stats = run_loop_observed(
        heap,
        reds,
        space,
        params,
        Driver::sequential(),
        body,
        &mut obs,
    )?;
    Ok((stats, obs.into_clock()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_heap::ObjData;
    use alter_runtime::{ConflictPolicy, RangeSpace};

    fn run_doall(workers: usize, iters: u64, work_per_iter: u64) -> SimClock {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(iters as usize));
        let mut reds = RedVars::new();
        let mut params = ExecParams::new(workers, 8);
        params.conflict = ConflictPolicy::None;
        let model = CostModel::default();
        let (_, clock) = simulate_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, iters),
            &params,
            &model,
            |ctx, i| {
                ctx.tx.work(work_per_iter);
                ctx.tx.write_f64(xs, i as usize, 1.0);
            },
        )
        .unwrap();
        clock
    }

    #[test]
    fn compute_bound_doall_speedup_grows_with_workers() {
        let s1 = run_doall(1, 512, 2000).speedup();
        let s2 = run_doall(2, 512, 2000).speedup();
        let s4 = run_doall(4, 512, 2000).speedup();
        assert!(s2 > s1 * 1.5, "2 workers ≈ 2x: {s1:.2} -> {s2:.2}");
        assert!(s4 > s2 * 1.5, "4 workers ≈ 4x: {s2:.2} -> {s4:.2}");
        assert!(s4 < 4.0 + 1e-9, "cannot exceed linear");
    }

    #[test]
    fn single_worker_has_overhead_not_speedup() {
        let s1 = run_doall(1, 512, 2000).speedup();
        assert!(
            s1 < 1.0,
            "instrumentation+barriers make 1 worker slower: {s1:.3}"
        );
        assert!(s1 > 0.5, "but not pathologically so: {s1:.3}");
    }

    #[test]
    fn bandwidth_ceiling_caps_memory_bound_speedup() {
        let run = |workers: usize| {
            let n = 16384usize;
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_f64(n));
            let ys = heap.alloc(ObjData::zeros_f64(n));
            let mut reds = RedVars::new();
            let chunk = 256usize;
            let params = ExecParams::new(workers, 1);
            let model = CostModel::memory_bound(2.5);
            let (_, clock) = simulate_loop(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, (n / chunk) as u64),
                &params,
                &model,
                |ctx, c| {
                    // Streaming kernel: one range read + one range write per
                    // chunk of 256 elements.
                    let lo = c as usize * chunk;
                    let vals: Vec<f64> = ctx
                        .tx
                        .with_f64s(xs, lo, lo + chunk, |s| s.iter().map(|v| v * 2.0).collect());
                    ctx.tx.write_f64s(ys, lo, &vals);
                },
            )
            .unwrap();
            clock
        };
        let s8 = run(8);
        assert!(
            s8.speedup() < 2.6,
            "bandwidth-capped at ~2.5x: got {:.2}",
            s8.speedup()
        );
        assert!(s8.bandwidth_stall_units > 0.0, "the cap must have engaged");
    }

    #[test]
    fn retries_cost_parallel_time_but_not_sequential_time() {
        // All iterations hammer one counter: massive retries.
        let mut heap = Heap::new();
        let c = heap.alloc(ObjData::scalar_i64(0));
        let mut reds = RedVars::new();
        let params = ExecParams::new(4, 1);
        let model = CostModel::default();
        let (stats, clock) = simulate_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 32),
            &params,
            &model,
            |ctx, _| {
                ctx.tx.work(100);
                let v = ctx.tx.read_i64(c, 0);
                ctx.tx.write_i64(c, 0, v + 1);
            },
        )
        .unwrap();
        assert!(stats.retries() > 0);
        assert!(
            clock.speedup() < 1.0,
            "serialized loop must slow down: {:.2}",
            clock.speedup()
        );
        // Sequential clock counts each iteration exactly once.
        assert_eq!(heap.get(c).i64s()[0], 32);
    }

    #[test]
    fn add_sequential_dilutes_speedup() {
        let mut clock = run_doall(4, 512, 2000);
        let before = clock.speedup();
        clock.add_sequential(clock.seq_units * 2.0);
        let after = clock.speedup();
        assert!(after < before);
        assert!(after > 1.0);
    }

    /// Declared traffic on loop-invariant inputs is charged to both clocks
    /// and counts against the bandwidth ceiling.
    #[test]
    fn traffic_feeds_cost_and_bandwidth() {
        let run = |traffic: u64, bw: Option<f64>| {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_f64(256));
            let mut reds = RedVars::new();
            let mut params = ExecParams::new(4, 8);
            params.conflict = ConflictPolicy::None;
            let model = CostModel {
                bandwidth_words_per_unit: bw,
                ..CostModel::default()
            };
            let (_, clock) = simulate_loop(
                &mut heap,
                &mut reds,
                &mut RangeSpace::new(0, 256),
                &params,
                &model,
                |ctx, i| {
                    ctx.tx.traffic(traffic);
                    ctx.tx.write_f64(xs, i as usize, 1.0);
                },
            )
            .unwrap();
            clock
        };
        let quiet = run(0, None);
        let loud = run(64, None);
        assert!(
            loud.seq_units > quiet.seq_units,
            "traffic costs sequential time too"
        );
        assert!(loud.par_units > quiet.par_units);
        // A tight ceiling must bind on the traffic-heavy run.
        let capped = run(64, Some(1.5));
        assert!(capped.bandwidth_stall_units > 0.0, "ceiling must engage");
        assert!(capped.speedup() < loud.speedup());
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_doall(4, 256, 500);
        let b = run_doall(4, 256, 500);
        assert_eq!(a.par_units.to_bits(), b.par_units.to_bits());
        assert_eq!(a.seq_units.to_bits(), b.seq_units.to_bits());
    }
}
