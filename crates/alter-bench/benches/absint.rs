//! Microbenchmark of the static analyzer's probe economics: runs the full
//! inference suite twice — dynamic-only pruning (PR 5's predictor) versus
//! the combined static + dynamic tiers — and reports how many probes the
//! abstract interpreter's two-sided verdicts eliminate per workload.
//!
//! Everything asserted and emitted here is deterministic (probe counters,
//! not wall-clock), so the JSON summary written by `--json <path>` is
//! stable across machines and can be checked in (`scripts/bench.sh`
//! merges it into `BENCH_runtime.json` as the `"absint"` section).
//!
//! The run doubles as an acceptance check: it fails if the static tier
//! stops skipping at least 10 probes suite-wide, or if static pruning
//! changes any workload's inferred annotations.

use alter_infer::{infer, InferConfig};
use alter_workloads::{all_benchmarks, Scale};
use std::fmt::Write as _;

/// One workload's probe economics under the two pruning configurations.
struct Measured {
    name: String,
    probes_dynamic: u64,
    probes_combined: u64,
    static_skips: usize,
    /// `class` of each statically decided candidate, e.g.
    /// `"TLS: proved unsound: o.o.m."`.
    skipped: Vec<String>,
}

fn measure_all() -> Vec<Measured> {
    let combined_cfg = InferConfig::default();
    let dynamic_cfg = InferConfig {
        static_prune: false,
        ..InferConfig::default()
    };
    let mut rows = Vec::new();
    for b in all_benchmarks(Scale::Inference) {
        let name = b.name().to_owned();
        let combined = infer(b.as_ref(), &combined_cfg);
        let dynamic = infer(b.as_ref(), &dynamic_cfg);

        assert_eq!(
            combined.valid_annotations, dynamic.valid_annotations,
            "{name}: static pruning changed the inferred annotations"
        );
        assert_eq!(
            dynamic.probes_run - combined.probes_run,
            combined.static_pruned.len() as u64,
            "{name}: every static skip saves exactly one probe"
        );

        println!(
            "{name:<12} {:>2} probes -> {:>2} ({} statically skipped)",
            dynamic.probes_run,
            combined.probes_run,
            combined.static_pruned.len()
        );
        rows.push(Measured {
            name,
            probes_dynamic: dynamic.probes_run,
            probes_combined: combined.probes_run,
            static_skips: combined.static_pruned.len(),
            skipped: combined
                .static_pruned
                .iter()
                .map(|pc| format!("{}: {}", pc.annotation, pc.reason))
                .collect(),
        });
    }
    rows
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`).
fn to_json(rows: &[Measured]) -> String {
    let total_dynamic: u64 = rows.iter().map(|m| m.probes_dynamic).sum();
    let total_combined: u64 = rows.iter().map(|m| m.probes_combined).sum();
    let total_skips: usize = rows.iter().map(|m| m.static_skips).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"probes_dynamic_only\": {total_dynamic},");
    let _ = writeln!(out, "  \"probes_combined\": {total_combined},");
    let _ = writeln!(out, "  \"static_skips\": {total_skips},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"probes_dynamic_only\": {},", m.probes_dynamic);
        let _ = writeln!(out, "      \"probes_combined\": {},", m.probes_combined);
        let _ = writeln!(out, "      \"static_skips\": {},", m.static_skips);
        let skipped: Vec<String> = m.skipped.iter().map(|s| format!("\"{s}\"")).collect();
        let _ = writeln!(out, "      \"skipped\": [{}]", skipped.join(", "));
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let rows = measure_all();

    // The headline claim, checked on every run: the static tier must
    // eliminate at least 10 probes across the suite.
    let total_skips: usize = rows.iter().map(|m| m.static_skips).sum();
    assert!(
        total_skips >= 10,
        "static tier skipped only {total_skips} probes suite-wide (need >= 10)"
    );
    println!(
        "suite: {} probes -> {} ({} statically skipped)",
        rows.iter().map(|m| m.probes_dynamic).sum::<u64>(),
        rows.iter().map(|m| m.probes_combined).sum::<u64>(),
        total_skips
    );

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
