//! Phase-profile benchmark: per-phase cost-unit totals for Genome and
//! K-means under their best annotations at 1, 2, and 8 workers — the
//! numbers behind the EXPERIMENTS.md cost-share table.
//!
//! Everything emitted is deterministic (cost units folded from the
//! `phase_profile` trace events, never wall-clock), so the JSON summary
//! written by `--json <path>` is stable across machines and is merged into
//! `BENCH_runtime.json` by `scripts/bench.sh`.
//!
//! The run doubles as an acceptance check: for every configuration it
//! asserts that the trace-folded [`Profile`] agrees with the engine's own
//! `RunStats::phase_costs` ledger, that the sequential and threaded
//! drivers charge identical phase costs, and that enabling the profiler
//! changes the trace *only* by the `phase_profile` events themselves (the
//! hash with profiling stripped matches the unprofiled run).

use alter_infer::Probe;
use alter_runtime::PhaseCosts;
use alter_trace::{trace_hash, Event, Phase, Profile, Recorder, RingRecorder};
use alter_workloads::{genome::Genome, kmeans::KMeans, Benchmark, Scale};
use std::fmt::Write as _;
use std::sync::Arc;

const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

/// One (workload, workers) measurement.
struct Measured {
    workers: usize,
    rounds: u64,
    profile: Profile,
}

/// Runs `bench`'s best probe at `workers` with phase profiling on and
/// returns the recorded events plus the engine's own phase ledger.
fn profiled_run(
    bench: &dyn Benchmark,
    workers: usize,
    threaded: bool,
    profile_phases: bool,
) -> (Vec<Event>, PhaseCosts, u64) {
    let mut probe = bench.best_probe(workers);
    probe.threaded = threaded;
    probe.profile_phases = profile_phases;
    let rec = Arc::new(RingRecorder::default());
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (rec.events(), run.stats.phase_costs, run.stats.rounds)
}

fn measure(name: &str, bench: &dyn Benchmark, workers: usize) -> Measured {
    let (events, ledger, rounds) = profiled_run(bench, workers, false, true);
    let profile = Profile::from_events(&events);

    // The trace-folded profile and the engine's in-stats ledger are two
    // paths to the same numbers; they must agree exactly.
    for phase in [
        Phase::Snapshot,
        Phase::Execute,
        Phase::Validate,
        Phase::Commit,
    ] {
        assert_eq!(
            profile.cost(phase),
            ledger.cost(phase),
            "{name} N={workers}: trace profile and RunStats ledger disagree on {phase}"
        );
    }
    assert_eq!(profile.total(), ledger.total());
    // One entry per engine phase per round. (`Profile::rounds()` can be
    // smaller than `stats.rounds` for workloads that drive the loop once
    // per outer iteration — round numbering restarts each segment.)
    assert_eq!(
        profile.entries(),
        4 * rounds,
        "{name}: one entry set per round"
    );

    // Phase costs are trace-stable: the threaded driver must charge the
    // exact same units as the sequential simulation.
    let (threaded_events, threaded_ledger, _) = profiled_run(bench, workers, true, true);
    assert_eq!(
        ledger, threaded_ledger,
        "{name} N={workers}: drive mode changed phase costs"
    );
    assert_eq!(trace_hash(&events), trace_hash(&threaded_events));

    // Profiling must be observationally pure: stripping the phase_profile
    // events recovers the unprofiled trace byte for byte.
    let (plain_events, plain_ledger, _) = profiled_run(bench, workers, false, false);
    let stripped: Vec<Event> = events
        .iter()
        .filter(|ev| !matches!(ev, Event::PhaseProfile { .. }))
        .cloned()
        .collect();
    assert_eq!(
        trace_hash(&stripped),
        trace_hash(&plain_events),
        "{name} N={workers}: profiler perturbed the underlying trace"
    );
    // The ledger is always folded, profiled or not.
    assert_eq!(ledger, plain_ledger);

    Measured {
        workers,
        rounds,
        profile,
    }
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`).
fn to_json(rows: &[(String, String, Vec<Measured>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, (name, annotation, runs)) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{name}\",");
        let _ = writeln!(out, "      \"annotation\": \"{annotation}\",");
        let _ = writeln!(out, "      \"configs\": [");
        for (j, m) in runs.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"workers\": {}, \"rounds\": {}, \"total_cost\": {}",
                m.workers,
                m.rounds,
                m.profile.total()
            );
            for phase in [
                Phase::Snapshot,
                Phase::Execute,
                Phase::Validate,
                Phase::Commit,
            ] {
                let _ = write!(out, ", \"{}\": {}", phase.as_str(), m.profile.cost(phase));
            }
            let _ = writeln!(out, "}}{}", if j + 1 < runs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let genome = Genome::new(Scale::Inference);
    let kmeans = KMeans::new(Scale::Inference);
    let mut rows = Vec::new();
    for (name, bench) in [
        ("genome", &genome as &dyn Benchmark),
        ("k-means", &kmeans as &dyn Benchmark),
    ] {
        let probe: Probe = bench.best_probe(1);
        let mut runs = Vec::new();
        for workers in WORKER_SWEEP {
            let m = measure(name, bench, workers);
            println!(
                "{name:<8} [{}] N={workers}: {} rounds, {} cost units \
                 (snapshot {:.1}%, execute {:.1}%, validate {:.1}%, commit {:.1}%)",
                probe.describe(),
                m.rounds,
                m.profile.total(),
                m.profile.share(Phase::Snapshot) * 100.0,
                m.profile.share(Phase::Execute) * 100.0,
                m.profile.share(Phase::Validate) * 100.0,
                m.profile.share(Phase::Commit) * 100.0,
            );
            runs.push(m);
        }
        rows.push((name.to_owned(), probe.describe(), runs));
    }

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
