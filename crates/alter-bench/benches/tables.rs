//! Regenerates the paper's Table 3 and Table 4 (run via `cargo bench`).
fn main() {
    println!("{}", alter_bench::table3());
    println!("{}", alter_bench::table4());
    println!("{}", alter_bench::chunk_tuning());
    println!(
        "{}",
        alter_bench::convergence_facts(alter_workloads::Scale::Inference)
    );
}
