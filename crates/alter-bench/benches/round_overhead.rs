//! Microbenchmark of the per-round overhead machinery: for each measured
//! workload, runs the paper's best configuration at 8 workers under all
//! four combinations of {incremental, full} snapshots × {persistent pool,
//! scoped spawn-per-round} threading, asserts the four trace hashes are
//! identical (both optimizations are forbidden from being observable), and
//! reports the deterministic snapshot-economics counters side by side.
//!
//! Everything asserted and emitted here is deterministic (counters, not
//! wall-clock), so the JSON summary written by `--json <path>` is stable
//! across machines and can be checked in (`scripts/bench.sh` merges it
//! into `BENCH_runtime.json`). Wall-clock timings are printed for
//! orientation but never enter the JSON.
//!
//! The run doubles as an acceptance check: it fails if any config's trace
//! hash diverges, or if incremental snapshots do not cut
//! `snapshot_slots_copied` at least 5× on Genome and K-means.

use alter_infer::Probe;
use alter_runtime::RunStats;
use alter_trace::{format_hash, trace_hash, Recorder, RingRecorder};
use alter_workloads::{genome::Genome, kmeans::KMeans, Benchmark, Scale};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Worker count for the measured runs: wide rounds snapshot once per round
/// regardless of width, so 8 workers maximizes useful work per snapshot
/// and matches the validation bench's geometry.
const WORKERS: usize = 8;

/// One measured workload.
struct Measured {
    name: &'static str,
    annotation: String,
    chunk: usize,
    rounds: u64,
    trace_hash: u64,
    incremental: RunStats,
    full: RunStats,
}

/// Runs `bench` under `probe` with a fresh recorder; returns run stats and
/// the trace hash.
fn recorded_run(
    bench: &dyn Benchmark,
    probe: &Probe,
    incremental: bool,
    worker_pool: bool,
) -> (RunStats, u64) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.threaded = true;
    probe.incremental_snapshots = incremental;
    probe.worker_pool = worker_pool;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (run.stats, trace_hash(&rec.events()))
}

/// Best-of-5 wall time of one recorder-free probe run, in milliseconds.
fn time_run(bench: &dyn Benchmark, probe: &Probe, incremental: bool, worker_pool: bool) -> f64 {
    let mut probe = probe.clone();
    probe.threaded = true;
    probe.incremental_snapshots = incremental;
    probe.worker_pool = worker_pool;
    black_box(bench.run_probe(&probe).expect("warm-up must complete"));
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        black_box(bench.run_probe(&probe).expect("probe must complete"));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one workload under its best annotation across the four
/// round-machinery configs.
fn measure(name: &'static str, bench: &dyn Benchmark) -> Measured {
    let probe = bench.best_probe(WORKERS);
    let (incremental, hash_ip) = recorded_run(bench, &probe, true, true);
    let (full, hash_fp) = recorded_run(bench, &probe, false, true);
    let (incr_scoped, hash_is) = recorded_run(bench, &probe, true, false);
    let (full_scoped, hash_fs) = recorded_run(bench, &probe, false, false);

    for (tag, hash) in [
        ("full+pool", hash_fp),
        ("incr+scoped", hash_is),
        ("full+scoped", hash_fs),
    ] {
        assert_eq!(
            hash_ip, hash,
            "{name}: {tag} changed the trace — the optimization is not allowed to be visible"
        );
    }
    assert_eq!(incremental.committed, full.committed);
    assert_eq!(incremental.cost_units(), full.cost_units());
    assert_eq!(incremental.rounds, full.rounds);
    // Snapshot economics are a property of the heap's dirty pattern, not of
    // the drive mode; only pool bookkeeping may differ between pool/scoped.
    assert_eq!(
        incremental.modulo_drive_mode(),
        incr_scoped.modulo_drive_mode()
    );
    assert_eq!(full.modulo_drive_mode(), full_scoped.modulo_drive_mode());
    assert_eq!(
        incremental.pool_round_handoffs, incremental.rounds,
        "{name}: one pool handoff per round"
    );
    assert_eq!(incr_scoped.pool_round_handoffs, 0);

    let ms_full = time_run(bench, &probe, false, false);
    let ms_incr = time_run(bench, &probe, true, true);
    println!(
        "{name:<10} [{}] cf={} N={WORKERS}: snapshot slots {} -> {} over {} rounds \
         (pages reused {}); {ms_full:.1} ms -> {ms_incr:.1} ms",
        probe.describe(),
        probe.chunk,
        full.snapshot_slots_copied,
        incremental.snapshot_slots_copied,
        incremental.rounds,
        incremental.snapshot_pages_reused,
    );

    Measured {
        name,
        annotation: probe.describe(),
        chunk: probe.chunk,
        rounds: incremental.rounds,
        trace_hash: hash_ip,
        incremental,
        full,
    }
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`).
fn to_json(rows: &[Measured]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, m) in rows.iter().enumerate() {
        let reduction =
            m.full.snapshot_slots_copied as f64 / m.incremental.snapshot_slots_copied.max(1) as f64;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"annotation\": \"{}\",", m.annotation);
        let _ = writeln!(out, "      \"chunk\": {},", m.chunk);
        let _ = writeln!(out, "      \"rounds\": {},", m.rounds);
        let _ = writeln!(
            out,
            "      \"snapshot_slots_copied_full\": {},",
            m.full.snapshot_slots_copied
        );
        let _ = writeln!(
            out,
            "      \"snapshot_slots_copied_incremental\": {},",
            m.incremental.snapshot_slots_copied
        );
        let _ = writeln!(
            out,
            "      \"snapshot_pages_reused\": {},",
            m.incremental.snapshot_pages_reused
        );
        let _ = writeln!(out, "      \"snapshot_reduction_x\": {reduction:.2},");
        let _ = writeln!(
            out,
            "      \"pool_round_handoffs\": {},",
            m.incremental.pool_round_handoffs
        );
        let _ = writeln!(
            out,
            "      \"trace_hash\": \"{}\"",
            format_hash(m.trace_hash)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let genome = Genome::new(Scale::Inference);
    let kmeans = KMeans::new(Scale::Inference);
    let rows = vec![measure("genome", &genome), measure("k-means", &kmeans)];

    // The headline claim, checked on every run: incremental snapshots must
    // cut the slots copied per run at least 5× on both workloads.
    for m in &rows {
        let reduction =
            m.full.snapshot_slots_copied as f64 / m.incremental.snapshot_slots_copied.max(1) as f64;
        assert!(
            reduction >= 5.0,
            "{}: snapshot_slots_copied only cut {reduction:.2}x: {} (full) vs {} (incremental)",
            m.name,
            m.full.snapshot_slots_copied,
            m.incremental.snapshot_slots_copied
        );
        println!("{} snapshot-copy reduction: {reduction:.1}x", m.name);
    }

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
