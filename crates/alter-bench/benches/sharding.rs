//! Microbenchmark of the sharded versioned heap: for each measured
//! workload, runs the paper's best configuration with the heap split into
//! 1 and 16 object-id shards and reports the deterministic work counters
//! side by side — trace hash, legacy `validate_words`, and the words the
//! exact conflict scans actually compared under each layout.
//!
//! Sharding is a pure perf knob: per-shard fingerprints prune whole shards
//! before any exact scan runs, and the word-block scans that remain touch
//! only the surviving shard's ranges. The trace hash therefore must be
//! byte-identical at every shard count, and this bench hard-asserts it.
//!
//! Everything asserted and emitted here is deterministic (counters, not
//! wall-clock), so the JSON summary written by `--json <path>` is stable
//! across machines and can be checked in (`scripts/bench.sh` merges it
//! into `BENCH_runtime.json` as the `"sharding"` section).
//!
//! The run doubles as an acceptance check: it fails if any shard count
//! changes a trace hash, or if sharding does not at least halve exact-scan
//! words on Genome at 16 shards.
//!
//! Set `ALTER_BENCH_WALL_SCALING=1` to instead print a Table-3-shaped
//! wall-clock speedup table (genome / k-means / labyrinth, threaded runs
//! at 1/2/4/8 workers). Wall-clock numbers are informational only: they
//! are machine-dependent and never enter the JSON or any drift check.

use alter_infer::Probe;
use alter_runtime::RunStats;
use alter_trace::{format_hash, trace_hash, Recorder, RingRecorder};
use alter_workloads::{
    find_benchmark, genome::Genome, kmeans::KMeans, labyrinth::Labyrinth, Benchmark, Scale,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Worker count for the measured runs: wide rounds mean each validation
/// scans up to N−1 earlier write sets, which is the work per-shard
/// fingerprint pruning cuts down.
const WORKERS: usize = 8;

/// The sharded layout under test, compared against the unsharded heap.
const SHARDS_HI: usize = 16;

/// One measured workload: the same run at 1 shard and at `SHARDS_HI`.
struct Measured {
    name: &'static str,
    annotation: String,
    chunk: usize,
    trace_hash: u64,
    unsharded: RunStats,
    sharded: RunStats,
}

/// Runs `bench` under `probe` at `shards` heap shards with a fresh
/// recorder; returns run stats and the trace hash.
fn recorded_run(bench: &dyn Benchmark, probe: &Probe, shards: usize) -> (RunStats, u64) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.shards = shards;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (run.stats, trace_hash(&rec.events()))
}

/// Measures one workload under its best annotation at `chunk` iterations
/// per transaction (pinned at 4, matching the validation bench: genome's
/// tuned cf of 16 drowns no-conflict validations in retry attribution).
fn measure(name: &'static str, chunk: usize) -> Measured {
    let bench = find_benchmark(name).expect("workload is registered");
    let mut probe = bench.best_probe(WORKERS);
    probe.chunk = chunk;
    let (unsharded, hash_1) = recorded_run(bench.as_ref(), &probe, 1);
    let (sharded, hash_16) = recorded_run(bench.as_ref(), &probe, SHARDS_HI);

    assert_eq!(
        hash_1, hash_16,
        "{name}: sharding changed the trace — the optimization is not allowed to be visible"
    );
    // Every drive-invariant verdict must match field for field; only the
    // fast-path accounting (which scans ran) may move across shard counts.
    assert_eq!(unsharded.validate_words, sharded.validate_words);
    assert_eq!(unsharded.committed, sharded.committed);
    assert_eq!(unsharded.retries(), sharded.retries());
    assert_eq!(unsharded.rounds, sharded.rounds);
    assert_eq!(unsharded.cost_units(), sharded.cost_units());
    assert_eq!(unsharded.shard_validate_words, 0);
    assert!(sharded.shard_imbalance_max <= sharded.shard_validate_words.max(1));

    println!(
        "{name:<10} [{}] cf={} N={WORKERS}: exact-scan words {} -> {} at {SHARDS_HI} shards \
         (shard scans {}, commit batches {} -> {}, imbalance max {})",
        probe.describe(),
        probe.chunk,
        unsharded.exact_scan_words,
        sharded.exact_scan_words,
        sharded.shard_validate_words,
        unsharded.shard_commit_batches,
        sharded.shard_commit_batches,
        sharded.shard_imbalance_max,
    );

    Measured {
        name,
        annotation: probe.describe(),
        chunk: probe.chunk,
        trace_hash: hash_1,
        unsharded,
        sharded,
    }
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`).
fn to_json(rows: &[Measured]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"shards\": {SHARDS_HI},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, m) in rows.iter().enumerate() {
        let reduction =
            m.unsharded.exact_scan_words as f64 / m.sharded.exact_scan_words.max(1) as f64;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"annotation\": \"{}\",", m.annotation);
        let _ = writeln!(out, "      \"chunk\": {},", m.chunk);
        let _ = writeln!(
            out,
            "      \"validate_words\": {},",
            m.sharded.validate_words
        );
        let _ = writeln!(
            out,
            "      \"exact_scan_words_unsharded\": {},",
            m.unsharded.exact_scan_words
        );
        let _ = writeln!(
            out,
            "      \"exact_scan_words_sharded\": {},",
            m.sharded.exact_scan_words
        );
        let _ = writeln!(out, "      \"scan_reduction_x\": {reduction:.2},");
        let _ = writeln!(
            out,
            "      \"shard_validate_words\": {},",
            m.sharded.shard_validate_words
        );
        let _ = writeln!(
            out,
            "      \"shard_commit_batches\": {},",
            m.sharded.shard_commit_batches
        );
        let _ = writeln!(
            out,
            "      \"shard_imbalance_max\": {},",
            m.sharded.shard_imbalance_max
        );
        let _ = writeln!(
            out,
            "      \"trace_hash\": \"{}\"",
            format_hash(m.trace_hash)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Best-of-3 wall time of one recorder-free threaded probe run, in
/// milliseconds, at `workers` workers and `SHARDS_HI` heap shards.
fn time_threaded(bench: &dyn Benchmark, workers: usize) -> f64 {
    let mut probe = bench.best_probe(workers);
    probe.threaded = true;
    probe.shards = SHARDS_HI;
    black_box(bench.run_probe(&probe).expect("warm-up must complete"));
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(bench.run_probe(&probe).expect("probe must complete"));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The opt-in wall-clock mode: a Table-3-shaped speedup table over real
/// threads at the paper-scale inputs (the bold column of Table 2; the
/// inference-scale inputs used everywhere else finish in single-digit
/// milliseconds, where thread coordination dwarfs the loop body). Purely
/// informational — nothing here is asserted or written to JSON, because
/// wall-clock is machine noise by definition.
fn wall_scaling_table() {
    const COUNTS: [usize; 4] = [1, 2, 4, 8];
    let benches: [Box<dyn Benchmark>; 3] = [
        Box::new(Genome::new(Scale::Paper)),
        Box::new(KMeans::new(Scale::Paper)),
        Box::new(Labyrinth::new(Scale::Paper)),
    ];
    println!(
        "wall-clock scaling, paper-scale threaded runs at {SHARDS_HI} heap shards \
         (best of 3, informational):"
    );
    println!(
        "  {:<12} {:>9} {:>17} {:>17} {:>17}",
        "Benchmark", "1w (ms)", "2w", "4w", "8w"
    );
    for bench in &benches {
        let ms: Vec<f64> = COUNTS
            .iter()
            .map(|&w| time_threaded(bench.as_ref(), w))
            .collect();
        println!(
            "  {:<12} {:>9.1} {:>10.1} ({:>4.2}x) {:>10.1} ({:>4.2}x) {:>10.1} ({:>4.2}x)",
            bench.name(),
            ms[0],
            ms[1],
            ms[0] / ms[1].max(1e-9),
            ms[2],
            ms[0] / ms[2].max(1e-9),
            ms[3],
            ms[0] / ms[3].max(1e-9),
        );
    }
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    if std::env::var("ALTER_BENCH_WALL_SCALING").is_ok_and(|v| v == "1") {
        wall_scaling_table();
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let rows = vec![measure("genome", 4), measure("k-means", 4)];

    // The headline claim, checked on every run: at 16 shards the per-shard
    // fingerprints and word-block scans must at least halve the words the
    // exact scans compare on Genome.
    let g = &rows[0];
    assert!(
        g.sharded.exact_scan_words * 2 <= g.unsharded.exact_scan_words,
        "genome exact-scan words not halved by sharding: {} (sharded) vs {} (unsharded)",
        g.sharded.exact_scan_words,
        g.unsharded.exact_scan_words
    );
    println!(
        "genome exact-scan reduction at {SHARDS_HI} shards: {:.1}x",
        g.unsharded.exact_scan_words as f64 / g.sharded.exact_scan_words.max(1) as f64
    );

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
