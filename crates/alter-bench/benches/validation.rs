//! Microbenchmark of the validation fast path: for each measured workload,
//! runs the paper's best configuration with the layered fast path
//! (fingerprint pre-check + cumulative round write-set) on and off, and
//! reports the deterministic work counters side by side — trace hash,
//! legacy `validate_words`, and the words each mode's exact merge-scans
//! actually compared.
//!
//! Everything asserted and emitted here is deterministic (counters, not
//! wall-clock), so the JSON summary written by `--json <path>` is stable
//! across machines and can be checked in (`scripts/bench.sh` regenerates
//! `BENCH_runtime.json`). Wall-clock timings are printed for orientation
//! but never enter the JSON.
//!
//! The run doubles as an acceptance check: it fails if the two modes'
//! trace hashes diverge, or if the fast path does not at least halve
//! exact-scan work on Genome.

use alter_infer::Probe;
use alter_runtime::RunStats;
use alter_trace::{format_hash, trace_hash, Recorder, RingRecorder};
use alter_workloads::{genome::Genome, kmeans::KMeans, Benchmark, Scale};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Worker count for the measured runs: wide rounds make the per-earlier-
/// writer scan expensive (up to N−1 set comparisons per validation), which
/// is precisely the cost the cumulative write-set collapses to one.
const WORKERS: usize = 8;

/// One measured configuration of one workload.
struct Measured {
    name: &'static str,
    annotation: String,
    chunk: usize,
    cost_units: u64,
    trace_hash: u64,
    fast: RunStats,
    exact: RunStats,
}

/// Runs `bench` under `probe` with a fresh recorder; returns run stats and
/// the trace hash.
fn recorded_run(bench: &dyn Benchmark, probe: &Probe, fast: bool) -> (RunStats, u64) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.fast_validation = fast;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (run.stats, trace_hash(&rec.events()))
}

/// Best-of-5 wall time of one recorder-free probe run, in milliseconds.
fn time_run(bench: &dyn Benchmark, probe: &Probe, fast: bool) -> f64 {
    let mut probe = probe.clone();
    probe.fast_validation = fast;
    black_box(bench.run_probe(&probe).expect("warm-up must complete"));
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        black_box(bench.run_probe(&probe).expect("probe must complete"));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Measures one workload under its best annotation at `chunk` iterations
/// per transaction. The chunk factor is pinned at 4 for both workloads
/// (k-means' tuned cf; Genome's tuned cf of 16 raises its hash-bucket
/// retry rate to ~25%, drowning the no-conflict validations this bench is
/// about in conflict-attribution work).
fn measure(name: &'static str, bench: &dyn Benchmark, chunk: usize) -> Measured {
    let mut probe = bench.best_probe(WORKERS);
    probe.chunk = chunk;
    let (fast, hash_fast) = recorded_run(bench, &probe, true);
    let (exact, hash_exact) = recorded_run(bench, &probe, false);

    assert_eq!(
        hash_fast, hash_exact,
        "{name}: fast path changed the trace — the optimization is not allowed to be visible"
    );
    assert_eq!(fast.validate_words, exact.validate_words);
    assert_eq!(fast.committed, exact.committed);
    assert_eq!(fast.cost_units(), exact.cost_units());

    let ms_fast = time_run(bench, &probe, true);
    let ms_exact = time_run(bench, &probe, false);
    println!(
        "{name:<10} [{}] cf={} N={WORKERS}: exact-scan words {} -> {} \
         (hits {}, rejects {}, pool reuses {}); {ms_exact:.1} ms -> {ms_fast:.1} ms",
        probe.describe(),
        probe.chunk,
        exact.exact_scan_words,
        fast.exact_scan_words,
        fast.fingerprint_hits,
        fast.fingerprint_rejects,
        fast.pool_reuses,
    );

    Measured {
        name,
        annotation: probe.describe(),
        chunk: probe.chunk,
        cost_units: fast.cost_units(),
        trace_hash: hash_fast,
        fast,
        exact,
    }
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`).
fn to_json(rows: &[Measured]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, m) in rows.iter().enumerate() {
        let reduction = m.exact.exact_scan_words as f64 / m.fast.exact_scan_words.max(1) as f64;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"annotation\": \"{}\",", m.annotation);
        let _ = writeln!(out, "      \"chunk\": {},", m.chunk);
        let _ = writeln!(out, "      \"cost_units\": {},", m.cost_units);
        let _ = writeln!(out, "      \"validate_words\": {},", m.fast.validate_words);
        let _ = writeln!(
            out,
            "      \"exact_scan_words_exact\": {},",
            m.exact.exact_scan_words
        );
        let _ = writeln!(
            out,
            "      \"exact_scan_words_fast\": {},",
            m.fast.exact_scan_words
        );
        let _ = writeln!(out, "      \"scan_reduction_x\": {reduction:.2},");
        let _ = writeln!(
            out,
            "      \"fingerprint_hits\": {},",
            m.fast.fingerprint_hits
        );
        let _ = writeln!(
            out,
            "      \"fingerprint_rejects\": {},",
            m.fast.fingerprint_rejects
        );
        let _ = writeln!(out, "      \"pool_reuses\": {},", m.fast.pool_reuses);
        let _ = writeln!(
            out,
            "      \"trace_hash\": \"{}\"",
            format_hash(m.trace_hash)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let genome = Genome::new(Scale::Inference);
    let kmeans = KMeans::new(Scale::Inference);
    let rows = vec![
        measure("genome", &genome, 4),
        measure("k-means", &kmeans, 4),
    ];

    // The headline claim, checked on every run: the layered fast path must
    // at least halve the words exact merge-scans compare on Genome.
    let g = &rows[0];
    assert!(
        g.fast.exact_scan_words * 2 <= g.exact.exact_scan_words,
        "genome exact-scan words not halved: {} (fast) vs {} (exact)",
        g.fast.exact_scan_words,
        g.exact.exact_scan_words
    );
    println!(
        "genome exact-scan reduction: {:.1}x",
        g.exact.exact_scan_words as f64 / g.fast.exact_scan_words.max(1) as f64
    );

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
