//! Criterion microbenchmarks of the runtime primitives: snapshot
//! establishment, instrumented access, transaction finish, conflict
//! validation and commit. These are the per-round costs the virtual-time
//! model charges; measuring them grounds the cost-model coefficients.

use alter_heap::{AccessSet, Heap, IdReservation, ObjData, TrackMode, Tx};
use alter_runtime::{run_loop, ConflictPolicy, Driver, ExecParams, RedVars};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_snapshot(c: &mut Criterion) {
    let mut heap = Heap::new();
    for _ in 0..10_000 {
        heap.alloc(ObjData::scalar_i64(1));
    }
    c.bench_function("snapshot_10k_slots", |b| {
        b.iter(|| black_box(heap.snapshot()))
    });
}

fn bench_instrumented_access(c: &mut Criterion) {
    let mut heap = Heap::new();
    let xs = heap.alloc(ObjData::zeros_f64(4096));
    let snap = heap.snapshot();
    c.bench_function("tracked_element_reads_4k", |b| {
        b.iter(|| {
            let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
            let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
            let mut acc = 0.0;
            for i in 0..4096 {
                acc += tx.read_f64(xs, i);
            }
            black_box(acc)
        })
    });
    c.bench_function("untracked_element_reads_4k", |b| {
        b.iter(|| {
            let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
            let mut tx = Tx::new(&snap, TrackMode::WritesOnly, ids, u64::MAX);
            let mut acc = 0.0;
            for i in 0..4096 {
                acc += tx.read_f64(xs, i);
            }
            black_box(acc)
        })
    });
    c.bench_function("range_read_4k", |b| {
        b.iter(|| {
            let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
            let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
            black_box(tx.with_f64s(xs, 0, 4096, |s| s.iter().sum::<f64>()))
        })
    });
}

fn bench_conflict_validation(c: &mut Criterion) {
    let mut a = AccessSet::new();
    let mut b_set = AccessSet::new();
    for i in 0..1000u32 {
        a.insert(alter_heap::ObjId::from_index(i), 0, 8);
        b_set.insert(alter_heap::ObjId::from_index(i + 1000), 0, 8);
    }
    c.bench_function("disjoint_setcmp_1k_objects", |bch| {
        bch.iter(|| black_box(a.overlaps(&b_set)))
    });
}

fn bench_doall_loop(c: &mut Criterion) {
    c.bench_function("doall_loop_4k_iters", |b| {
        b.iter(|| {
            let mut heap = Heap::new();
            let xs = heap.alloc(ObjData::zeros_f64(4096));
            let mut reds = RedVars::new();
            let mut params = ExecParams::new(4, 64);
            params.conflict = ConflictPolicy::None;
            run_loop(
                &mut heap,
                &mut reds,
                &mut alter_runtime::RangeSpace::new(0, 4096),
                &params,
                Driver::sequential(),
                |ctx, i| ctx.tx.write_f64(xs, i as usize, 1.0),
            )
            .unwrap();
            black_box(heap.digest())
        })
    });
}

criterion_group!(
    benches,
    bench_snapshot,
    bench_instrumented_access,
    bench_conflict_validation,
    bench_doall_loop
);
criterion_main!(benches);
