//! Microbenchmarks of the runtime primitives: snapshot establishment,
//! instrumented access, conflict validation and full loop execution. These
//! are the per-round costs the virtual-time model charges; measuring them
//! grounds the cost-model coefficients.
//!
//! Plain `Instant`-based timing (the workspace builds offline, without
//! `criterion`): each benchmark reports the best-of-runs per-iteration
//! time. Alongside wall-clock numbers — which vary by machine — the DOALL
//! benchmark checks the runtime's *deterministic cost-units counter*: it
//! must be bit-identical with no recorder and with a `NopRecorder`
//! attached, making the recorder's zero-overhead contract checkable
//! without timing noise.

use alter_heap::{AccessSet, Heap, IdReservation, ObjData, TrackMode, Tx};
use alter_runtime::{run_loop, ConflictPolicy, Driver, ExecParams, RedVars};
use alter_trace::NopRecorder;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Times `f` over several timed runs of `iters` calls each and reports the
/// best per-call nanoseconds (best-of-N rejects scheduler noise).
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // Warm up caches and allocator.
    for _ in 0..iters.div_ceil(4).max(1) {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_call = start.elapsed().as_secs_f64() * 1e9 / f64::from(iters);
        best = best.min(per_call);
    }
    println!("{name:<32} {best:>12.1} ns/iter");
}

fn bench_snapshot() {
    let mut heap = Heap::new();
    for _ in 0..10_000 {
        heap.alloc(ObjData::scalar_i64(1));
    }
    bench("snapshot_10k_slots", 1000, || heap.snapshot());
}

fn bench_instrumented_access() {
    let mut heap = Heap::new();
    let xs = heap.alloc(ObjData::zeros_f64(4096));
    let snap = heap.snapshot();
    bench("tracked_element_reads_4k", 200, || {
        let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
        let mut acc = 0.0;
        for i in 0..4096 {
            acc += tx.read_f64(xs, i);
        }
        acc
    });
    bench("untracked_element_reads_4k", 200, || {
        let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
        let mut tx = Tx::new(&snap, TrackMode::WritesOnly, ids, u64::MAX);
        let mut acc = 0.0;
        for i in 0..4096 {
            acc += tx.read_f64(xs, i);
        }
        acc
    });
    bench("range_read_4k", 500, || {
        let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
        tx.with_f64s(xs, 0, 4096, |s| s.iter().sum::<f64>())
    });
}

fn bench_conflict_validation() {
    let mut a = AccessSet::new();
    let mut b_set = AccessSet::new();
    for i in 0..1000u32 {
        a.insert(alter_heap::ObjId::from_index(i), 0, 8);
        b_set.insert(alter_heap::ObjId::from_index(i + 1000), 0, 8);
    }
    bench("disjoint_setcmp_1k_objects", 2000, || a.overlaps(&b_set));
}

/// One DOALL run over 4k iterations; returns `(heap digest, cost units)`.
fn doall_run(params: &ExecParams) -> (u64, u64) {
    let mut heap = Heap::new();
    let xs = heap.alloc(ObjData::zeros_f64(4096));
    let mut reds = RedVars::new();
    let stats = run_loop(
        &mut heap,
        &mut reds,
        &mut alter_runtime::RangeSpace::new(0, 4096),
        params,
        Driver::sequential(),
        |ctx, i| ctx.tx.write_f64(xs, i as usize, 1.0),
    )
    .unwrap();
    (heap.digest(), stats.cost_units())
}

fn bench_doall_loop() {
    let mut plain = ExecParams::new(4, 64);
    plain.conflict = ConflictPolicy::None;
    let nop = plain.clone().with_recorder(Arc::new(NopRecorder));

    // The zero-overhead contract, checked deterministically: a NopRecorder
    // must not change what the engine does, only (at most) how long it
    // takes — so the cost-units counter and the heap digest are identical.
    let (digest_plain, cost_plain) = doall_run(&plain);
    let (digest_nop, cost_nop) = doall_run(&nop);
    assert_eq!(
        cost_plain, cost_nop,
        "NopRecorder changed the deterministic cost-units counter"
    );
    assert_eq!(digest_plain, digest_nop, "NopRecorder changed the heap");
    println!("doall_4k cost units: {cost_plain} (identical with NopRecorder)");

    bench("doall_loop_4k_iters", 50, || doall_run(&plain));
    bench("doall_loop_4k_iters_nop_rec", 50, || doall_run(&nop));
}

fn main() {
    // `cargo test` runs bench targets with `--test`; there is nothing to
    // test here, so just exit quickly.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    bench_snapshot();
    bench_instrumented_access();
    bench_conflict_validation();
    bench_doall_loop();
}
