//! Microbenchmark of the DPOR schedule-space checker: model-checks the
//! recorded best-annotation runs of Genome and K-means and reports the
//! deterministic pruning economics — naive schedule count (`Σ n!` over
//! rounds), DPOR representatives actually explored, reorderings the
//! oracle flagged, and the words the commutativity block scans compared.
//!
//! Everything asserted and emitted here is deterministic (counters, not
//! wall-clock), so the JSON summary written by `--json <path>` is stable
//! across machines and can be checked in (`scripts/bench.sh` merges it
//! into `BENCH_runtime.json` as the `"check"` section).
//!
//! The run doubles as an acceptance check: it fails if either workload's
//! best annotation stops being schedule-sound, or if DPOR stops pruning
//! at least 5× below naive enumeration on both workloads.

use alter_analyze::{check_events, CheckConfig, CheckReport};
use alter_infer::Probe;
use alter_trace::{Event, Recorder, RingRecorder};
use alter_workloads::{find_benchmark, Benchmark};
use std::fmt::Write as _;
use std::sync::Arc;

/// Worker count for the measured runs: wide rounds mean up to N! naive
/// commit orders per round, which is the space DPOR prunes.
const WORKERS: usize = 4;

/// One measured workload: the best-annotation run's schedule-space audit.
struct Measured {
    name: &'static str,
    annotation: String,
    report: CheckReport,
}

/// Runs `bench` under `probe` with task-set recording and returns the
/// captured events.
fn recorded_run(bench: &dyn Benchmark, probe: &Probe) -> Vec<Event> {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.record_sets = true;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    rec.events()
}

/// Model-checks one workload under its best annotation.
fn measure(name: &'static str) -> Measured {
    let bench = find_benchmark(name).expect("workload is registered");
    let probe = bench.best_probe(WORKERS);
    let params = probe.model.exec_params(WORKERS, probe.chunk);
    let events = recorded_run(bench.as_ref(), &probe);
    let cfg = CheckConfig::new(params.conflict, params.order);
    let report = check_events(&events, &cfg).expect("recorded stream must extract");

    assert!(
        report.sound(),
        "{name}: best annotation unsound under an explored schedule: {:?}",
        report.unsound.first().map(|u| u.divergence.render())
    );
    assert_eq!(
        report.budget_hits, 0,
        "{name}: schedule budget must not bite"
    );
    // The headline claim, checked on every run: DPOR must explore at
    // least 5x fewer schedules than naive enumeration.
    assert!(
        report.explored * 5 <= report.naive_schedules,
        "{name}: DPOR pruning below 5x: {} explored vs {} naive",
        report.explored,
        report.naive_schedules
    );

    println!(
        "{name:<10} [{}] N={WORKERS}: {} rounds, {} naive schedules -> {} explored \
         ({:.1}x pruning), {} reorderings flagged, {} scan words",
        probe.describe(),
        report.rounds,
        report.naive_schedules,
        report.explored,
        report.naive_schedules as f64 / report.explored.max(1) as f64,
        report.flagged,
        report.scan_words,
    );

    Measured {
        name,
        annotation: probe.describe(),
        report,
    }
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`).
fn to_json(rows: &[Measured]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, m) in rows.iter().enumerate() {
        let r = &m.report;
        let ratio = r.naive_schedules as f64 / r.explored.max(1) as f64;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"annotation\": \"{}\",", m.annotation);
        let _ = writeln!(out, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(out, "      \"tasks\": {},", r.tasks);
        let _ = writeln!(out, "      \"naive_schedules\": {},", r.naive_schedules);
        let _ = writeln!(out, "      \"explored\": {},", r.explored);
        let _ = writeln!(out, "      \"pruned\": {},", r.pruned());
        let _ = writeln!(out, "      \"pruning_ratio_x\": {ratio:.2},");
        let _ = writeln!(out, "      \"flagged\": {},", r.flagged);
        let _ = writeln!(out, "      \"scan_words\": {},", r.scan_words);
        let _ = writeln!(out, "      \"sound\": {}", r.sound());
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let rows = vec![measure("genome"), measure("k-means")];

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
