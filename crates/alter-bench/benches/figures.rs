//! Regenerates the paper's Figures 5-13 (run via `cargo bench`).
//!
//! Pass `--quick` through cargo bench arguments to use inference-scale
//! inputs: `cargo bench --bench figures -- --quick`.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        alter_workloads::Scale::Inference
    } else {
        alter_workloads::Scale::Paper
    };
    println!("{}", alter_bench::figure5());
    println!("{}", alter_bench::figures(scale));
}
