//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. read-tracking elision under WAW — the mechanism behind StaleReads'
//!    advantage (force read tracking back on via the FULL policy and watch
//!    the gap close);
//! 2. range-granular vs whole-object conflict detection (false sharing);
//! 3. commit-order policy (InOrder squashing vs OutOfOrder retry);
//! 4. chunk-factor U-curve on a synthetic loop.
//!
//! Run with `cargo bench --bench ablations`.

use alter_heap::{Heap, ObjData};
use alter_infer::{Model, Probe};
use alter_runtime::{CommitOrder, ConflictPolicy, ExecParams, RangeSpace, RedVars};
use alter_sim::{simulate_loop, CostModel};
use alter_workloads::genome::Genome;
use alter_workloads::Scale;

fn params(
    conflict: ConflictPolicy,
    order: CommitOrder,
    workers: usize,
    chunk: usize,
) -> ExecParams {
    let mut p = ExecParams::new(workers, chunk);
    p.conflict = conflict;
    p.order = order;
    p
}

/// Ablation 1: the read-instrumentation elision. Genome under WAW
/// (StaleReads), RAW (OutOfOrder) and FULL (WAW semantics with read
/// tracking forced back on).
fn ablate_read_tracking() {
    println!("== Ablation 1: read-tracking elision (Genome, 4 workers, cf 16) ==");
    let g = Genome::new(Scale::Inference);
    for (label, model) in [
        ("WAW  (reads elided)   ", Model::StaleReads),
        ("RAW  (reads tracked)  ", Model::OutOfOrder),
    ] {
        let (_, stats, clock) = g.run(&Probe::new(model, 4, 16)).unwrap();
        println!(
            "  {label} par={:>9.0}  tracked words/txn={:>5.0}  retry={:.1}%",
            clock.par_units,
            stats.avg_rw_words(),
            stats.retry_rate() * 100.0
        );
    }
    println!("  (forcing read tracking erases StaleReads' advantage)\n");
}

/// Ablation 2: conflict granularity. Iterations write disjoint halves of
/// shared objects: with word-range sets nothing conflicts; emulating
/// whole-object tracking (writing the full object) serializes them.
fn ablate_granularity() {
    println!("== Ablation 2: range vs whole-object conflict granularity ==");
    for (label, whole_object) in [("word ranges ", false), ("whole object", true)] {
        let mut heap = Heap::new();
        let objs: Vec<_> = (0..32).map(|_| heap.alloc(ObjData::zeros_f64(8))).collect();
        let mut reds = RedVars::new();
        let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 4, 1);
        let model = CostModel::default();
        let (stats, _) = simulate_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 64),
            &p,
            &model,
            |ctx, i| {
                let obj = objs[(i / 2) as usize];
                if whole_object {
                    ctx.tx
                        .update_f64s(obj, 0, 8, |s| s[(i % 2) as usize * 4] += 1.0);
                } else {
                    let half = (i % 2) as usize * 4;
                    ctx.tx.update_f64s(obj, half, half + 4, |s| s[0] += 1.0);
                }
            },
        )
        .unwrap();
        println!(
            "  {label}: retry rate {:>5.1}%  ({} attempts for 64 iterations)",
            stats.retry_rate() * 100.0,
            stats.attempts
        );
    }
    println!("  (coarse tracking manufactures false conflicts)\n");
}

/// Ablation 3: commit-order policy on a real workload. Genome under
/// `RAW + OutOfOrder` vs `RAW + InOrder` (TLS): the only difference is
/// that an in-order conflict squashes every later in-flight transaction.
fn ablate_commit_order() {
    println!("== Ablation 3: commit-order policy (Genome, RAW conflicts, 8 workers) ==");
    let g = Genome::new(Scale::Inference);
    for (label, model) in [
        ("OutOfOrder", Model::OutOfOrder),
        ("InOrder   ", Model::Tls),
    ] {
        let (_, stats, clock) = g.run(&Probe::new(model, 8, 16)).unwrap();
        println!(
            "  {label}: retry rate {:>5.1}%  simulated time {:>8.0}",
            stats.retry_rate() * 100.0,
            clock.par_units
        );
    }
    println!("  (squashing amplifies each conflict into a pipeline flush)\n");
}

/// Ablation 4: the chunk-factor U-curve on a uniform synthetic loop.
fn ablate_chunking() {
    println!("== Ablation 4: chunk factor U-curve (4 workers, uniform loop) ==");
    print!("  cf:   ");
    for cf in [1usize, 2, 4, 8, 16, 32, 64] {
        print!("{cf:>9}");
    }
    println!();
    print!("  time: ");
    for cf in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut heap = Heap::new();
        let arr = heap.alloc(ObjData::zeros_f64(512));
        let hot = heap.alloc(ObjData::zeros_i64(8));
        let mut reds = RedVars::new();
        let p = params(ConflictPolicy::Waw, CommitOrder::OutOfOrder, 4, cf);
        let model = CostModel::default();
        let (_, clock) = simulate_loop(
            &mut heap,
            &mut reds,
            &mut RangeSpace::new(0, 512),
            &p,
            &model,
            |ctx, i| {
                ctx.tx.work(40);
                ctx.tx.write_f64(arr, i as usize, 1.0);
                if i % 16 == 0 {
                    let c = (i / 16 % 8) as usize;
                    let v = ctx.tx.read_i64(hot, c);
                    ctx.tx.write_i64(hot, c, v + 1);
                }
            },
        )
        .unwrap();
        print!("{:>9.0}", clock.par_units);
    }
    println!("\n  (left edge pays a barrier per iteration; right edge loses parallelism and concentrates conflicts)\n");
}

fn main() {
    ablate_read_tracking();
    ablate_granularity();
    ablate_commit_order();
    ablate_chunking();
}
