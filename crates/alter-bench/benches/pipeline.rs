//! Pipelined-committer A/B bench: quantifies, in deterministic virtual-time
//! cost units, how much committer stall the ticketed pipeline driver
//! removes versus the lock-step round barrier — while proving the two
//! drivers are observably identical (byte-identical trace hashes).
//!
//! Three scenarios at N=8 workers:
//!
//! * **skewed-chunk** — a synthetic one-round loop whose last lane carries
//!   almost all the execute cost. Under the barrier the committer idles for
//!   the slowest lane before retiring anything; pipelined, it retires the
//!   seven cheap tickets while the heavy lane is still running. The bench
//!   *asserts* a ≥ 2× stall reduction here (the ratio is ~8× in practice).
//! * **genome** and **labyrinth** — the two Table 2 workloads with the most
//!   uneven per-chunk work, under their best annotations.
//!
//! For every scenario the bench also asserts: pipeline depth 1 reproduces
//! the barrier run's `RunStats` field for field (the degenerate case), the
//! phase-cost ledger is invariant across drivers (the pipeline only moves
//! *waiting*, never work), and `tickets_issued + tickets_requeued ==
//! attempts`.
//!
//! Everything in the `--json` summary is a deterministic counter, so
//! `scripts/bench.sh` merges it into the checked-in `BENCH_runtime.json`.
//! Set `ALTER_BENCH_WALL=1` for an informational wall-clock column
//! (best-of-3 ms, printed only — never part of the JSON or any assert).

use alter_heap::{Heap, ObjData};
use alter_runtime::{Driver, ExecParams, LoopBuilder, RunStats};
use alter_trace::{format_hash, trace_hash, Recorder, RingRecorder};
use alter_workloads::{find_benchmark, Benchmark};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const WORKERS: usize = 8;

/// Per-lane write span of the synthetic scenario, in f64 words.
const SPAN: usize = 512;
/// Declared work units of the synthetic heavy lane.
const HEAVY_WORK: u64 = 4000;

/// One measured scenario: barrier and pipelined runs of the same loop.
struct Measured {
    name: &'static str,
    config: String,
    rounds: u64,
    trace_hash: u64,
    barrier: RunStats,
    pipelined: RunStats,
    /// Informational wall-clock (ms, best of 3) when ALTER_BENCH_WALL=1.
    wall_ms: Option<(f64, f64)>,
}

impl Measured {
    fn stall_reduction(&self) -> f64 {
        self.barrier.committer_stall_units as f64
            / self.pipelined.committer_stall_units.max(1) as f64
    }
}

fn wall_requested() -> bool {
    std::env::var("ALTER_BENCH_WALL").is_ok_and(|v| v == "1")
}

/// The synthetic skewed-chunk loop: 8 single-iteration chunks in one round,
/// lanes 0..=6 each write a private 512-word span, lane 7 additionally
/// declares 4000 work units — the straggler the barrier waits for.
fn skewed_params(pipelined: bool, depth: usize) -> ExecParams {
    ExecParams::from_annotation(
        &"[StaleReads]".parse().expect("static annotation"),
        WORKERS,
        1,
    )
    .with_pipelined(pipelined)
    .with_pipeline_depth(depth)
}

fn run_skewed(pipelined: bool, depth: usize, recorder: Option<Arc<dyn Recorder>>) -> RunStats {
    let mut params = skewed_params(pipelined, depth);
    if let Some(rec) = recorder {
        params = params.with_recorder(rec);
    }
    let mut heap = Heap::new();
    let xs = heap.alloc(ObjData::zeros_f64(WORKERS * SPAN));
    LoopBuilder::new(&params)
        .range(0, WORKERS as u64)
        .run(&mut heap, Driver::threaded(), |ctx, i| {
            if i as usize == WORKERS - 1 {
                ctx.tx.work(HEAVY_WORK);
            }
            for w in 0..SPAN {
                ctx.tx
                    .write_f64(xs, i as usize * SPAN + w, (i as usize * SPAN + w) as f64);
            }
        })
        .expect("skewed-chunk loop must complete")
}

/// Traced run of the synthetic loop; returns stats and the trace hash.
fn recorded_skewed(pipelined: bool, depth: usize) -> (RunStats, u64) {
    let rec = Arc::new(RingRecorder::default());
    let stats = run_skewed(pipelined, depth, Some(rec.clone() as Arc<dyn Recorder>));
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (stats, trace_hash(&rec.events()))
}

/// Best-of-3 wall time of one recorder-free synthetic run, in ms.
fn time_skewed(pipelined: bool, depth: usize) -> f64 {
    black_box(run_skewed(pipelined, depth, None));
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(run_skewed(pipelined, depth, None));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure_skewed() -> Measured {
    let (barrier, hash_barrier) = recorded_skewed(false, 1);
    let (depth1, hash_depth1) = recorded_skewed(true, 1);
    let (pipelined, hash_pipe) = recorded_skewed(true, 4);
    check_pair("skewed-chunk", &barrier, &depth1, &pipelined);
    assert_eq!(
        hash_barrier, hash_depth1,
        "skewed-chunk: depth-1 trace moved"
    );
    assert_eq!(
        hash_barrier, hash_pipe,
        "skewed-chunk: pipelined trace moved"
    );
    let wall_ms = wall_requested().then(|| (time_skewed(false, 1), time_skewed(true, 4)));
    Measured {
        name: "skewed-chunk",
        config: format!("[StaleReads] synthetic, heavy lane {HEAVY_WORK} work units"),
        rounds: barrier.rounds,
        trace_hash: hash_barrier,
        barrier,
        pipelined,
        wall_ms,
    }
}

/// Traced workload run under its best annotation on the threaded pool.
fn recorded_workload(bench: &dyn Benchmark, pipelined: bool, depth: usize) -> (RunStats, u64) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = bench.best_probe(WORKERS);
    probe.threaded = true;
    probe.pipelined = pipelined;
    probe.pipeline_depth = depth;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe).expect("probe must complete");
    assert_eq!(rec.dropped(), 0, "ring must hold the whole trace");
    (run.stats, trace_hash(&rec.events()))
}

/// Best-of-3 wall time of one recorder-free workload run, in ms.
fn time_workload(bench: &dyn Benchmark, pipelined: bool, depth: usize) -> f64 {
    let mut probe = bench.best_probe(WORKERS);
    probe.threaded = true;
    probe.pipelined = pipelined;
    probe.pipeline_depth = depth;
    black_box(bench.run_probe(&probe).expect("warm-up must complete"));
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(bench.run_probe(&probe).expect("probe must complete"));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// The cross-driver invariants every scenario must satisfy.
fn check_pair(name: &str, barrier: &RunStats, depth1: &RunStats, pipelined: &RunStats) {
    assert_eq!(
        barrier, depth1,
        "{name}: pipeline depth 1 must reproduce the barrier run field for field"
    );
    assert_eq!(
        barrier.modulo_drive_mode(),
        pipelined.modulo_drive_mode(),
        "{name}: pipelining may only move masked telemetry"
    );
    assert_eq!(
        barrier.phase_costs, pipelined.phase_costs,
        "{name}: the phase-cost ledger is driver-invariant — the pipeline moves waiting, not work"
    );
    for (tag, s) in [("barrier", barrier), ("pipelined", pipelined)] {
        assert_eq!(
            s.tickets_issued + s.tickets_requeued,
            s.attempts,
            "{name}/{tag}: every attempt is an issued or re-queued ticket"
        );
    }
    assert!(
        pipelined.committer_stall_units <= barrier.committer_stall_units,
        "{name}: in-order streaming can never stall the committer longer than the barrier \
         ({} vs {})",
        pipelined.committer_stall_units,
        barrier.committer_stall_units
    );
}

fn measure_workload(name: &'static str, bench: &dyn Benchmark) -> Measured {
    let (barrier, hash_barrier) = recorded_workload(bench, false, 1);
    let (depth1, hash_depth1) = recorded_workload(bench, true, 1);
    let (pipelined, hash_pipe) = recorded_workload(bench, true, 4);
    check_pair(name, &barrier, &depth1, &pipelined);
    assert_eq!(hash_barrier, hash_depth1, "{name}: depth-1 trace moved");
    assert_eq!(hash_barrier, hash_pipe, "{name}: pipelined trace moved");
    let probe = bench.best_probe(WORKERS);
    let wall_ms = wall_requested().then(|| {
        (
            time_workload(bench, false, 1),
            time_workload(bench, true, 4),
        )
    });
    Measured {
        name,
        config: format!("[{}] cf={}", probe.describe(), probe.chunk),
        rounds: barrier.rounds,
        trace_hash: hash_barrier,
        barrier,
        pipelined,
        wall_ms,
    }
}

fn print_row(m: &Measured) {
    let wall = match m.wall_ms {
        Some((b, p)) => format!("; wall {b:.1} ms -> {p:.1} ms"),
        None => String::new(),
    };
    println!(
        "{:<12} {} N={WORKERS}: committer stall {} -> {} units ({:.1}x) over {} round(s), \
         worker idle {} -> {}; trace hash {}{wall}",
        m.name,
        m.config,
        m.barrier.committer_stall_units,
        m.pipelined.committer_stall_units,
        m.stall_reduction(),
        m.rounds,
        m.barrier.worker_idle_units,
        m.pipelined.worker_idle_units,
        format_hash(m.trace_hash),
    );
}

/// Renders the deterministic summary as pretty-printed JSON (hand-rolled;
/// the workspace builds without `serde`). Counters only — wall-clock never
/// appears here, which is what makes the merged file drift-checkable.
fn to_json(rows: &[Measured]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(out, "  \"pipeline_depth\": 4,");
    let _ = writeln!(out, "  \"scenarios\": [");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(out, "      \"config\": \"{}\",", m.config);
        let _ = writeln!(out, "      \"rounds\": {},", m.rounds);
        let _ = writeln!(
            out,
            "      \"committer_stall_units_barrier\": {},",
            m.barrier.committer_stall_units
        );
        let _ = writeln!(
            out,
            "      \"committer_stall_units_pipelined\": {},",
            m.pipelined.committer_stall_units
        );
        let _ = writeln!(
            out,
            "      \"stall_reduction_x\": {:.2},",
            m.stall_reduction()
        );
        let _ = writeln!(
            out,
            "      \"worker_idle_units_barrier\": {},",
            m.barrier.worker_idle_units
        );
        let _ = writeln!(
            out,
            "      \"worker_idle_units_pipelined\": {},",
            m.pipelined.worker_idle_units
        );
        let _ = writeln!(
            out,
            "      \"tickets_issued\": {},",
            m.pipelined.tickets_issued
        );
        let _ = writeln!(
            out,
            "      \"tickets_requeued\": {},",
            m.pipelined.tickets_requeued
        );
        let _ = writeln!(
            out,
            "      \"trace_hash\": \"{}\"",
            format_hash(m.trace_hash)
        );
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    // `cargo test` runs bench targets with `--test`; nothing to test here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let mut json_path = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next().cloned();
            if json_path.is_none() {
                eprintln!("error: --json needs a path");
                std::process::exit(1);
            }
        }
    }

    let genome = find_benchmark("genome").expect("genome is registered");
    let labyrinth = find_benchmark("labyrinth").expect("labyrinth is registered");
    let rows = vec![
        measure_skewed(),
        measure_workload("genome", genome.as_ref()),
        measure_workload("labyrinth", labyrinth.as_ref()),
    ];
    for m in &rows {
        print_row(m);
    }

    // The headline claim, checked on every run: on the skewed-chunk
    // scenario the pipelined committer must shed at least 2× the stall the
    // barrier pays for its straggler lane.
    let skewed = &rows[0];
    assert!(
        skewed.stall_reduction() >= 2.0,
        "skewed-chunk: committer stall only cut {:.2}x: {} (barrier) vs {} (pipelined)",
        skewed.stall_reduction(),
        skewed.barrier.committer_stall_units,
        skewed.pipelined.committer_stall_units
    );
    println!(
        "skewed-chunk committer-stall reduction: {:.1}x",
        skewed.stall_reduction()
    );

    let json = to_json(&rows);
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON summary");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
