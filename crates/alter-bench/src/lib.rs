//! # alter-bench — the table & figure harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7) on
//! the simulated multicore:
//!
//! * [`table3`] — annotation-inference outcomes per benchmark;
//! * [`table4`] — chunk factor, transaction counts, RW-set sizes and retry
//!   rates;
//! * [`figure5`] — runtime vs chunk factor on K-means inputs;
//! * [`figures`] — the speedup curves of Figures 6–13;
//! * [`convergence_facts`] — the §7.2 convergence observations (GS sweep
//!   counts, SG3D max-vs-+ iterations, Floyd passes).
//!
//! Run `cargo bench` (or the `alter-tables` / `alter-figures` binaries)
//! to print them.

#![warn(missing_docs)]

use alter_infer::{infer, InferConfig, Model, Probe};
use alter_sim::SimClock;
use alter_workloads::gauss_seidel::GaussSeidel;
use alter_workloads::kmeans::KMeans;
use alter_workloads::manual;
use alter_workloads::sg3d::Sg3d;
use alter_workloads::{all_benchmarks, Benchmark, Scale};
use std::fmt::Write as _;

/// Worker counts the speedup figures sweep (the paper's x-axis runs to 8).
pub const WORKER_SWEEP: [usize; 5] = [1, 2, 4, 6, 8];

/// Dilutes a loop's simulated speedup by its loop weight (Table 2's
/// LOOP WGT column), Amdahl-style.
pub fn diluted_speedup(clock: &SimClock, weight: f64) -> f64 {
    let mut c = clock.clone();
    if weight < 1.0 && weight > 0.0 {
        c.add_sequential(c.seq_units * (1.0 / weight - 1.0));
    }
    c.speedup()
}

fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        let _ = write!(s, "{cell:<w$}  ");
    }
    s.trim_end().to_owned()
}

/// Renders Table 3: the inference outcome matrix.
///
/// Columns mirror the paper: loop-carried dependence, TLS, OutOfOrder,
/// StaleReads, and the reduction operators found. Inference runs on the
/// inference-scale inputs, exactly as in Table 2.
pub fn table3() -> String {
    let cfg = InferConfig::default();
    let widths = [11, 5, 9, 9, 9, 10];
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: results of annotation inference");
    let _ = writeln!(
        out,
        "{}",
        fmt_row(
            &["Benchmark", "Dep", "TLS", "OutOrd", "Stale", "Reduction"].map(str::to_owned),
            &widths
        )
    );
    for b in all_benchmarks(Scale::Inference) {
        let report = infer(b.as_ref(), &cfg);
        // The Stale column reports the best StaleReads result: the policy
        // alone, or combined with a successful reduction (the paper's
        // K-means/SG3D rows fold the reduction in).
        let stale_cell = if report.stale_reads.is_success()
            || report
                .successful_reductions()
                .iter()
                .any(|r| r.model == Model::StaleReads)
        {
            "success".to_owned()
        } else {
            report.stale_reads.short().to_owned()
        };
        // The paper's convention: the TLS and OutOrd columns report the
        // policy alone, while the Stale column folds in the best reduction
        // (its K-means row is `h.c. h.c. success +`).
        let ooo_cell = report.out_of_order.short().to_owned();
        let _ = writeln!(
            out,
            "{}",
            fmt_row(
                &[
                    report.name.clone(),
                    if report.dep.any() { "Yes" } else { "No" }.to_owned(),
                    report.tls.short().to_owned(),
                    ooo_cell,
                    stale_cell,
                    {
                        let mut ops: Vec<String> = Vec::new();
                        for r in report.successful_reductions() {
                            if r.model == Model::StaleReads {
                                let op = r.op.to_string();
                                if !ops.contains(&op) {
                                    ops.push(op);
                                }
                            }
                        }
                        if ops.is_empty() {
                            "N/A".into()
                        } else {
                            ops.join("/")
                        }
                    },
                ],
                &widths
            )
        );
    }
    out
}

/// Renders Table 4: instrumentation details of the chosen configuration
/// per benchmark (chunk factor, transactions executed, average RW-set
/// words per transaction, retry rate).
pub fn table4() -> String {
    let widths = [22, 5, 12, 14, 10];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: instrumentation details (best annotation, 4 workers)"
    );
    let _ = writeln!(
        out,
        "{}",
        fmt_row(
            &[
                "Benchmark",
                "cf",
                "Txn Count",
                "RW Set/Trans.",
                "Retry Rate"
            ]
            .map(str::to_owned),
            &widths
        )
    );
    let mut lines = Vec::new();
    {
        let mut push_line = |name: String, probe: &Probe, b: &dyn Benchmark| {
            if let Ok(run) = b.run_probe_public(probe) {
                lines.push(fmt_row(
                    &[
                        name,
                        probe.chunk.to_string(),
                        run.stats.attempts.to_string(),
                        format!("{:.0}", run.stats.avg_rw_words()),
                        format!("{:.1}%", run.stats.retry_rate() * 100.0),
                    ],
                    &widths,
                ));
            } else {
                lines.push(format!("{name:<22}  (aborts under this configuration)"));
            }
        };
        for b in all_benchmarks(Scale::Inference) {
            let name = b.name_public().to_owned();
            if name == "Labyrinth" {
                continue; // no valid annotation; skipped in the paper too
            }
            // Genome and SSCA2 get both Stale and OutOfOrder rows, as in
            // the paper's table.
            if name == "Genome" || name == "SSCA2" {
                for model in [Model::StaleReads, Model::OutOfOrder] {
                    let mut probe = b.best_probe(4);
                    probe.model = model;
                    push_line(format!("{name}-{model}"), &probe, b.as_ref());
                }
            } else {
                let probe = b.best_probe(4);
                push_line(name, &probe, b.as_ref());
            }
        }
    }
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

/// Helper trait so the harness can call `InferTarget` methods through
/// `Box<dyn Benchmark>` without naming the supertrait everywhere.
pub trait BenchmarkExt {
    /// The benchmark's name.
    fn name_public(&self) -> &str;
    /// Runs a probe (delegates to `InferTarget::run_probe`).
    fn run_probe_public(
        &self,
        probe: &Probe,
    ) -> Result<alter_infer::ProbeRun, alter_runtime::RunError>;
}

impl<T: Benchmark + ?Sized> BenchmarkExt for T {
    fn name_public(&self) -> &str {
        self.name()
    }
    fn run_probe_public(
        &self,
        probe: &Probe,
    ) -> Result<alter_infer::ProbeRun, alter_runtime::RunError> {
        self.run_probe(probe)
    }
}

/// Renders Figure 5: K-means runtime vs chunk factor across four inputs
/// (two point counts × two cluster counts). The paper's finding: the best
/// chunk factor is input-independent.
pub fn figure5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5: K-means simulated time vs chunk factor");
    let configs = [
        ("S-16", KMeans::with_clusters(Scale::Inference, 16)),
        ("S-32", KMeans::with_clusters(Scale::Inference, 32)),
        ("L-16", KMeans::with_clusters(Scale::Paper, 16)),
        ("L-32", KMeans::with_clusters(Scale::Paper, 32)),
    ];
    let cfs = [1usize, 2, 4, 8, 16];
    let _ = writeln!(
        out,
        "input     {}",
        cfs.iter()
            .map(|c| format!("cf={c:<10}"))
            .collect::<String>()
    );
    let mut bests = Vec::new();
    for (label, km) in &configs {
        let mut row = format!("{label:<9} ");
        let mut best = (0usize, f64::INFINITY);
        for &cf in &cfs {
            let mut probe = km.best_probe(4);
            probe.chunk = cf;
            let t = km.run(&probe).map(|r| r.3.par_units).unwrap_or(f64::NAN);
            if t < best.1 {
                best = (cf, t);
            }
            let _ = write!(row, "{t:<13.0}");
        }
        bests.push(best.0);
        let _ = writeln!(out, "{row}  (best cf={})", best.0);
    }
    // The paper's finding: the best chunk factor depends on the loop
    // structure, not the input size — compare small vs large at equal
    // cluster counts.
    let stable = bests[0] == bests[2] && bests[1] == bests[3];
    let _ = writeln!(
        out,
        "best cf (S-16, S-32, L-16, L-32) = {:?} -> {}",
        bests,
        if stable {
            "independent of input size (paper's finding)"
        } else {
            "varies with input size"
        }
    );
    out
}

fn speedup_series(b: &dyn Benchmark, mk_probe: impl Fn(usize) -> Probe) -> Vec<(usize, f64)> {
    WORKER_SWEEP
        .iter()
        .map(|&w| {
            let s = match b.run_probe_public(&mk_probe(w)) {
                Ok(run) => diluted_speedup(&run.clock, b.loop_weight()),
                Err(_) => f64::NAN,
            };
            (w, s)
        })
        .collect()
}

fn series_row(label: &str, series: &[(usize, f64)]) -> String {
    let mut s = format!("{label:<28}");
    for (_, v) in series {
        if v.is_nan() {
            let _ = write!(s, "{:>8}", "fail");
        } else {
            let _ = write!(s, "{v:>8.2}");
        }
    }
    s
}

/// Renders the speedup curves of Figures 6–13 (speedup over sequential vs
/// simulated processor count).
pub fn figures(scale: Scale) -> String {
    let mut out = String::new();
    let header = {
        let mut h = format!("{:<28}", "configuration");
        for w in WORKER_SWEEP {
            let _ = write!(h, "{w:>8}");
        }
        h
    };

    let by_name = |name: &str| -> Box<dyn Benchmark> {
        all_benchmarks(scale)
            .into_iter()
            .find(|b| b.name_public() == name)
            .expect("benchmark registered")
    };

    // Figure 6: Genome under all three models.
    let _ = writeln!(out, "Figure 6: Genome\n{header}");
    let g = by_name("Genome");
    for model in [Model::StaleReads, Model::OutOfOrder, Model::Tls] {
        let series = speedup_series(g.as_ref(), |w| {
            let mut p = g.best_probe(w);
            p.model = model;
            p
        });
        let _ = writeln!(out, "{}", series_row(&format!("Genome-{model}"), &series));
    }

    // Figure 7: SSCA2.
    let _ = writeln!(out, "\nFigure 7: SSCA2\n{header}");
    let s = by_name("SSCA2");
    for model in [Model::StaleReads, Model::OutOfOrder] {
        let series = speedup_series(s.as_ref(), |w| {
            let mut p = s.best_probe(w);
            p.model = model;
            p
        });
        let _ = writeln!(out, "{}", series_row(&format!("SSCA2-{model}"), &series));
    }

    // Figure 8: K-means at two cluster counts, plus the manual baseline.
    let _ = writeln!(
        out,
        "\nFigure 8: K-means (vs manual fine-grained locking)\n{header}"
    );
    for clusters in [32usize, 64] {
        let km = KMeans::with_clusters(scale, clusters);
        let series = speedup_series(&km, |w| km.best_probe(w));
        let _ = writeln!(
            out,
            "{}",
            series_row(&format!("K-means-{clusters}"), &series)
        );
        let manual_series: Vec<(usize, f64)> = WORKER_SWEEP
            .iter()
            .map(|&w| {
                let s = manual::manual_kmeans(&km, w)
                    .map(|c| diluted_speedup(&c, km.loop_weight()))
                    .unwrap_or(f64::NAN);
                (w, s)
            })
            .collect();
        let _ = writeln!(
            out,
            "{}",
            series_row(&format!("K-means-{clusters}-manual"), &manual_series)
        );
    }

    // Figure 9: Gauss-Seidel dense & sparse vs the hand-synced baseline.
    let _ = writeln!(
        out,
        "\nFigure 9: Gauss-Seidel (vs manual multi-copy version)\n{header}"
    );
    for gs in [GaussSeidel::dense(scale), GaussSeidel::sparse(scale)] {
        let series = speedup_series(&gs, |w| gs.best_probe(w));
        let _ = writeln!(out, "{}", series_row(gs.name_public(), &series));
        let manual_series: Vec<(usize, f64)> = WORKER_SWEEP
            .iter()
            .map(|&w| {
                let s = manual::manual_gauss_seidel(&gs, w)
                    .map(|c| diluted_speedup(&c, gs.loop_weight()))
                    .unwrap_or(f64::NAN);
                (w, s)
            })
            .collect();
        let _ = writeln!(
            out,
            "{}",
            series_row(&format!("{}-manual", gs.name_public()), &manual_series)
        );
    }

    // Figure 10: Floyd.
    let _ = writeln!(out, "\nFigure 10: Floyd-Warshall\n{header}");
    let f = by_name("Floyd");
    let series = speedup_series(f.as_ref(), |w| f.best_probe(w));
    let _ = writeln!(out, "{}", series_row("Floyd-StaleReads", &series));

    // Figure 11: SG3D with the two valid reductions. Both curves are
    // normalized to the *original* (max-reduction) program's sequential
    // time, so the extra sweeps the + annotation needs show up as lost
    // speedup — exactly how the paper plots it.
    let _ = writeln!(
        out,
        "\nFigure 11: SG3D (27-point stencil, alternate reductions)\n{header}"
    );
    let sg = Sg3d::new(scale);
    for op in [alter_runtime::RedOp::Max, alter_runtime::RedOp::Add] {
        let series: Vec<(usize, f64)> = WORKER_SWEEP
            .iter()
            .map(|&w| {
                let mut max_probe = sg.best_probe(w);
                max_probe.reduction = Some(("err".into(), alter_runtime::RedOp::Max));
                let mut op_probe = sg.best_probe(w);
                op_probe.reduction = Some(("err".into(), op));
                let s = match (
                    sg.run_probe_public(&max_probe),
                    sg.run_probe_public(&op_probe),
                ) {
                    (Ok(reference), Ok(run)) => {
                        let mut clock = run.clock.clone();
                        clock.seq_units = reference.clock.seq_units;
                        diluted_speedup(&clock, sg.loop_weight())
                    }
                    _ => f64::NAN,
                };
                (w, s)
            })
            .collect();
        let _ = writeln!(out, "{}", series_row(&format!("SG3D-Stale+{op}"), &series));
    }

    // Figure 12: AggloClust.
    let _ = writeln!(out, "\nFigure 12: Agglomerative Clustering\n{header}");
    let a = by_name("AggloClust");
    let series = speedup_series(a.as_ref(), |w| a.best_probe(w));
    let _ = writeln!(out, "{}", series_row("AggloClust-StaleReads", &series));

    // Figure 13: the three dependence-free benchmarks.
    let _ = writeln!(out, "\nFigure 13: BarnesHut, FFT, HMM\n{header}");
    for name in ["BarnesHut", "FFT", "HMM"] {
        let b = by_name(name);
        let series = speedup_series(b.as_ref(), |w| b.best_probe(w));
        let _ = writeln!(out, "{}", series_row(name, &series));
    }
    out
}

/// Renders the iterative-doubling chunk-factor search (§5) on three
/// representative benchmarks, under their best annotation.
pub fn chunk_tuning() -> String {
    use alter_infer::tune_chunk;
    let mut out = String::new();
    let _ = writeln!(out, "Chunk-factor tuning (iterative doubling, 4 workers)");
    for name in ["Genome", "K-means", "SG3D"] {
        let b = all_benchmarks(Scale::Inference)
            .into_iter()
            .find(|b| b.name_public() == name)
            .expect("registered");
        let (model, reduction) = b.best_config();
        let tuning = tune_chunk(b.as_ref(), model, reduction, 4);
        let curve: Vec<String> = tuning
            .curve
            .iter()
            .map(|(cf, t)| format!("cf{cf}:{t:.0}"))
            .collect();
        let _ = writeln!(
            out,
            "  {name:<10} chosen cf={:<4} curve: {}",
            tuning.best,
            curve.join("  ")
        );
    }
    out
}

/// Renders the §7.2 convergence observations: extra sweeps under
/// StaleReads for Gauss-Seidel, the SG3D max-vs-+ iteration blowup, and
/// Floyd's fixpoint pass count.
pub fn convergence_facts(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Convergence under broken dependences (§7.2)");
    for gs in [GaussSeidel::dense(scale), GaussSeidel::sparse(scale)] {
        let (_, seq_sweeps) = gs.solve_sequential();
        let (_, par_sweeps, _, _) = gs.run(&gs.best_probe(4)).expect("stale GS runs");
        let _ = writeln!(
            out,
            "{}: sweeps sequential {} -> StaleReads {} (paper: 16->17 dense, 20->21 sparse)",
            gs.name_public(),
            seq_sweeps,
            par_sweeps
        );
    }
    let sg = Sg3d::new(scale);
    let mut max_probe = sg.best_probe(4);
    max_probe.reduction = Some(("err".into(), alter_runtime::RedOp::Max));
    let mut add_probe = sg.best_probe(4);
    add_probe.reduction = Some(("err".into(), alter_runtime::RedOp::Add));
    let (_, max_sweeps, _, _) = sg.run(&max_probe).expect("sg3d max runs");
    let (_, add_sweeps, _, _) = sg.run(&add_probe).expect("sg3d + runs");
    let _ = writeln!(
        out,
        "SG3D: sweeps with max {max_sweeps} vs with + {add_sweeps} (paper: 1670 -> 2752 iterations)"
    );
    let fl = alter_workloads::floyd::Floyd::new(scale);
    let (_, passes, _, _) = fl.run(&fl.best_probe(4)).expect("floyd runs");
    let _ = writeln!(
        out,
        "Floyd: relaxation passes to fixpoint under StaleReads: {passes} (sequential: 1 + check)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diluted_speedup_applies_amdahl() {
        let clock = SimClock {
            seq_units: 100.0,
            par_units: 25.0, // 4x on the loop
            ..Default::default()
        };
        assert!((diluted_speedup(&clock, 1.0) - 4.0).abs() < 1e-9);
        // 50% loop weight: total seq = 200, total par = 125 -> 1.6x
        assert!((diluted_speedup(&clock, 0.5) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn figure5_reports_an_input_independent_best() {
        let f = figure5();
        assert!(f.contains("best cf="), "{f}");
    }
}
