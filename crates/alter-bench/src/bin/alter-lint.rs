//! Trace isolation sanitizer + analysis baseline CLI.
//!
//! ```text
//! cargo run -p alter-bench --bin alter-lint -- [workload] [flags]
//! ```
//!
//! With no workload, every Table 2 benchmark is processed. For each one the
//! tool:
//!
//! 1. records a canonical trace of the paper's best configuration with the
//!    opt-in `task_sets` payloads (`ExecParams::record_sets`), and
//! 2. replays it through the isolation sanitizer, re-deriving every
//!    validate/commit verdict from the recorded read/write sets —
//!    deterministic commit order, committed write sets pairwise disjoint
//!    under write-checking policies, conflict attributions exact.
//!
//! Any violation fails the run (non-zero exit), which is how `scripts/ci.sh`
//! uses it as a gate.
//!
//! `--analysis PATH` additionally writes the static analyzer's verdict
//! baseline: per workload, the dependence report, the classifier's
//! must-fail predictions for the three Table 3 models, and the annotation
//! linter's diagnostics for the paper's chosen annotation. The file is a
//! pure function of the sequential replay — no probes run — so it is
//! byte-stable and committed as `ANALYSIS.json`, drift-checked like
//! `BENCH_runtime.json`.

use alter_analyze::{lint, predict, sanitize, AnalyzeConfig, LintTarget, SanitizeConfig};
use alter_infer::{InferConfig, Model};
use alter_runtime::Annotation;
use alter_trace::{Recorder, RingRecorder};
use alter_workloads::{all_benchmarks, Benchmark, Scale};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: alter-lint [workload] [flags]

  workload         lint a single Table 2 workload (default: all twelve)

flags:
  --workers N      worker count for the recorded probe   (default 4)
  --analysis PATH  also write the deterministic analyzer verdict
                   baseline (ANALYSIS.json) to PATH
  --list           list workload names and exit";

/// Sanitizer capacity: canonical traces with `task_sets` payloads are much
/// larger than flight-recorder ones; keep every event.
const LINT_RING_CAPACITY: usize = 1 << 20;

fn find_benchmark(name: &str) -> Option<Box<dyn Benchmark>> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| *c != '-' && *c != '_')
            .flat_map(char::to_lowercase)
            .collect::<String>()
    };
    let want = norm(name);
    all_benchmarks(Scale::Inference)
        .into_iter()
        .find(|b| norm(b.name()) == want)
}

/// Records the workload's best-configuration trace with full set payloads
/// and replays it through the sanitizer. Returns the number of events
/// checked and the violations found. An aborting run (AggloClust's
/// RAW-tracking models, say) is fine — the sanitizer audits the prefix.
fn lint_one(bench: &dyn Benchmark, workers: usize) -> (usize, Vec<String>) {
    let rec = Arc::new(RingRecorder::new(LINT_RING_CAPACITY));
    let mut probe = bench.best_probe(workers);
    probe.record_sets = true;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let run = bench.run_probe(&probe);
    let events = rec.events();
    let mut messages = Vec::new();
    if rec.dropped() > 0 {
        messages.push(format!(
            "ring capacity exceeded: {} event(s) dropped, trace not fully auditable",
            rec.dropped()
        ));
        return (events.len(), messages);
    }
    if let Err(e) = run {
        messages.push(format!("probe aborted ({e}); auditing the trace prefix"));
    }
    let params = probe.model.exec_params(probe.workers, probe.chunk);
    let cfg = SanitizeConfig {
        conflict: params.conflict,
        order: params.order,
    };
    for v in sanitize(&events, &cfg) {
        messages.push(v.to_string());
    }
    (events.len(), messages)
}

/// The classifier's verdict line for one workload at the inference
/// geometry, as committed to `ANALYSIS.json`.
fn analysis_entry(bench: &dyn Benchmark, icfg: &InferConfig) -> String {
    let summary = bench.probe_summary();
    let dep = summary.report();
    let acfg = AnalyzeConfig {
        workers: icfg.workers,
        chunk: icfg.chunk,
        high_conflict_threshold: icfg.high_conflict_threshold,
        budget_words: bench.tracked_budget_words().unwrap_or(icfg.budget_words),
        ..AnalyzeConfig::default()
    };
    let mut verdicts = Vec::new();
    for model in Model::TABLE3 {
        let p = model.exec_params(icfg.workers, icfg.chunk);
        let v = predict(&summary, p.conflict, p.order, &[], &acfg);
        verdicts.push(format!(
            "      \"{}\": \"{}\"",
            model.to_string().to_ascii_lowercase(),
            v.class()
        ));
    }
    let (model, reduction) = bench.best_config();
    let best = match &reduction {
        None => model.to_string(),
        Some((var, op)) => format!("{model} + Reduction({var}, {op})"),
    };
    let target = match model {
        Model::Doall => LintTarget::Doall,
        Model::Tls => LintTarget::Tls,
        Model::OutOfOrder | Model::StaleReads => {
            let ann: Annotation = format!("[{best}]").parse().expect("best config parses");
            LintTarget::Annotated(ann)
        }
    };
    // The baseline stores diagnostic *counts* per (severity, code) — a
    // byte-stable fingerprint of the linter's behaviour that stays small
    // even for workloads with thousands of edges (SSCA2). The full
    // messages are available from the library (`diagnostics_json`).
    let diags = lint(&summary, &target);
    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for d in &diags {
        *counts
            .entry(format!("{}:{}", d.severity.as_str(), d.code))
            .or_insert(0) += 1;
    }
    let count_lines: Vec<String> = counts
        .iter()
        .map(|(k, v)| format!("      \"{k}\": {v}"))
        .collect();
    format!(
        "  {{\n    \"name\": \"{}\",\n    \"dep\": {{\"raw\": {}, \"waw\": {}, \"war\": {}, \"cell\": \"{}\"}},\n    \"verdicts\": {{\n{}\n    }},\n    \"best\": \"[{}]\",\n    \"diagnostics\": {{\n{}\n    }}\n  }}",
        bench.name(),
        dep.raw,
        dep.waw,
        dep.war,
        if dep.any() { "Yes" } else { "No" },
        verdicts.join(",\n"),
        best,
        if count_lines.is_empty() {
            "      \"none\": 0".to_owned()
        } else {
            count_lines.join(",\n")
        }
    )
}

/// Renders the full baseline file: stable key order, trailing newline.
fn analysis_json(benches: &[Box<dyn Benchmark>]) -> String {
    let icfg = InferConfig::default();
    let entries: Vec<String> = benches
        .iter()
        .map(|b| analysis_entry(b.as_ref(), &icfg))
        .collect();
    format!(
        "{{\n\"geometry\": {{\"workers\": {}, \"chunk\": {}}},\n\"workloads\": [\n{}\n]\n}}\n",
        icfg.workers,
        icfg.chunk,
        entries.join(",\n")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for b in all_benchmarks(Scale::Inference) {
            println!("{}", b.name());
        }
        return ExitCode::SUCCESS;
    }

    let mut workload = None;
    let mut workers = 4usize;
    let mut analysis_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: --workers needs a positive integer");
                    return ExitCode::FAILURE;
                };
                workers = v.max(1);
            }
            "--analysis" => {
                let Some(p) = it.next() else {
                    eprintln!("error: --analysis needs a path");
                    return ExitCode::FAILURE;
                };
                analysis_path = Some(p.clone());
            }
            _ if a.starts_with("--") => {
                eprintln!("error: unknown flag {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ if workload.is_none() => workload = Some(a.clone()),
            _ => {
                eprintln!("error: unexpected argument {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let benches: Vec<Box<dyn Benchmark>> = match &workload {
        None => all_benchmarks(Scale::Inference),
        Some(name) => match find_benchmark(name) {
            Some(b) => vec![b],
            None => {
                eprintln!("error: unknown workload `{name}` (try --list)");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut failed = false;
    for b in &benches {
        let (events, messages) = lint_one(b.as_ref(), workers);
        if messages.iter().any(|m| !m.starts_with("probe aborted")) {
            failed = true;
        }
        let status = if messages.is_empty() {
            "clean".to_owned()
        } else {
            format!("{} issue(s)", messages.len())
        };
        println!("{:<12} {:>6} events  {}", b.name(), events, status);
        for m in &messages {
            println!("    {m}");
        }
    }

    if let Some(path) = analysis_path {
        let json = analysis_json(&benches);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("analysis baseline written to {path}");
    }

    if failed {
        eprintln!("alter-lint: isolation violations found");
        return ExitCode::FAILURE;
    }
    println!("alter-lint: all traces clean");
    ExitCode::SUCCESS
}
