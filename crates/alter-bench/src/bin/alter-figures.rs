//! Prints Figures 5-13. `--quick` uses inference-scale inputs.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        alter_workloads::Scale::Inference
    } else {
        alter_workloads::Scale::Paper
    };
    println!("{}", alter_bench::figure5());
    println!("{}", alter_bench::figures(scale));
}
