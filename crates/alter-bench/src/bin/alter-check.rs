//! DPOR schedule-space model checker CLI: records a workload (or loads a
//! `--sets` journal) and verifies its annotation stays sound under every
//! DPOR-representative commit order — including the committed
//! `CHECK.json` baseline that CI keeps under a drift check.
//!
//! ```text
//! cargo run -p alter-bench --bin alter-check -- <command> [args]
//! ```
//!
//! A recorded journal certifies one schedule; `alter-check` quantifies
//! over the schedule *space*: per round it enumerates the alternative
//! commit orders the ticket sequencer could legally have produced, prunes
//! Mazurkiewicz-equivalent ones by access-set commutativity
//! ([`alter_analyze::check`]), and re-runs the isolation sanitizer as the
//! per-schedule oracle. When a schedule is unsound the checker does not
//! just say so: it emits the bisected [`Divergence`] counterexample and,
//! with `--cex`, a pair of standalone journals that `alter-replay diff`
//! renders — machine-checked, replayable evidence.

use alter_analyze::{check_events, CheckConfig, CheckReport, DEFAULT_SCHEDULE_BUDGET};
use alter_infer::{Model, Probe};
use alter_trace::{Event, Journal, JournalHeader, Recorder, RingRecorder};
use alter_workloads::{all_benchmarks, find_benchmark, Benchmark, Scale};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: alter-check <command> [args]

commands:
  check <workload|all> [annotation] [flags]
      run the workload with task-set recording and model-check every
      DPOR-representative commit order per round (exit 1 when any
      schedule is unsound)
        --workers N        worker count (default 4)
        --max-schedules N  per-round representative budget (default 256)
        --json FILE        write the check report as JSON (`all` at the
                           defaults is the committed CHECK.json baseline)
        --cex PREFIX       on unsoundness, write the first counterexample
                           as PREFIX-expected.journal / PREFIX-actual.journal
                           for `alter-replay diff`
  journal <file> [flags]
      model-check an existing trace journal; it must have been recorded
      with `alter-replay record --sets`
        --max-schedules N, --cex PREFIX as above

  annotation: tls | outoforder | stalereads | doall | best  (default best)";

/// Builds the probe a (workload, annotation token, workers) triple names —
/// the same token grammar `alter-replay` stores in journal headers.
fn probe_for(bench: &dyn Benchmark, annotation: &str, workers: usize) -> Option<Probe> {
    if annotation.eq_ignore_ascii_case("best") {
        Some(bench.best_probe(workers))
    } else {
        let model = Model::parse_token(annotation)?;
        Some(Probe::new(model, workers, bench.chunk_factor()))
    }
}

/// The schedule-space config an annotation token names: the conflict
/// policy and commit order its execution model validates under.
fn config_for(annotation: &str, bench: &dyn Benchmark, max_schedules: u64) -> Option<CheckConfig> {
    let model = if annotation.eq_ignore_ascii_case("best") {
        bench.best_probe(1).model
    } else {
        Model::parse_token(annotation)?
    };
    let p = model.exec_params(1, 1);
    Some(CheckConfig {
        conflict: p.conflict,
        order: p.order,
        max_schedules_per_round: max_schedules,
    })
}

/// Runs `probe` with task-set recording and returns the captured events.
fn record_events(bench: &dyn Benchmark, probe: &Probe) -> Vec<Event> {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.record_sets = true;
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    if let Err(e) = bench.run_probe(&probe) {
        // Aborted runs still leave a checkable (truncated) stream.
        eprintln!(
            "note: {} aborted ({e}); checking the partial trace",
            bench.name()
        );
    }
    if rec.dropped() > 0 {
        eprintln!(
            "warning: ring capacity exceeded, {} oldest event(s) dropped — early rounds unchecked",
            rec.dropped()
        );
    }
    rec.events()
}

/// One workload's check outcome.
struct CheckedRun {
    name: String,
    annotation: String,
    workers: usize,
    report: CheckReport,
}

fn print_summary(r: &CheckedRun) {
    let rep = &r.report;
    println!(
        "{} [{}] {} worker(s): {} round(s), {} task(s) — {} naive schedule(s), {} explored, {} pruned, {} reordering(s) flagged{} — {}",
        r.name,
        r.annotation,
        r.workers,
        rep.rounds,
        rep.tasks,
        rep.naive_schedules,
        rep.explored,
        rep.pruned(),
        rep.flagged,
        if rep.budget_hits > 0 {
            format!(" ({} round(s) hit the budget)", rep.budget_hits)
        } else {
            String::new()
        },
        if rep.sound() { "SOUND" } else { "UNSOUND" }
    );
    for u in &rep.unsound {
        println!("  round {}: {}", u.round, u.divergence.render_oneline());
    }
}

/// Packages a counterexample's synthesized streams as standalone journals
/// so `alter-replay diff` bisects and renders the divergence.
fn write_counterexample(r: &CheckedRun, prefix: &str) -> Result<(), String> {
    let Some(u) = r.report.unsound.first() else {
        return Ok(());
    };
    for (side, events) in [("expected", &u.expected), ("actual", &u.actual)] {
        let header = JournalHeader {
            workload: r.name.clone(),
            annotation: r.annotation.clone(),
            workers: r.workers as u32,
            record_sets: true,
            profile_phases: false,
            pipeline_depth: 0,
            shards: 1,
            trace_hash: 0, // recomputed by Journal::new
        };
        let journal = Journal::new(header, events.clone())?;
        let path = format!("{prefix}-{side}.journal");
        std::fs::write(&path, journal.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "counterexample ({side} stream, round {}) written to {path}",
            u.round
        );
    }
    println!("render it with: alter-replay diff {prefix}-expected.journal {prefix}-actual.journal");
    Ok(())
}

/// Renders the deterministic `CHECK.json` document: schema tag, the check
/// geometry, and one row per workload in Table 2 order with the explored /
/// pruned / flagged counters and the soundness verdict. Everything here is
/// a deterministic count — no wall-clock — so the file drift-checks in CI.
fn check_json(workers: usize, max_schedules: u64, runs: &[CheckedRun]) -> String {
    let mut s = String::new();
    s.push_str("{\n\"schema\": \"alter-check-v1\",\n");
    let _ = writeln!(s, "\"workers\": {workers},");
    let _ = writeln!(s, "\"max_schedules_per_round\": {max_schedules},");
    s.push_str("\"workloads\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let rep = &r.report;
        let _ = write!(
            s,
            "{{\"name\": \"{}\", \"annotation\": \"{}\", \"rounds\": {}, \"tasks\": {}, \"naive_schedules\": {}, \"explored\": {}, \"pruned\": {}, \"flagged\": {}, \"budget_hits\": {}, \"sound\": {}",
            r.name,
            r.annotation,
            rep.rounds,
            rep.tasks,
            rep.naive_schedules,
            rep.explored,
            rep.pruned(),
            rep.flagged,
            rep.budget_hits,
            rep.sound()
        );
        s.push_str(if i + 1 < runs.len() { "},\n" } else { "}\n" });
    }
    s.push_str("]\n}\n");
    s
}

struct CheckArgs {
    target: String,
    annotation: String,
    workers: usize,
    max_schedules: u64,
    json: Option<String>,
    cex: Option<String>,
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut target = None;
    let mut annotation = None;
    let mut workers = 4usize;
    let mut max_schedules = DEFAULT_SCHEDULE_BUDGET;
    let mut json = None;
    let mut cex = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or("--workers needs a positive integer")?
                    .max(1);
            }
            "--max-schedules" => {
                max_schedules = it
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--max-schedules needs a positive integer")?
                    .max(1);
            }
            "--json" => json = Some(it.next().ok_or("--json needs a file path")?.clone()),
            "--cex" => cex = Some(it.next().ok_or("--cex needs a path prefix")?.clone()),
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ if target.is_none() => target = Some(a.clone()),
            _ if annotation.is_none() => annotation = Some(a.clone()),
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    Ok(CheckArgs {
        target: target.ok_or("no workload or journal given")?,
        annotation: annotation
            .unwrap_or_else(|| "best".to_owned())
            .to_ascii_lowercase(),
        workers,
        max_schedules,
        json,
        cex,
    })
}

fn check_workload(
    bench: &dyn Benchmark,
    annotation: &str,
    workers: usize,
    max_schedules: u64,
) -> Result<CheckedRun, String> {
    let probe = probe_for(bench, annotation, workers)
        .ok_or(format!("unknown annotation `{annotation}`"))?;
    let cfg = config_for(annotation, bench, max_schedules)
        .ok_or(format!("unknown annotation `{annotation}`"))?;
    let events = record_events(bench, &probe);
    let report = check_events(&events, &cfg)?;
    Ok(CheckedRun {
        name: bench.name().to_owned(),
        annotation: annotation.to_owned(),
        workers,
        report,
    })
}

fn cmd_check(args: &[String]) -> Result<bool, String> {
    let a = parse_check_args(args)?;
    let runs: Vec<CheckedRun> = if a.target.eq_ignore_ascii_case("all") {
        all_benchmarks(Scale::Inference)
            .iter()
            .map(|b| check_workload(b.as_ref(), &a.annotation, a.workers, a.max_schedules))
            .collect::<Result<_, _>>()?
    } else {
        let bench = find_benchmark(&a.target).ok_or(format!("unknown workload `{}`", a.target))?;
        vec![check_workload(
            bench.as_ref(),
            &a.annotation,
            a.workers,
            a.max_schedules,
        )?]
    };
    finish(&runs, a.workers, a.max_schedules, &a)
}

fn cmd_journal(args: &[String]) -> Result<bool, String> {
    let a = parse_check_args(args)?;
    let text =
        std::fs::read_to_string(&a.target).map_err(|e| format!("reading {}: {e}", a.target))?;
    let journal = Journal::from_jsonl(&text).map_err(|e| format!("{}: {e}", a.target))?;
    let h = journal.header();
    if !h.record_sets {
        return Err(format!(
            "{}: journal was recorded without task_sets payloads: re-record with --sets",
            a.target
        ));
    }
    let bench = find_benchmark(&h.workload).ok_or(format!(
        "journal names unknown workload `{}` (registry changed?)",
        h.workload
    ))?;
    let cfg = config_for(&h.annotation, bench.as_ref(), a.max_schedules).ok_or(format!(
        "journal carries unknown annotation `{}`",
        h.annotation
    ))?;
    let report = check_events(journal.events(), &cfg)?;
    let runs = vec![CheckedRun {
        name: h.workload.clone(),
        annotation: h.annotation.clone(),
        workers: h.workers as usize,
        report,
    }];
    finish(&runs, h.workers as usize, a.max_schedules, &a)
}

fn finish(
    runs: &[CheckedRun],
    workers: usize,
    max_schedules: u64,
    a: &CheckArgs,
) -> Result<bool, String> {
    for r in runs {
        print_summary(r);
        if let Some(u) = r.report.unsound.first() {
            print!("{}", u.divergence.render());
        }
    }
    if let Some(prefix) = &a.cex {
        if let Some(r) = runs.iter().find(|r| !r.report.sound()) {
            write_counterexample(r, prefix)?;
        }
    }
    if let Some(path) = &a.json {
        std::fs::write(path, check_json(workers, max_schedules, runs))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("check report written to {path}");
    }
    Ok(runs.iter().all(|r| r.report.sound()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cmd, rest) = (args[0].as_str(), &args[1..]);
    let outcome = match cmd {
        "check" => cmd_check(rest),
        "journal" => cmd_journal(rest),
        _ => Err(format!("unknown command `{cmd}`\n{USAGE}")),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
