//! Prints Table 3, Table 4 and the convergence facts.
fn main() {
    println!("{}", alter_bench::table3());
    println!("{}", alter_bench::table4());
    println!("{}", alter_bench::chunk_tuning());
    println!(
        "{}",
        alter_bench::convergence_facts(alter_workloads::Scale::Inference)
    );
}
