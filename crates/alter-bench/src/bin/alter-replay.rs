//! Deterministic record/replay CLI: packages a workload run as a trace
//! journal, re-executes journals and bisects any divergence to the exact
//! round and event, diffs two journals against each other, and renders the
//! deterministic phase profile — including the committed `PROFILE.json`
//! baseline that CI keeps under a drift check.
//!
//! ```text
//! cargo run -p alter-bench --bin alter-replay -- <command> [args]
//! ```
//!
//! Because engine traces are pure functions of program + annotation, a
//! journal recorded on one machine replays byte-identically on any other;
//! `replay` is therefore a determinism *gate*, not a best-effort check.
//! When the fresh stream forks from the recorded one, the driver does not
//! dump both streams: it binary-searches the round boundaries by cumulative
//! trace-hash prefix and prints a structured diff of the single first
//! divergent event (expected vs. actual payload, access-set delta when the
//! run recorded task sets, and the trace-hash prefix at the fork).
//!
//! Wall-clock profiling is opt-in via the `ALTER_PROFILE_WALL=1`
//! environment variable and is purely informational: seconds appear as an
//! extra report column but never enter journals, trace hashes, or
//! `PROFILE.json`.

use alter_infer::{Model, Probe};
use alter_runtime::replay::{diverge_bisect, ReplayOutcome};
use alter_trace::{
    format_hash, trace_hash, Event, Journal, JournalHeader, Phase, Profile, Recorder, RingRecorder,
    WallProfile, PHASE_COUNT,
};
use alter_workloads::{all_benchmarks, find_benchmark, Benchmark, Scale};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: alter-replay <command> [args]

commands:
  record <workload> [annotation] [flags]
      run the workload with a recorder attached and write a replayable
      trace journal (header line + canonical JSONL event stream)
        --out FILE   journal file (default <workload>.journal)
        --workers N  worker count (default 4)
        --sets       record per-task access sets (task_sets events)
        --profile    record per-round phase_profile cost-unit events
        --pipeline   drive the run with the ticketed pipeline committer
        --pipeline-depth N  committer lookahead (default 4; 1 = barrier)
        --shards N   heap shard count (default 1; rounded up to a power
                     of two, capped at 16 — traces are identical at every
                     count, so this is a perf knob the journal preserves)
  replay <journal>
      re-execute the journal's workload under its recorded configuration
      and verify the fresh event stream is byte-identical; on mismatch,
      bisect to the first divergent round/event and print a structured
      diff (exit 1)
  diff <journal-a> <journal-b>
      bisect two journals against each other (exit 1 when they fork)
  profile <workload|all> [annotation] [flags]
      run with the deterministic phase profiler enabled and print the
      sorted per-phase hotspot table
        --workers N  worker count (default 4)
        --folded     print folded-stack lines (flamegraph input) instead
        --json FILE  write the per-workload profile report as JSON
                     (`all` at the default 4 workers is the committed
                     PROFILE.json baseline)

  annotation: tls | outoforder | stalereads | doall | best  (default best)
  set ALTER_PROFILE_WALL=1 to add an informational wall-clock column to
  profile tables (never written to journals or JSON)";

/// Builds the probe a (workload, annotation token, workers) triple names.
/// The token is stored verbatim in journal headers, so this is the one
/// place that defines how a recorded configuration is reconstructed.
fn probe_for(bench: &dyn Benchmark, annotation: &str, workers: usize) -> Option<Probe> {
    if annotation.eq_ignore_ascii_case("best") {
        Some(bench.best_probe(workers))
    } else {
        let model = Model::parse_token(annotation)?;
        Some(Probe::new(model, workers, bench.chunk_factor()))
    }
}

/// Runs `probe` with a fresh ring recorder and returns the captured events
/// plus the run verdict.
fn record_events(bench: &dyn Benchmark, probe: &Probe) -> (Vec<Event>, Result<(), String>) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let verdict = match bench.run_probe(&probe) {
        Ok(_) => Ok(()),
        Err(e) => Err(e.to_string()),
    };
    if rec.dropped() > 0 {
        eprintln!(
            "warning: ring capacity exceeded, {} oldest event(s) dropped — journal would be unreplayable",
            rec.dropped()
        );
    }
    (rec.events(), verdict)
}

fn wall_requested() -> bool {
    std::env::var("ALTER_PROFILE_WALL").is_ok_and(|v| v == "1")
}

struct RecordArgs {
    workload: String,
    annotation: String,
    out: Option<String>,
    workers: usize,
    sets: bool,
    profile: bool,
    /// 0 = lock-step; n ≥ 1 = pipelined driver with committer lookahead n
    /// (the journal-header encoding, so a recorded run replays under the
    /// exact driver it was captured with).
    pipeline_depth: u32,
    /// Heap shard count (journal-header encoding; 1 = the unsharded heap).
    shards: u32,
}

/// Shared positional/flag parser for `record` and `profile`.
fn parse_run_args(args: &[String]) -> Result<(RecordArgs, bool, Option<String>), String> {
    let mut workload = None;
    let mut annotation = None;
    let mut out = None;
    let mut workers = 4usize;
    let mut sets = false;
    let mut profile = false;
    let mut folded = false;
    let mut json = None;
    let mut pipeline = false;
    let mut pipeline_depth = 4u32;
    let mut shards = 1u32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or("--workers needs a positive integer")?
                    .max(1);
            }
            "--pipeline" => pipeline = true,
            "--pipeline-depth" => {
                pipeline_depth = it
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or("--pipeline-depth needs a positive integer")?
                    .max(1);
                pipeline = true;
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or("--shards needs a positive integer")?
                    .max(1);
            }
            "--out" | "--json" => {
                let v = it.next().ok_or(format!("{a} needs a file path"))?.clone();
                if a == "--out" {
                    out = Some(v);
                } else {
                    json = Some(v);
                }
            }
            "--sets" => sets = true,
            "--profile" => profile = true,
            "--folded" => folded = true,
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ if workload.is_none() => workload = Some(a.clone()),
            _ if annotation.is_none() => annotation = Some(a.clone()),
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    let workload = workload.ok_or("no workload given")?;
    Ok((
        RecordArgs {
            workload,
            annotation: annotation
                .unwrap_or_else(|| "best".to_owned())
                .to_ascii_lowercase(),
            out,
            workers,
            sets,
            profile,
            pipeline_depth: if pipeline { pipeline_depth } else { 0 },
            shards,
        },
        folded,
        json,
    ))
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let (a, _, _) = parse_run_args(args)?;
    let bench = find_benchmark(&a.workload).ok_or(format!("unknown workload `{}`", a.workload))?;
    let mut probe = probe_for(bench.as_ref(), &a.annotation, a.workers)
        .ok_or(format!("unknown annotation `{}`", a.annotation))?;
    probe.record_sets = a.sets;
    probe.profile_phases = a.profile;
    probe.pipelined = a.pipeline_depth > 0;
    probe.pipeline_depth = a.pipeline_depth.max(1) as usize;
    probe.shards = a.shards.max(1) as usize;

    let (events, verdict) = record_events(bench.as_ref(), &probe);
    if let Err(e) = &verdict {
        // Aborted runs still journal (the abort event is terminal), but say so.
        eprintln!("note: recorded run aborted ({e}); journaling the abort trace");
    }
    let header = JournalHeader {
        workload: bench.name().to_owned(),
        annotation: a.annotation.clone(),
        workers: a.workers as u32,
        record_sets: a.sets,
        profile_phases: a.profile,
        pipeline_depth: a.pipeline_depth,
        shards: a.shards,
        trace_hash: 0, // recomputed by Journal::new
    };
    let journal = Journal::new(header, events)?;
    let path = a
        .out
        .unwrap_or_else(|| format!("{}.journal", journal.header().workload));
    std::fs::write(&path, journal.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "recorded {} under [{}], {} worker(s): {} event(s), {} round(s), trace hash {}",
        journal.header().workload,
        probe.describe(),
        a.workers,
        journal.events().len(),
        journal.round_count(),
        format_hash(journal.header().trace_hash)
    );
    println!("journal written to {path}");
    Ok(())
}

/// Re-executes a journal's run and bisects the fresh stream against it.
/// `Ok(None)` means identical; `Ok(Some(diff))` is the rendered divergence.
fn replay_journal(journal: &Journal) -> Result<Option<String>, String> {
    let h = journal.header();
    let bench = find_benchmark(&h.workload).ok_or(format!(
        "journal names unknown workload `{}` (registry changed?)",
        h.workload
    ))?;
    let mut probe = probe_for(bench.as_ref(), &h.annotation, h.workers as usize).ok_or(format!(
        "journal carries unknown annotation `{}`",
        h.annotation
    ))?;
    probe.record_sets = h.record_sets;
    probe.profile_phases = h.profile_phases;
    probe.pipelined = h.pipeline_depth > 0;
    probe.pipeline_depth = h.pipeline_depth.max(1) as usize;
    probe.shards = h.shards.max(1) as usize;
    let (events, _) = record_events(bench.as_ref(), &probe);
    match diverge_bisect(journal.events(), &events) {
        ReplayOutcome::Identical { events, hash } => {
            println!(
                "replay identical: {} under [{}], {} event(s), trace hash {}",
                h.workload,
                h.annotation,
                events,
                format_hash(hash)
            );
            Ok(None)
        }
        ReplayOutcome::Diverged(d) => Ok(Some(d.render())),
    }
}

fn load_journal(path: &str) -> Result<Journal, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Journal::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_replay(args: &[String]) -> Result<bool, String> {
    let [path] = args else {
        return Err("replay takes exactly one journal file".into());
    };
    let journal = load_journal(path)?;
    match replay_journal(&journal)? {
        None => Ok(true),
        Some(diff) => {
            print!("{diff}");
            Ok(false)
        }
    }
}

fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let [a, b] = args else {
        return Err("diff takes exactly two journal files".into());
    };
    let ja = load_journal(a)?;
    let jb = load_journal(b)?;
    match diverge_bisect(ja.events(), jb.events()) {
        ReplayOutcome::Identical { events, hash } => {
            println!(
                "journals identical: {} event(s), trace hash {}",
                events,
                format_hash(hash)
            );
            Ok(true)
        }
        ReplayOutcome::Diverged(d) => {
            print!("{}", d.render());
            Ok(false)
        }
    }
}

/// One workload's phase profile plus the run's trace hash (profiled stream).
struct ProfiledRun {
    name: String,
    annotation: String,
    profile: Profile,
    hash: u64,
    wall: Option<[f64; PHASE_COUNT]>,
}

fn profile_run(
    bench: &dyn Benchmark,
    annotation: &str,
    workers: usize,
) -> Result<ProfiledRun, String> {
    let mut probe = probe_for(bench, annotation, workers)
        .ok_or(format!("unknown annotation `{annotation}`"))?;
    probe.profile_phases = true;
    let wall = wall_requested().then(|| Arc::new(WallProfile::new()));
    probe.wall_profile = wall.clone();
    let (events, verdict) = record_events(bench, &probe);
    if let Err(e) = verdict {
        eprintln!(
            "note: {} aborted ({e}); profiling the partial run",
            bench.name()
        );
    }
    Ok(ProfiledRun {
        name: bench.name().to_owned(),
        annotation: annotation.to_owned(),
        profile: Profile::from_events(&events),
        hash: trace_hash(&events),
        wall: wall.map(|w| w.seconds()),
    })
}

/// Renders the deterministic `PROFILE.json` document: schema tag, worker
/// count, and one object per workload in Table 2 row order with per-phase
/// cost-unit totals. Pure cost units — wall-clock never appears here, which
/// is what makes the file safe to drift-check in CI.
fn profile_json(workers: usize, runs: &[ProfiledRun]) -> String {
    let mut s = String::new();
    s.push_str("{\n\"schema\": \"alter-profile-v1\",\n");
    let _ = writeln!(s, "\"workers\": {workers},");
    s.push_str("\"workloads\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            s,
            "{{\"name\": \"{}\", \"annotation\": \"{}\", \"trace_hash\": \"{}\", \"rounds\": {}, \"total_cost\": {}",
            r.name,
            r.annotation,
            format_hash(r.hash),
            r.profile.rounds(),
            r.profile.total()
        );
        for phase in Phase::ALL {
            let _ = write!(s, ", \"{}\": {}", phase.as_str(), r.profile.cost(phase));
        }
        s.push_str(if i + 1 < runs.len() { "},\n" } else { "}\n" });
    }
    s.push_str("]\n}\n");
    s
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let (a, folded, json) = parse_run_args(args)?;
    let workers = a.workers;
    let runs: Vec<ProfiledRun> = if a.workload.eq_ignore_ascii_case("all") {
        all_benchmarks(Scale::Inference)
            .iter()
            .map(|b| profile_run(b.as_ref(), &a.annotation, workers))
            .collect::<Result<_, _>>()?
    } else {
        let bench =
            find_benchmark(&a.workload).ok_or(format!("unknown workload `{}`", a.workload))?;
        vec![profile_run(bench.as_ref(), &a.annotation, workers)?]
    };

    for r in &runs {
        if folded {
            print!("{}", r.profile.folded(&r.name));
        } else {
            let label = format!("{} [{}] {} worker(s)", r.name, r.annotation, workers);
            print!("{}", r.profile.render(&label, r.wall.as_ref()));
            println!("  trace hash: {}", format_hash(r.hash));
        }
    }
    if let Some(path) = json {
        std::fs::write(&path, profile_json(workers, &runs))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("profile report written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (cmd, rest) = (args[0].as_str(), &args[1..]);
    let outcome = match cmd {
        "record" => cmd_record(rest).map(|()| true),
        "replay" => cmd_replay(rest),
        "diff" => cmd_diff(rest),
        "profile" => cmd_profile(rest).map(|()| true),
        _ => Err(format!("unknown command `{cmd}`\n{USAGE}")),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
