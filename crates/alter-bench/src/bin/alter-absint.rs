//! Static loop-summary baseline CLI.
//!
//! ```text
//! cargo run -p alter-bench --bin alter-absint -- [workload] [flags]
//! ```
//!
//! For each Table 2 workload the tool:
//!
//! 1. interprets the declared [`LoopSpec`] under the interval × stride
//!    domain, producing the symbolic footprints, dependence edges, and
//!    per-model static verdicts, and
//! 2. cross-validates the abstract summary against the workload's dynamic
//!    replay (`probe_summary`), proving `static ⊇ dynamic` per location
//!    and per edge.
//!
//! Any cross-validation violation fails the run (non-zero exit), which is
//! how `scripts/ci.sh` uses it as a gate. `--json PATH` writes the
//! deterministic baseline: per workload, the iteration count, symbolic
//! edge counts by kind, the must/may footprint scalars, and the three
//! Table 3 models' static verdict classes. The file is a pure function of
//! the specs — no probes run — so it is byte-stable and committed as
//! `STATIC.json`, drift-checked like `ANALYSIS.json`.

use alter_analyze::absint::{cross_validate, interpret, static_verdict, LoopSpec, StaticSummary};
use alter_analyze::AnalyzeConfig;
use alter_infer::{InferConfig, Model};
use alter_runtime::DepKind;
use alter_workloads::{all_benchmarks, Benchmark, Scale};
use std::process::ExitCode;

const USAGE: &str = "\
usage: alter-absint [workload] [flags]

  workload     analyze a single Table 2 workload (default: all twelve)

flags:
  --json PATH  also write the deterministic static baseline
               (STATIC.json) to PATH
  --list       list workload names and exit";

fn find_benchmark(name: &str) -> Option<Box<dyn Benchmark>> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| *c != '-' && *c != '_')
            .flat_map(char::to_lowercase)
            .collect::<String>()
    };
    let want = norm(name);
    all_benchmarks(Scale::Inference)
        .into_iter()
        .find(|b| norm(b.name()) == want)
}

/// One workload's spec, summary, and cross-validation violations.
struct Analyzed {
    name: String,
    spec: LoopSpec,
    summary: StaticSummary,
    violations: Vec<String>,
}

fn analyze_one(bench: &dyn Benchmark) -> Option<Analyzed> {
    let spec = bench.loop_spec()?;
    let summary = interpret(&spec);
    let violations = cross_validate(&spec, &summary, &bench.probe_summary());
    Some(Analyzed {
        name: bench.name().to_owned(),
        spec,
        summary,
        violations,
    })
}

fn edge_count(summary: &StaticSummary, kind: DepKind) -> usize {
    summary.edges.iter().filter(|e| e.kind == kind).count()
}

/// The baseline entry for one workload: stable key order, verdicts via
/// `StaticVerdict::class()` at the inference geometry.
fn static_entry(bench: &dyn Benchmark, a: &Analyzed, icfg: &InferConfig) -> String {
    let acfg = AnalyzeConfig {
        workers: icfg.workers,
        chunk: icfg.chunk,
        high_conflict_threshold: icfg.high_conflict_threshold,
        budget_words: bench.tracked_budget_words().unwrap_or(icfg.budget_words),
        ..AnalyzeConfig::default()
    };
    let verdicts: Vec<String> = Model::TABLE3
        .into_iter()
        .map(|model| {
            let p = model.exec_params(icfg.workers, icfg.chunk);
            let v = static_verdict(&a.summary, p.conflict, &acfg);
            format!(
                "      \"{}\": \"{}\"",
                model.to_string().to_ascii_lowercase(),
                v.class()
            )
        })
        .collect();
    format!(
        "  {{\n    \"name\": \"{}\",\n    \"iterations\": {},\n    \"regions\": {},\n    \"edges\": {{\"raw\": {}, \"waw\": {}, \"war\": {}}},\n    \"may_iter_words\": {{\"rw\": {}, \"w\": {}}},\n    \"must_first_words\": {{\"rw\": {}, \"w\": {}}},\n    \"allocates\": {},\n    \"verdicts\": {{\n{}\n    }},\n    \"cross_validation\": \"{}\"\n  }}",
        a.name,
        a.summary.iterations,
        a.spec.regions.len(),
        edge_count(&a.summary, DepKind::Raw),
        edge_count(&a.summary, DepKind::Waw),
        edge_count(&a.summary, DepKind::War),
        a.summary.may_iter_words_rw,
        a.summary.may_iter_words_w,
        a.summary.must_first_words_rw,
        a.summary.must_first_words_w,
        a.summary.allocates,
        verdicts.join(",\n"),
        if a.violations.is_empty() { "ok" } else { "FAIL" }
    )
}

/// Renders the full baseline file: stable key order, trailing newline.
fn static_json(benches: &[Box<dyn Benchmark>], analyzed: &[Analyzed]) -> String {
    let icfg = InferConfig::default();
    let entries: Vec<String> = benches
        .iter()
        .zip(analyzed)
        .map(|(b, a)| static_entry(b.as_ref(), a, &icfg))
        .collect();
    format!(
        "{{\n\"geometry\": {{\"workers\": {}, \"chunk\": {}}},\n\"workloads\": [\n{}\n]\n}}\n",
        icfg.workers,
        icfg.chunk,
        entries.join(",\n")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for b in all_benchmarks(Scale::Inference) {
            println!("{}", b.name());
        }
        return ExitCode::SUCCESS;
    }

    let mut workload = None;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let Some(p) = it.next() else {
                    eprintln!("error: --json needs a path");
                    return ExitCode::FAILURE;
                };
                json_path = Some(p.clone());
            }
            _ if a.starts_with("--") => {
                eprintln!("error: unknown flag {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ if workload.is_none() => workload = Some(a.clone()),
            _ => {
                eprintln!("error: unexpected argument {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let benches: Vec<Box<dyn Benchmark>> = match &workload {
        None => all_benchmarks(Scale::Inference),
        Some(name) => match find_benchmark(name) {
            Some(b) => vec![b],
            None => {
                eprintln!("error: unknown workload `{name}` (try --list)");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut analyzed = Vec::new();
    let mut failed = false;
    for b in &benches {
        let Some(a) = analyze_one(b.as_ref()) else {
            eprintln!("{:<12} no LoopSpec declared", b.name());
            failed = true;
            continue;
        };
        println!(
            "{:<12} {:>8} iters  {:>2} edges  must rw/w {:>6}/{:>6}  {}",
            a.name,
            a.summary.iterations,
            a.summary.edges.len(),
            a.summary.must_first_words_rw,
            a.summary.must_first_words_w,
            if a.violations.is_empty() {
                "static ⊇ dynamic".to_owned()
            } else {
                failed = true;
                format!("{} violation(s)", a.violations.len())
            }
        );
        for v in &a.violations {
            println!("    {v}");
        }
        analyzed.push(a);
    }

    if let Some(path) = json_path {
        if analyzed.len() != benches.len() {
            eprintln!("error: refusing to write {path}: incomplete analysis");
            return ExitCode::FAILURE;
        }
        let json = static_json(&benches, &analyzed);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("static baseline written to {path}");
    }

    if failed {
        eprintln!("alter-absint: cross-validation failed");
        return ExitCode::FAILURE;
    }
    println!("alter-absint: every spec covers its replay");
    ExitCode::SUCCESS
}
