//! Flight-recorder CLI: runs one of the twelve workloads under a chosen
//! annotation with a structured-event recorder attached, then dumps the
//! rendered timeline, the aggregated metrics, and the 64-bit trace hash.
//!
//! ```text
//! cargo run -p alter-bench --bin alter-trace -- <workload> [annotation] [flags]
//! ```
//!
//! The annotation is one of `tls`, `outoforder`, `stalereads`, `doall`, or
//! `best` (the paper's chosen configuration for the workload, including any
//! reduction; the default). Because the engine emits every event from the
//! sequential validate/commit phase with only deterministic payloads, the
//! trace — and therefore the hash — is a replayable fingerprint of the run:
//! `--twice` executes the same probe a second time and verifies the two
//! JSONL transcripts are byte-identical.

use alter_analyze::absint::{interpret, ALLOC_REGION};
use alter_infer::{Model, Probe};
use alter_trace::{
    format_hash, to_jsonl, trace_hash, Event, Metrics, Profile, Recorder, RingRecorder, WallProfile,
};
use alter_workloads::{all_benchmarks, find_benchmark, Benchmark, Scale};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: alter-trace <workload> [annotation] [flags]

  workload     one of the twelve Table 2 workloads (case-insensitive),
               e.g. genome, k-means, agglo-clust; `--list` prints them
  annotation   tls | outoforder | stalereads | doall | best   (default best)

flags:
  --workers N  worker count                       (default 4)
  --chunk N    chunk factor                       (default: tuned cf)
  --jsonl      dump the raw JSONL event stream instead of the timeline
  --twice      run the probe twice and verify byte-identical traces
  --profile    enable the deterministic phase profiler (per-round
               phase_profile events) and print the sorted hotspot table;
               set ALTER_PROFILE_WALL=1 for an informational wall-clock
               column (never part of the trace or its hash)
  --no-fast-validation
               disable the fingerprint validation fast path (A/B runs;
               the trace hash is identical either way)
  --no-incremental-snapshots
               re-clone the whole heap every round instead of patching
               dirty snapshot pages (A/B runs; identical traces)
  --no-worker-pool
               spawn fresh threads each round instead of reusing the
               persistent worker pool (only affects --threaded runs)
  --threaded   drive rounds with real threads instead of the sequential
               simulation (identical traces, different wall-clock)
  --pipeline   drive rounds with the ticketed pipeline committer (implies
               a threaded pool run; identical traces — only the masked
               stall/idle telemetry moves, which is the A/B point)
  --pipeline-depth N
               committer lookahead for --pipeline (default 4; 1 degenerates
               to the lock-step barrier)
  --shards N   heap shard count (default 1; rounded up to a power of two,
               capped at 16 — identical traces at every count, only the
               out-of-band shard counters move)
  --tickets    emit ticket-lifecycle events (ticket_issued /
               ticket_validated / ticket_requeued) into the trace; off by
               default so hashes match previous releases
  --deps       print the workload's dependence summary (per-location
               edges with iteration distances) and its Table 3 Dep cell
               instead of running a probe; with no workload, print the
               Dep column for all twelve
  --list       list workload names and exit";

/// `--deps` for one workload: the full rendered summary, the Dep cell, and
/// the static analyzer's coverage of each observed edge.
fn print_deps(bench: &dyn Benchmark) {
    let summary = bench.probe_summary();
    let dep = summary.report();
    println!("{}: dependence summary", bench.name());
    print!("{}", summary.render());
    println!(
        "Table 3 Dep cell: {}  (RAW {}, WAW {}, WAR {})",
        if dep.any() { "Yes" } else { "No" },
        dep.raw,
        dep.waw,
        dep.war
    );
    let Some(spec) = bench.loop_spec() else {
        println!("static: no LoopSpec declared");
        return;
    };
    let st = interpret(&spec);
    println!();
    println!(
        "static vs dynamic ({} symbolic edge(s) from the LoopSpec):",
        st.edges.len()
    );
    // Each observed edge should be proved by a symbolic one (the
    // `static ⊇ dynamic` contract CI enforces); an uncovered edge means
    // the spec under-declares.
    for e in &summary.edges {
        let status = if st.covers_edge(&spec, e) {
            "proved"
        } else {
            "OBSERVED ONLY (spec under-declares!)"
        };
        println!(
            "  {} obj {:>4} word {:>6} dist [{}, {}]  {status}",
            e.kind.as_str(),
            u64::from(e.obj.index()),
            e.word,
            e.min_dist,
            e.max_dist
        );
    }
    // Symbolic edges nothing dynamic landed on: sound over-approximation.
    for se in &st.edges {
        let observed = summary.edges.iter().any(|e| {
            let region = spec
                .region_of(e.obj)
                .unwrap_or(if spec.is_loop_local(e.obj) {
                    ALLOC_REGION
                } else {
                    usize::MAX - 1
                });
            e.kind == se.kind && region == se.region
        });
        if !observed {
            let region = if se.region == ALLOC_REGION {
                "loop-local allocations"
            } else {
                spec.regions[se.region].name
            };
            println!(
                "  {} region `{region}` dist [{}, {}]  static only",
                se.kind.as_str(),
                se.dist.lo,
                se.dist.hi
            );
        }
    }
}

/// `--deps` with no workload: the paper's Table 3 Dep column, plus how
/// much of each observed edge set the static analyzer proves.
fn print_deps_table() {
    println!("Table 3 Dep column (loop-carried dependences):");
    println!(
        "  {:<12} {:<5} {:<5} {:<5} {:<5} {:<7} static",
        "Benchmark", "Dep", "RAW", "WAW", "WAR", "edges"
    );
    for b in all_benchmarks(Scale::Inference) {
        let summary = b.probe_summary();
        let dep = summary.report();
        let coverage = match b.loop_spec() {
            None => "no spec".to_owned(),
            Some(spec) => {
                let st = interpret(&spec);
                let proved = summary
                    .edges
                    .iter()
                    .filter(|e| st.covers_edge(&spec, e))
                    .count();
                format!("{proved}/{} proved", summary.edges.len())
            }
        };
        println!(
            "  {:<12} {:<5} {:<5} {:<5} {:<5} {:<7} {}",
            b.name(),
            if dep.any() { "Yes" } else { "No" },
            dep.raw,
            dep.waw,
            dep.war,
            summary.edges.len(),
            coverage
        );
    }
}

fn list_workloads() {
    println!("workloads (inference-scale inputs):");
    for b in all_benchmarks(Scale::Inference) {
        let (model, red) = b.best_config();
        let best = match red {
            None => model.to_string(),
            Some((var, op)) => format!("{model} + Reduction({var}, {op})"),
        };
        println!("  {:<12} best: [{best}]  cf={}", b.name(), b.chunk_factor());
    }
}

/// Runs `probe` against `bench` with a fresh ring recorder and returns the
/// captured events, the run verdict line, and the runtime's out-of-band
/// perf counters: the validation fast-path quartet `[fingerprint_hits,
/// fingerprint_rejects, pool_reuses, exact_scan_words]`, the
/// round-overhead trio `[snapshot_slots_copied, snapshot_pages_reused,
/// pool_round_handoffs]`, the pipeline quartet `[tickets_issued,
/// tickets_requeued, committer_stall_units, worker_idle_units]`, then the
/// sharding trio `[shard_validate_words, shard_commit_batches,
/// shard_imbalance_max]` (zeros when the run aborted). The counters travel
/// outside the event stream — traces are byte-identical whichever fast
/// paths and drivers are enabled.
fn record_run(bench: &dyn Benchmark, probe: &Probe) -> (Vec<Event>, String, [u64; 14]) {
    let rec = Arc::new(RingRecorder::default());
    let mut probe = probe.clone();
    probe.recorder = Some(rec.clone() as Arc<dyn Recorder>);
    let mut counters = [0u64; 14];
    let verdict = match bench.run_probe(&probe) {
        Ok(run) => {
            counters = [
                run.stats.fingerprint_hits,
                run.stats.fingerprint_rejects,
                run.stats.pool_reuses,
                run.stats.exact_scan_words,
                run.stats.snapshot_slots_copied,
                run.stats.snapshot_pages_reused,
                run.stats.pool_round_handoffs,
                run.stats.tickets_issued,
                run.stats.tickets_requeued,
                run.stats.committer_stall_units,
                run.stats.worker_idle_units,
                run.stats.shard_validate_words,
                run.stats.shard_commit_batches,
                run.stats.shard_imbalance_max,
            ];
            format!(
                "run: ok  (retry rate {:.3}, {:.1} sequential-work units)",
                run.stats.retry_rate(),
                run.clock.seq_units
            )
        }
        Err(e) => format!("run: aborted ({e})"),
    };
    let events = rec.events();
    if rec.dropped() > 0 {
        eprintln!(
            "warning: ring capacity exceeded, {} oldest event(s) dropped",
            rec.dropped()
        );
    }
    (events, verdict, counters)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        list_workloads();
        return ExitCode::SUCCESS;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mut workload = None;
    let mut annotation = None;
    let mut workers = 4usize;
    let mut chunk = None;
    let mut jsonl = false;
    let mut twice = false;
    let mut profile = false;
    let mut fast_validation = true;
    let mut incremental_snapshots = true;
    let mut worker_pool = true;
    let mut threaded = false;
    let mut pipeline = false;
    let mut pipeline_depth = 4usize;
    let mut shards = 1usize;
    let mut tickets = false;
    let mut deps = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" | "--chunk" | "--pipeline-depth" | "--shards" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: {a} needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if a == "--workers" {
                    workers = v.max(1);
                } else if a == "--chunk" {
                    chunk = Some(v.max(1));
                } else if a == "--shards" {
                    shards = v.max(1);
                } else {
                    pipeline_depth = v.max(1);
                    pipeline = true;
                }
            }
            "--jsonl" => jsonl = true,
            "--twice" => twice = true,
            "--profile" => profile = true,
            "--no-fast-validation" => fast_validation = false,
            "--no-incremental-snapshots" => incremental_snapshots = false,
            "--no-worker-pool" => worker_pool = false,
            "--threaded" => threaded = true,
            "--pipeline" => pipeline = true,
            "--tickets" => tickets = true,
            "--deps" => deps = true,
            _ if a.starts_with("--") => {
                eprintln!("error: unknown flag {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ if workload.is_none() => workload = Some(a.clone()),
            _ if annotation.is_none() => annotation = Some(a.clone()),
            _ => {
                eprintln!("error: unexpected argument {a}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(workload) = workload else {
        if deps {
            print_deps_table();
            return ExitCode::SUCCESS;
        }
        eprintln!("error: no workload given\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(bench) = find_benchmark(&workload) else {
        eprintln!("error: unknown workload `{workload}` (try --list)");
        return ExitCode::FAILURE;
    };
    if deps {
        print_deps(bench.as_ref());
        return ExitCode::SUCCESS;
    }

    let annotation = annotation.unwrap_or_else(|| "best".to_owned());
    let mut probe = if annotation.eq_ignore_ascii_case("best") {
        bench.best_probe(workers)
    } else {
        let Some(model) = Model::parse_token(&annotation) else {
            eprintln!("error: unknown annotation `{annotation}` (tls | outoforder | stalereads | doall | best)");
            return ExitCode::FAILURE;
        };
        Probe::new(model, workers, bench.chunk_factor())
    };
    if let Some(chunk) = chunk {
        probe.chunk = chunk;
    }
    probe.fast_validation = fast_validation;
    probe.incremental_snapshots = incremental_snapshots;
    probe.worker_pool = worker_pool;
    probe.threaded = threaded;
    probe.pipelined = pipeline;
    probe.pipeline_depth = pipeline_depth;
    probe.shards = shards;
    probe.trace_tickets = tickets;
    probe.profile_phases = profile;
    let wall = (profile && std::env::var("ALTER_PROFILE_WALL").is_ok_and(|v| v == "1"))
        .then(|| Arc::new(WallProfile::new()));
    probe.wall_profile = wall.clone();

    let mut notes = Vec::new();
    if !fast_validation {
        notes.push("exact validation");
    }
    if !incremental_snapshots {
        notes.push("full snapshots");
    }
    if threaded {
        notes.push(if worker_pool {
            "threaded, worker pool"
        } else {
            "threaded, scoped spawns"
        });
    }
    let pipeline_note;
    if pipeline {
        pipeline_note = format!("pipelined committer, depth {pipeline_depth}");
        notes.push(&pipeline_note);
    }
    let shard_note;
    if shards > 1 {
        shard_note = format!("sharded heap, {shards} shard(s)");
        notes.push(&shard_note);
    }
    if tickets {
        notes.push("ticket events");
    }
    println!(
        "{} under [{}], {} worker(s), chunk {}{}",
        bench.name(),
        probe.describe(),
        probe.workers,
        probe.chunk,
        if notes.is_empty() {
            String::new()
        } else {
            format!(" ({})", notes.join("; "))
        }
    );
    let (events, verdict, counters) = record_run(bench.as_ref(), &probe);
    println!("{verdict}");
    println!();

    if jsonl {
        print!("{}", to_jsonl(&events));
    } else {
        print!("{}", alter_trace::render_timeline(&events));
    }
    println!();
    let mut metrics = Metrics::from_events(&events);
    metrics.record_validation_counters(counters[0], counters[1], counters[2], counters[3]);
    metrics.record_round_counters(counters[4], counters[5], counters[6]);
    metrics.record_pipeline_counters(counters[7], counters[8], counters[9], counters[10]);
    metrics.record_shard_counters(counters[11], counters[12], counters[13]);
    print!("{}", metrics.render());
    println!();
    if profile {
        // Same aggregation the `alter-replay profile` subcommand uses.
        let secs = wall.as_ref().map(|w| w.seconds());
        print!(
            "{}",
            Profile::from_events(&events).render(bench.name(), secs.as_ref())
        );
        println!();
    }
    let hash = trace_hash(&events);
    println!("trace hash: {}", format_hash(hash));

    if twice {
        let (events2, _, _) = record_run(bench.as_ref(), &probe);
        let identical = to_jsonl(&events) == to_jsonl(&events2);
        let hash2 = trace_hash(&events2);
        println!(
            "second run: {} ({})",
            format_hash(hash2),
            if identical && hash == hash2 {
                "byte-identical trace — deterministic"
            } else {
                "TRACE DIVERGED"
            }
        );
        if !identical || hash != hash2 {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
