//! Strict JSON well-formedness checker for the merged benchmark profiles.
//!
//! ```text
//! cargo run -p alter-bench --bin alter-check-json -- <file>...
//! ```
//!
//! `scripts/bench.sh` assembles `BENCH_runtime.json` by splicing the
//! per-bench summaries together with `printf`/`cat` — a concatenation that
//! silently produces garbage if a bench ever changes its output shape. This
//! checker makes that failure loud: it parses each file with a full
//! recursive-descent JSON grammar (objects, arrays, strings with escapes,
//! numbers including floats and exponents, literals) and exits non-zero
//! with a line/column diagnostic on the first violation. Hand-rolled
//! because the workspace deliberately builds without serde or any other
//! external dependency.

use std::process::ExitCode;

/// Parses `text` as a single JSON value (with nothing but whitespace after
/// it) and returns the first error as `"line L, column C: message"`.
fn check_json(text: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("line {line}, column {col}: {msg}")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{', "'{'")?;
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            self.string()?;
            self.skip_ws();
            self.expect(b':', "':' after object key")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.expect(b'}', "',' or '}' in object");
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[', "'['")?;
        self.skip_ws();
        if self.eat(b']') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.expect(b']', "',' or ']' in array");
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"', "'\"'")?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.err("\\u needs four hex digits"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected a digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        self.eat(b'-');
        // Integer part: a lone 0, or a nonzero digit followed by more.
        if self.eat(b'0') {
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("leading zeros are not allowed"));
            }
        } else {
            self.digits()?;
        }
        if self.eat(b'.') {
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: alter-check-json <file>...");
        eprintln!("exits non-zero if any file is not well-formed JSON");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
            Ok(text) => match check_json(&text) {
                Ok(()) => println!("{path}: valid JSON ({} bytes)", text.len()),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ok = false;
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::check_json;

    #[test]
    fn accepts_the_bench_profile_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            " {\"a\": [1, -2.5, 3e-7, 0.25], \"b\": {\"c\": \"x\"}} ",
            "{\"validation\":\n{\"workers\": 8, \"reduction_x\": 12.75},\n\"phases\":\n[]}",
            "{\"hash\": \"1f2e3d4c5b6a7988\", \"note\": \"a\\\"b\\\\c\\u00e9\"}",
            "[true, false, null, 0, -0.5, 1e9, 1E+2]",
        ] {
            assert_eq!(check_json(ok), Ok(()), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_broken_merges_with_a_location() {
        // The exact failure mode the bench.sh printf-merge can produce:
        // a missing comma between two spliced documents.
        let merged = "{\"validation\":\n{\"workers\": 8}\n\"phases\":\n{}}";
        let err = check_json(merged).unwrap_err();
        assert!(err.starts_with("line 3"), "got: {err}");

        for (bad, why) in [
            ("", "empty input"),
            ("{", "unterminated object"),
            ("{\"a\" 1}", "missing colon"),
            ("{\"a\": 1,}", "trailing comma"),
            ("{a: 1}", "unquoted key"),
            ("[1 2]", "missing comma"),
            ("01", "leading zero"),
            ("1.", "bare decimal point"),
            ("1e", "bare exponent"),
            ("\"abc", "unterminated string"),
            ("\"\\x\"", "bad escape"),
            ("truthy", "trailing junk after literal"),
            ("{} {}", "two top-level values"),
        ] {
            assert!(check_json(bad).is_err(), "should reject ({why}): {bad:?}");
        }
    }
}
