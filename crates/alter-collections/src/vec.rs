//! `AlterVec` — the paper's ALTERVector: a fixed-length array living in the
//! transactional heap, usable from both sequential code and transactions.

use crate::element::Element;
use alter_heap::{Heap, ObjData, ObjId};
use alter_runtime::TxCtx;
use std::marker::PhantomData;

/// A typed fixed-length vector stored as one heap allocation.
///
/// The handle itself is a plain value (`Copy`): it can be captured by loop
/// bodies and shared freely. All data lives in the heap, so transactional
/// accesses are instrumented and isolated exactly like raw object accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlterVec<T> {
    obj: ObjId,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Element> AlterVec<T> {
    /// Allocates a vector of `len` zero/default elements in `heap`.
    pub fn new(heap: &mut Heap, len: usize) -> Self {
        let obj = heap.alloc(ObjData::zeros_i64(len));
        AlterVec {
            obj,
            len,
            _marker: PhantomData,
        }
    }

    /// Allocates a vector holding `items`.
    pub fn from_slice(heap: &mut Heap, items: &[T]) -> Self {
        let words: Vec<i64> = items.iter().map(|v| v.encode()).collect();
        let obj = heap.alloc(ObjData::I64(words));
        AlterVec {
            obj,
            len: items.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying heap allocation.
    pub fn object(&self) -> ObjId {
        self.obj
    }

    /// Reads element `i` inside a transaction.
    pub fn get(&self, ctx: &mut TxCtx<'_>, i: usize) -> T {
        T::decode(ctx.tx.read_i64(self.obj, i))
    }

    /// Writes element `i` inside a transaction.
    pub fn set(&self, ctx: &mut TxCtx<'_>, i: usize, v: T) {
        ctx.tx.write_i64(self.obj, i, v.encode())
    }

    /// Reads the whole vector inside a transaction as one range read (the
    /// paper's induction-variable-range instrumentation).
    pub fn to_vec(&self, ctx: &mut TxCtx<'_>) -> Vec<T> {
        ctx.tx.with_i64s(self.obj, 0, self.len, |s| {
            s.iter().map(|w| T::decode(*w)).collect()
        })
    }

    /// Reads element `i` from sequential code.
    pub fn seq_get(&self, heap: &Heap, i: usize) -> T {
        T::decode(heap.get(self.obj).i64s()[i])
    }

    /// Writes element `i` from sequential code.
    pub fn seq_set(&self, heap: &mut Heap, i: usize, v: T) {
        heap.get_mut(self.obj).i64s_mut()[i] = v.encode();
    }

    /// Copies the whole vector out from sequential code.
    pub fn seq_to_vec(&self, heap: &Heap) -> Vec<T> {
        heap.get(self.obj)
            .i64s()
            .iter()
            .map(|w| T::decode(*w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_runtime::{Driver, ExecParams, LoopBuilder};

    #[test]
    fn sequential_access_roundtrips() {
        let mut heap = Heap::new();
        let v: AlterVec<f64> = AlterVec::from_slice(&mut heap, &[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.seq_get(&heap, 1), 2.0);
        v.seq_set(&mut heap, 1, 9.0);
        assert_eq!(v.seq_to_vec(&heap), vec![1.0, 9.0, 3.0]);
    }

    #[test]
    fn transactional_access_is_isolated_and_instrumented() {
        let mut heap = Heap::new();
        let v: AlterVec<i64> = AlterVec::new(&mut heap, 8);
        let params = ExecParams::new(4, 1);
        let stats = LoopBuilder::new(&params)
            .range(0, 8)
            .run(&mut heap, Driver::sequential(), |ctx, i| {
                v.set(ctx, i as usize, i as i64 * 3);
            })
            .unwrap();
        assert_eq!(stats.retries(), 0, "disjoint element writes never conflict");
        assert_eq!(v.seq_get(&heap, 5), 15);
    }

    #[test]
    fn whole_vector_read_is_one_range() {
        let mut heap = Heap::new();
        let v: AlterVec<f64> = AlterVec::from_slice(&mut heap, &[0.5; 16]);
        let params = ExecParams::new(1, 1);
        let mut p = params.clone();
        p.conflict = alter_runtime::ConflictPolicy::Raw;
        let stats = LoopBuilder::new(&p)
            .range(0, 1)
            .run(&mut heap, Driver::sequential(), |ctx, _| {
                let all = v.to_vec(ctx);
                assert_eq!(all.len(), 16);
            })
            .unwrap();
        assert_eq!(stats.tx_stats.read_ops, 1, "one instrumentation call");
        assert_eq!(stats.tx_stats.read_words, 16);
    }

    #[test]
    fn objid_elements_work() {
        let mut heap = Heap::new();
        let target = heap.alloc(ObjData::scalar_i64(99));
        let v: AlterVec<ObjId> = AlterVec::from_slice(&mut heap, &[target]);
        assert_eq!(heap.get(v.seq_get(&heap, 0)).i64s()[0], 99);
    }
}
