//! `AlterList` — the paper's ALTERList: a doubly linked list whose nodes
//! are heap allocations, so that iterating over it inside a parallel loop
//! behaves like iterating over an induction variable (§4.1).
//!
//! The key operation is [`AlterList::node_ids`]: capturing the node
//! sequence from the committed state *before* the loop turns the list
//! cursor into a plain iteration space, which is exactly how the paper's
//! collection classes let loops over linked structures be parallelized
//! (AggloClust, BarnesHut). Concurrent structural mutations (removals,
//! insertions) are ordinary instrumented writes to node objects, so they
//! conflict — and retry — precisely when two iterations touch adjacent
//! nodes.

use crate::element::Element;
use alter_heap::{Heap, ObjData, ObjId};
use alter_runtime::TxCtx;
use std::marker::PhantomData;

const NIL: i64 = -1;

// Node layout: [0] = encoded value, [1] = next id, [2] = prev id.
const VAL: usize = 0;
const NEXT: usize = 1;
const PREV: usize = 2;

// Sentinel layout: [0] = head id, [1] = tail id.
const HEAD: usize = 0;
const TAIL: usize = 1;

/// A doubly linked list in the transactional heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlterList<T> {
    sentinel: ObjId,
    _marker: PhantomData<T>,
}

impl<T: Element> AlterList<T> {
    /// Creates an empty list.
    pub fn new(heap: &mut Heap) -> Self {
        let sentinel = heap.alloc(ObjData::I64(vec![NIL, NIL]));
        AlterList {
            sentinel,
            _marker: PhantomData,
        }
    }

    /// Builds a list from `items` in order.
    pub fn from_iter(heap: &mut Heap, items: impl IntoIterator<Item = T>) -> Self {
        let list = Self::new(heap);
        for v in items {
            list.push_back(heap, v);
        }
        list
    }

    /// The sentinel allocation (for diagnostics).
    pub fn sentinel(&self) -> ObjId {
        self.sentinel
    }

    // ----- sequential operations -----

    /// Appends `v` (sequential code).
    pub fn push_back(&self, heap: &mut Heap, v: T) -> ObjId {
        let tail = heap.get(self.sentinel).i64s()[TAIL];
        let node = heap.alloc(ObjData::I64(vec![v.encode(), NIL, tail]));
        if tail == NIL {
            heap.get_mut(self.sentinel).i64s_mut()[HEAD] = node.to_i64();
        } else {
            heap.get_mut(ObjId::from_i64(tail)).i64s_mut()[NEXT] = node.to_i64();
        }
        heap.get_mut(self.sentinel).i64s_mut()[TAIL] = node.to_i64();
        node
    }

    /// Captures the node ids in list order from the committed state — the
    /// induction-variable view a parallel loop iterates over (feed this to
    /// [`alter_runtime::SeqSpace`] or `LoopBuilder::items`).
    pub fn node_ids(&self, heap: &Heap) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = heap.get(self.sentinel).i64s()[HEAD];
        while cur != NIL {
            let id = ObjId::from_i64(cur);
            out.push(u64::from(id.index()));
            cur = heap.get(id).i64s()[NEXT];
        }
        out
    }

    /// The values in list order (sequential code).
    pub fn seq_values(&self, heap: &Heap) -> Vec<T> {
        self.node_ids(heap)
            .into_iter()
            .map(|raw| T::decode(heap.get(ObjId::from_index(raw as u32)).i64s()[VAL]))
            .collect()
    }

    /// Number of elements (walks the list; sequential code).
    pub fn len(&self, heap: &Heap) -> usize {
        self.node_ids(heap).len()
    }

    /// Whether the list is empty (sequential code).
    pub fn is_empty(&self, heap: &Heap) -> bool {
        heap.get(self.sentinel).i64s()[HEAD] == NIL
    }

    /// Removes a node from sequential code.
    pub fn seq_remove(&self, heap: &mut Heap, node: ObjId) {
        let words = heap.get(node).i64s().to_vec();
        let (next, prev) = (words[NEXT], words[PREV]);
        if prev == NIL {
            heap.get_mut(self.sentinel).i64s_mut()[HEAD] = next;
        } else {
            heap.get_mut(ObjId::from_i64(prev)).i64s_mut()[NEXT] = next;
        }
        if next == NIL {
            heap.get_mut(self.sentinel).i64s_mut()[TAIL] = prev;
        } else {
            heap.get_mut(ObjId::from_i64(next)).i64s_mut()[PREV] = prev;
        }
        heap.free(node);
    }

    // ----- transactional operations -----

    /// Whether `node` is still live in this transaction's view (an
    /// iteration retried after a concurrent removal should check this and
    /// skip).
    pub fn is_node_live(&self, ctx: &mut TxCtx<'_>, node: ObjId) -> bool {
        ctx.tx.is_live(node)
    }

    /// Reads a node's value inside a transaction.
    pub fn value(&self, ctx: &mut TxCtx<'_>, node: ObjId) -> T {
        T::decode(ctx.tx.read_i64(node, VAL))
    }

    /// Writes a node's value inside a transaction.
    pub fn set_value(&self, ctx: &mut TxCtx<'_>, node: ObjId, v: T) {
        ctx.tx.write_i64(node, VAL, v.encode());
    }

    /// The node after `node` inside a transaction, if any.
    pub fn next(&self, ctx: &mut TxCtx<'_>, node: ObjId) -> Option<ObjId> {
        match ctx.tx.read_i64(node, NEXT) {
            NIL => None,
            id => Some(ObjId::from_i64(id)),
        }
    }

    /// Unlinks and frees `node` inside a transaction. Writes the neighbour
    /// links (and the sentinel when removing an end), so concurrent
    /// removals of adjacent nodes conflict and retry.
    pub fn remove(&self, ctx: &mut TxCtx<'_>, node: ObjId) {
        let next = ctx.tx.read_i64(node, NEXT);
        let prev = ctx.tx.read_i64(node, PREV);
        if prev == NIL {
            ctx.tx.write_i64(self.sentinel, HEAD, next);
        } else {
            ctx.tx.write_i64(ObjId::from_i64(prev), NEXT, next);
        }
        if next == NIL {
            ctx.tx.write_i64(self.sentinel, TAIL, prev);
        } else {
            ctx.tx.write_i64(ObjId::from_i64(next), PREV, prev);
        }
        ctx.tx.free(node);
    }

    /// Inserts `v` after `node` inside a transaction, returning the new
    /// node's id (stable across commit — the ALTER-allocator guarantee).
    pub fn insert_after(&self, ctx: &mut TxCtx<'_>, node: ObjId, v: T) -> ObjId {
        let next = ctx.tx.read_i64(node, NEXT);
        let fresh = ctx
            .tx
            .alloc(ObjData::I64(vec![v.encode(), next, node.to_i64()]));
        ctx.tx.write_i64(node, NEXT, fresh.to_i64());
        if next == NIL {
            ctx.tx.write_i64(self.sentinel, TAIL, fresh.to_i64());
        } else {
            ctx.tx
                .write_i64(ObjId::from_i64(next), PREV, fresh.to_i64());
        }
        fresh
    }

    /// Appends `v` inside a transaction. Tail appends always conflict with
    /// each other (they contend on the sentinel), mirroring the serializing
    /// behaviour of a shared list tail.
    pub fn push_back_tx(&self, ctx: &mut TxCtx<'_>, v: T) -> ObjId {
        match ctx.tx.read_i64(self.sentinel, TAIL) {
            NIL => {
                let fresh = ctx.tx.alloc(ObjData::I64(vec![v.encode(), NIL, NIL]));
                ctx.tx.write_i64(self.sentinel, HEAD, fresh.to_i64());
                ctx.tx.write_i64(self.sentinel, TAIL, fresh.to_i64());
                fresh
            }
            tail => self.insert_after(ctx, ObjId::from_i64(tail), v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_runtime::{ConflictPolicy, Driver, ExecParams, LoopBuilder};

    #[test]
    fn sequential_build_and_walk() {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::from_iter(&mut heap, [10, 20, 30]);
        assert_eq!(list.seq_values(&heap), vec![10, 20, 30]);
        assert_eq!(list.len(&heap), 3);
        assert!(!list.is_empty(&heap));
        assert_eq!(list.node_ids(&heap).len(), 3);
    }

    #[test]
    fn seq_remove_head_middle_tail() {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::from_iter(&mut heap, [1, 2, 3, 4]);
        let ids: Vec<ObjId> = list
            .node_ids(&heap)
            .iter()
            .map(|r| ObjId::from_index(*r as u32))
            .collect();
        list.seq_remove(&mut heap, ids[1]); // middle
        assert_eq!(list.seq_values(&heap), vec![1, 3, 4]);
        list.seq_remove(&mut heap, ids[0]); // head
        assert_eq!(list.seq_values(&heap), vec![3, 4]);
        list.seq_remove(&mut heap, ids[3]); // tail
        assert_eq!(list.seq_values(&heap), vec![3]);
        list.seq_remove(&mut heap, ids[2]);
        assert!(list.is_empty(&heap));
        assert_eq!(list.len(&heap), 0);
    }

    #[test]
    fn parallel_loop_over_list_updates_values() {
        let mut heap = Heap::new();
        let list: AlterList<f64> = AlterList::from_iter(&mut heap, (0..20).map(f64::from));
        let nodes = list.node_ids(&heap);
        let params = ExecParams::new(4, 2);
        let stats = LoopBuilder::new(&params)
            .items(nodes)
            .run(&mut heap, Driver::sequential(), |ctx, raw| {
                let node = ObjId::from_index(raw as u32);
                let v = list.value(ctx, node);
                list.set_value(ctx, node, v * 2.0);
            })
            .unwrap();
        assert_eq!(stats.retries(), 0, "per-node writes are disjoint");
        let expect: Vec<f64> = (0..20).map(|i| f64::from(i) * 2.0).collect();
        assert_eq!(list.seq_values(&heap), expect);
    }

    #[test]
    fn concurrent_adjacent_removals_conflict_and_retry() {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::from_iter(&mut heap, 0..16);
        let nodes = list.node_ids(&heap);
        let mut params = ExecParams::new(4, 1);
        params.conflict = ConflictPolicy::Waw;
        let stats = LoopBuilder::new(&params)
            .items(nodes)
            .run(&mut heap, Driver::sequential(), |ctx, raw| {
                let node = ObjId::from_index(raw as u32);
                if list.is_node_live(ctx, node) {
                    list.remove(ctx, node);
                }
            })
            .unwrap();
        assert!(list.is_empty(&heap), "all nodes eventually removed");
        assert!(stats.retries() > 0, "adjacent removals must conflict");
        assert_eq!(heap.live_objects(), 1, "only the sentinel remains");
    }

    #[test]
    fn transactional_insert_after_links_correctly() {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::from_iter(&mut heap, [1, 3]);
        let nodes = list.node_ids(&heap);
        let params = ExecParams::new(1, 1);
        LoopBuilder::new(&params)
            .items(vec![nodes[0]])
            .run(&mut heap, Driver::sequential(), |ctx, raw| {
                list.insert_after(ctx, ObjId::from_index(raw as u32), 2);
            })
            .unwrap();
        assert_eq!(list.seq_values(&heap), vec![1, 2, 3]);
    }

    #[test]
    fn transactional_push_back_on_empty_and_nonempty() {
        let mut heap = Heap::new();
        let list: AlterList<i64> = AlterList::new(&mut heap);
        let params = ExecParams::new(2, 1);
        LoopBuilder::new(&params)
            .range(0, 5)
            .run(&mut heap, Driver::sequential(), |ctx, i| {
                list.push_back_tx(ctx, i as i64 * 100);
            })
            .unwrap();
        // Tail contention retries preserve every element; commit order is
        // deterministic, so the final order is too.
        let mut vals = list.seq_values(&heap);
        assert_eq!(vals.len(), 5);
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 100, 200, 300, 400]);
    }
}
