//! `AlterHashSet` — a bucketized hash set in the transactional heap.
//!
//! The Genome benchmark's first step deduplicates segments by inserting
//! them into a shared hash set (§7, Table 2). Every insert *reads* a bucket
//! and then *writes* it, so — as the paper observes for Genome and SSCA2 —
//! "all variables that are read in the loop are also written to. Hence it
//! is sufficient to check for WAW conflicts alone", making StaleReads and
//! OutOfOrder equally correct while StaleReads skips read instrumentation.
//!
//! Buckets are separate allocations, so two inserts conflict only when they
//! hash to the same bucket; overflow chains are allocated transactionally
//! through the ALTER-allocator.

use alter_heap::{Heap, ObjData, ObjId};
use alter_runtime::TxCtx;

const NIL: i64 = -1;
// Bucket layout: [0] = count, [1] = overflow bucket id, [2..] = keys.
const COUNT: usize = 0;
const OVERFLOW: usize = 1;
const KEYS: usize = 2;

/// Deterministic 64-bit mix (splitmix64 finalizer).
fn mix(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A hash set of `i64` keys stored in the transactional heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlterHashSet {
    directory: ObjId,
    buckets: usize,
    bucket_cap: usize,
}

impl AlterHashSet {
    /// Creates a set with `buckets` buckets of `bucket_cap` keys each
    /// (rounded up to at least 1; overflow chains extend capacity
    /// dynamically).
    pub fn new(heap: &mut Heap, buckets: usize, bucket_cap: usize) -> Self {
        let buckets = buckets.max(1);
        let bucket_cap = bucket_cap.max(1);
        let ids: Vec<i64> = (0..buckets)
            .map(|_| {
                let mut words = vec![0i64; KEYS + bucket_cap];
                words[OVERFLOW] = NIL;
                heap.alloc(ObjData::I64(words)).to_i64()
            })
            .collect();
        let directory = heap.alloc(ObjData::I64(ids));
        AlterHashSet {
            directory,
            buckets,
            bucket_cap,
        }
    }

    /// Number of top-level buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    /// The directory object mapping bucket index to bucket [`ObjId`]
    /// (immutable after construction; used by static loop specs to
    /// enumerate the bucket allocations).
    pub fn directory(&self) -> ObjId {
        self.directory
    }

    fn bucket_of(&self, key: i64) -> usize {
        (mix(key) % self.buckets as u64) as usize
    }

    /// Inserts `key` inside a transaction; returns `true` if it was new.
    pub fn insert(&self, ctx: &mut TxCtx<'_>, key: i64) -> bool {
        // The directory is immutable after construction: read it without
        // instrumentation cost concerns (it is still tracked under RAW).
        let mut bucket = ObjId::from_i64(ctx.tx.read_i64(self.directory, self.bucket_of(key)));
        loop {
            let cap = ctx.tx.len(bucket) - KEYS;
            let (found, count, overflow) = ctx.tx.with_i64s(bucket, 0, KEYS + cap, |words| {
                let count = words[COUNT] as usize;
                let found = words[KEYS..KEYS + count].contains(&key);
                (found, count, words[OVERFLOW])
            });
            if found {
                return false;
            }
            if count < cap {
                ctx.tx.write_i64(bucket, KEYS + count, key);
                ctx.tx.write_i64(bucket, COUNT, count as i64 + 1);
                return true;
            }
            if overflow == NIL {
                let mut words = vec![0i64; KEYS + cap];
                words[COUNT] = 1;
                words[OVERFLOW] = NIL;
                words[KEYS] = key;
                let fresh = ctx.tx.alloc(ObjData::I64(words));
                ctx.tx.write_i64(bucket, OVERFLOW, fresh.to_i64());
                return true;
            }
            bucket = ObjId::from_i64(overflow);
        }
    }

    /// Whether `key` is present, inside a transaction.
    pub fn contains(&self, ctx: &mut TxCtx<'_>, key: i64) -> bool {
        let mut bucket = ObjId::from_i64(ctx.tx.read_i64(self.directory, self.bucket_of(key)));
        loop {
            let cap = ctx.tx.len(bucket) - KEYS;
            let (found, overflow) = ctx.tx.with_i64s(bucket, 0, KEYS + cap, |words| {
                let count = words[COUNT] as usize;
                (words[KEYS..KEYS + count].contains(&key), words[OVERFLOW])
            });
            if found {
                return true;
            }
            if overflow == NIL {
                return false;
            }
            bucket = ObjId::from_i64(overflow);
        }
    }

    /// Total keys stored (sequential code).
    pub fn seq_len(&self, heap: &Heap) -> usize {
        let mut total = 0;
        for b in 0..self.buckets {
            let mut bucket = ObjId::from_i64(heap.get(self.directory).i64s()[b]);
            loop {
                let words = heap.get(bucket).i64s();
                total += words[COUNT] as usize;
                if words[OVERFLOW] == NIL {
                    break;
                }
                bucket = ObjId::from_i64(words[OVERFLOW]);
            }
        }
        total
    }

    /// All keys in deterministic (bucket, chain, slot) order (sequential
    /// code).
    pub fn seq_keys(&self, heap: &Heap) -> Vec<i64> {
        let mut out = Vec::new();
        for b in 0..self.buckets {
            let mut bucket = ObjId::from_i64(heap.get(self.directory).i64s()[b]);
            loop {
                let words = heap.get(bucket).i64s();
                let count = words[COUNT] as usize;
                out.extend_from_slice(&words[KEYS..KEYS + count]);
                if words[OVERFLOW] == NIL {
                    break;
                }
                bucket = ObjId::from_i64(words[OVERFLOW]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_runtime::{ConflictPolicy, Driver, ExecParams, LoopBuilder};

    fn run_inserts(
        keys: &[i64],
        buckets: usize,
        cap: usize,
        conflict: ConflictPolicy,
    ) -> (Heap, AlterHashSet, alter_runtime::RunStats) {
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, buckets, cap);
        let keys = keys.to_vec();
        let mut params = ExecParams::new(4, 2);
        params.conflict = conflict;
        let stats = LoopBuilder::new(&params)
            .range(0, keys.len() as u64)
            .run(&mut heap, Driver::sequential(), |ctx, i| {
                set.insert(ctx, keys[i as usize]);
            })
            .unwrap();
        (heap, set, stats)
    }

    #[test]
    fn deduplicates_under_waw() {
        let keys: Vec<i64> = (0..50).map(|i| i % 17).collect();
        let (heap, set, _) = run_inserts(&keys, 64, 4, ConflictPolicy::Waw);
        assert_eq!(set.seq_len(&heap), 17);
        let mut got = set.seq_keys(&heap);
        got.sort_unstable();
        assert_eq!(got, (0..17).collect::<Vec<i64>>());
    }

    #[test]
    fn same_result_under_raw_and_waw() {
        // Genome property: every read is followed by a write of the same
        // object, so WAW and RAW agree.
        let keys: Vec<i64> = (0..200).map(|i| (i * 5) % 63).collect();
        let (h1, s1, _) = run_inserts(&keys, 16, 4, ConflictPolicy::Waw);
        let (h2, s2, _) = run_inserts(&keys, 16, 4, ConflictPolicy::Raw);
        let mut k1 = s1.seq_keys(&h1);
        let mut k2 = s2.seq_keys(&h2);
        k1.sort_unstable();
        k2.sort_unstable();
        assert_eq!(k1, k2);
        assert_eq!(s1.seq_len(&h1), 63);
    }

    #[test]
    fn overflow_chains_grow_transactionally() {
        // One bucket, capacity 2: inserting 10 distinct keys must chain.
        let keys: Vec<i64> = (0..10).collect();
        let (heap, set, stats) = run_inserts(&keys, 1, 2, ConflictPolicy::Waw);
        assert_eq!(set.seq_len(&heap), 10);
        assert!(stats.retries() > 0, "single bucket serializes inserts");
        for k in &keys {
            assert!(set.seq_keys(&heap).contains(k));
        }
    }

    #[test]
    fn contains_inside_transaction() {
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, 8, 4);
        let params = ExecParams::new(1, 1);
        LoopBuilder::new(&params)
            .range(0, 1)
            .run(&mut heap, Driver::sequential(), |ctx, _| {
                assert!(!set.contains(ctx, 5));
                assert!(set.insert(ctx, 5));
                assert!(set.contains(ctx, 5));
                assert!(!set.insert(ctx, 5));
            })
            .unwrap();
        assert_eq!(set.seq_len(&heap), 1);
    }

    #[test]
    fn bucket_count_clamped() {
        let mut heap = Heap::new();
        let set = AlterHashSet::new(&mut heap, 0, 0);
        assert_eq!(set.bucket_count(), 1);
    }
}
