//! Element types storable in ALTER collections.

use alter_heap::ObjId;

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for i64 {}
    impl Sealed for alter_heap::ObjId {}
}

/// A value that can live in an ALTER collection. Sealed: the collections
/// encode elements as single 64-bit heap words, so only `f64`, `i64` and
/// [`ObjId`] qualify.
pub trait Element: private::Sealed + Copy {
    /// Encodes the value as one `i64` heap word.
    fn encode(self) -> i64;
    /// Decodes a heap word written by [`Element::encode`].
    fn decode(word: i64) -> Self;
}

impl Element for i64 {
    fn encode(self) -> i64 {
        self
    }
    fn decode(word: i64) -> Self {
        word
    }
}

impl Element for f64 {
    fn encode(self) -> i64 {
        self.to_bits() as i64
    }
    fn decode(word: i64) -> Self {
        f64::from_bits(word as u64)
    }
}

impl Element for ObjId {
    fn encode(self) -> i64 {
        self.to_i64()
    }
    fn decode(word: i64) -> Self {
        ObjId::from_i64(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(i64::decode(42i64.encode()), 42);
        assert_eq!(f64::decode(2.5f64.encode()), 2.5);
        assert_eq!(
            f64::decode((-0.0f64).encode()).to_bits(),
            (-0.0f64).to_bits()
        );
        let id = ObjId::from_index(7);
        assert_eq!(ObjId::decode(id.encode()), id);
        // NaN payloads survive the bit-level encoding.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(f64::decode(nan.encode()).to_bits(), nan.to_bits());
    }
}
