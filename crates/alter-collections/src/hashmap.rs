//! `AlterHashMap` — a bucketized hash map in the transactional heap,
//! generalizing [`crate::AlterHashSet`] to key → value associations.
//!
//! Layout mirrors the set: a fixed directory of bucket allocations, each
//! holding `(key, value)` word pairs plus an overflow link, so two
//! insertions conflict exactly when they hash to the same bucket.

use crate::element::Element;
use alter_heap::{Heap, ObjData, ObjId};
use alter_runtime::TxCtx;
use std::marker::PhantomData;

const NIL: i64 = -1;
// Bucket layout: [0] = count, [1] = overflow bucket id,
// [2..2+2*cap] = interleaved (key, value) pairs.
const COUNT: usize = 0;
const OVERFLOW: usize = 1;
const PAIRS: usize = 2;

/// Deterministic 64-bit mix (splitmix64 finalizer).
fn mix(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A hash map from `i64` keys to [`Element`] values, stored in the
/// transactional heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlterHashMap<V> {
    directory: ObjId,
    buckets: usize,
    bucket_cap: usize,
    _marker: PhantomData<V>,
}

impl<V: Element> AlterHashMap<V> {
    /// Creates a map with `buckets` buckets of `bucket_cap` pairs each
    /// (clamped to at least 1; overflow chains extend capacity).
    pub fn new(heap: &mut Heap, buckets: usize, bucket_cap: usize) -> Self {
        let buckets = buckets.max(1);
        let bucket_cap = bucket_cap.max(1);
        let ids: Vec<i64> = (0..buckets)
            .map(|_| {
                let mut words = vec![0i64; PAIRS + 2 * bucket_cap];
                words[OVERFLOW] = NIL;
                heap.alloc(ObjData::I64(words)).to_i64()
            })
            .collect();
        let directory = heap.alloc(ObjData::I64(ids));
        AlterHashMap {
            directory,
            buckets,
            bucket_cap,
            _marker: PhantomData,
        }
    }

    /// Number of top-level buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    fn bucket_of(&self, key: i64) -> usize {
        (mix(key) % self.buckets as u64) as usize
    }

    /// Inserts or updates `key`, returning the previous value if any.
    pub fn insert(&self, ctx: &mut TxCtx<'_>, key: i64, value: V) -> Option<V> {
        let mut bucket = ObjId::from_i64(ctx.tx.read_i64(self.directory, self.bucket_of(key)));
        loop {
            let cap = (ctx.tx.len(bucket) - PAIRS) / 2;
            let (found, count, overflow) = ctx.tx.with_i64s(bucket, 0, PAIRS + 2 * cap, |w| {
                let count = w[COUNT] as usize;
                let found = (0..count).find(|&s| w[PAIRS + 2 * s] == key);
                (found, count, w[OVERFLOW])
            });
            if let Some(slot) = found {
                let old = V::decode(ctx.tx.read_i64(bucket, PAIRS + 2 * slot + 1));
                ctx.tx
                    .write_i64(bucket, PAIRS + 2 * slot + 1, value.encode());
                return Some(old);
            }
            if count < cap {
                ctx.tx.write_i64(bucket, PAIRS + 2 * count, key);
                ctx.tx
                    .write_i64(bucket, PAIRS + 2 * count + 1, value.encode());
                ctx.tx.write_i64(bucket, COUNT, count as i64 + 1);
                return None;
            }
            if overflow == NIL {
                let mut words = vec![0i64; PAIRS + 2 * cap];
                words[COUNT] = 1;
                words[OVERFLOW] = NIL;
                words[PAIRS] = key;
                words[PAIRS + 1] = value.encode();
                let fresh = ctx.tx.alloc(ObjData::I64(words));
                ctx.tx.write_i64(bucket, OVERFLOW, fresh.to_i64());
                return None;
            }
            bucket = ObjId::from_i64(overflow);
        }
    }

    /// Looks `key` up inside a transaction.
    pub fn get(&self, ctx: &mut TxCtx<'_>, key: i64) -> Option<V> {
        let mut bucket = ObjId::from_i64(ctx.tx.read_i64(self.directory, self.bucket_of(key)));
        loop {
            let cap = (ctx.tx.len(bucket) - PAIRS) / 2;
            let (hit, overflow) = ctx.tx.with_i64s(bucket, 0, PAIRS + 2 * cap, |w| {
                let count = w[COUNT] as usize;
                let hit = (0..count)
                    .find(|&s| w[PAIRS + 2 * s] == key)
                    .map(|s| w[PAIRS + 2 * s + 1]);
                (hit, w[OVERFLOW])
            });
            if let Some(word) = hit {
                return Some(V::decode(word));
            }
            if overflow == NIL {
                return None;
            }
            bucket = ObjId::from_i64(overflow);
        }
    }

    /// Applies `f` to the value under `key`, inserting `default` first if
    /// the key is absent — the transactional upsert every counting loop
    /// wants (e.g. word histograms).
    pub fn update(&self, ctx: &mut TxCtx<'_>, key: i64, default: V, f: impl FnOnce(V) -> V) {
        let cur = self.get(ctx, key).unwrap_or(default);
        self.insert(ctx, key, f(cur));
    }

    /// Number of entries (sequential code).
    pub fn seq_len(&self, heap: &Heap) -> usize {
        let mut total = 0;
        for b in 0..self.buckets {
            let mut bucket = ObjId::from_i64(heap.get(self.directory).i64s()[b]);
            loop {
                let w = heap.get(bucket).i64s();
                total += w[COUNT] as usize;
                if w[OVERFLOW] == NIL {
                    break;
                }
                bucket = ObjId::from_i64(w[OVERFLOW]);
            }
        }
        total
    }

    /// All `(key, value)` pairs in deterministic (bucket, chain, slot)
    /// order (sequential code).
    pub fn seq_pairs(&self, heap: &Heap) -> Vec<(i64, V)> {
        let mut out = Vec::new();
        for b in 0..self.buckets {
            let mut bucket = ObjId::from_i64(heap.get(self.directory).i64s()[b]);
            loop {
                let w = heap.get(bucket).i64s();
                let count = w[COUNT] as usize;
                for s in 0..count {
                    out.push((w[PAIRS + 2 * s], V::decode(w[PAIRS + 2 * s + 1])));
                }
                if w[OVERFLOW] == NIL {
                    break;
                }
                bucket = ObjId::from_i64(w[OVERFLOW]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_runtime::{Driver, ExecParams, LoopBuilder};
    use std::collections::HashMap;

    #[test]
    fn insert_get_update_roundtrip() {
        let mut heap = Heap::new();
        let map: AlterHashMap<f64> = AlterHashMap::new(&mut heap, 8, 2);
        let params = ExecParams::new(1, 1);
        LoopBuilder::new(&params)
            .range(0, 1)
            .run(&mut heap, Driver::sequential(), |ctx, _| {
                assert_eq!(map.get(ctx, 7), None);
                assert_eq!(map.insert(ctx, 7, 1.5), None);
                assert_eq!(map.get(ctx, 7), Some(1.5));
                assert_eq!(map.insert(ctx, 7, 2.5), Some(1.5));
                map.update(ctx, 7, 0.0, |v| v * 2.0);
                map.update(ctx, 9, 10.0, |v| v + 1.0);
                assert_eq!(map.get(ctx, 7), Some(5.0));
                assert_eq!(map.get(ctx, 9), Some(11.0));
            })
            .unwrap();
        assert_eq!(map.seq_len(&heap), 2);
    }

    #[test]
    fn parallel_histogram_matches_std() {
        // A word-count-style loop: every iteration bumps its key's counter.
        let keys: Vec<i64> = (0..160).map(|i| (i * 13) % 23).collect();
        let mut heap = Heap::new();
        let map: AlterHashMap<i64> = AlterHashMap::new(&mut heap, 64, 2);
        let params = ExecParams::new(4, 2);
        let keys2 = keys.clone();
        let stats = LoopBuilder::new(&params)
            .range(0, keys.len() as u64)
            .run(&mut heap, Driver::sequential(), move |ctx, i| {
                map.update(ctx, keys2[i as usize], 0, |c| c + 1);
            })
            .unwrap();
        let mut model: HashMap<i64, i64> = HashMap::new();
        for k in &keys {
            *model.entry(*k).or_insert(0) += 1;
        }
        let got: HashMap<i64, i64> = map.seq_pairs(&heap).into_iter().collect();
        assert_eq!(got, model);
        assert!(stats.retries() > 0, "same-key updates must conflict");
    }

    #[test]
    fn overflow_chains_grow() {
        let mut heap = Heap::new();
        let map: AlterHashMap<i64> = AlterHashMap::new(&mut heap, 1, 1);
        let params = ExecParams::new(1, 8);
        LoopBuilder::new(&params)
            .range(0, 8)
            .run(&mut heap, Driver::sequential(), |ctx, i| {
                map.insert(ctx, i as i64, i as i64 * 100);
            })
            .unwrap();
        assert_eq!(map.seq_len(&heap), 8);
        let mut pairs = map.seq_pairs(&heap);
        pairs.sort_unstable();
        assert_eq!(pairs[3], (3, 300));
        assert_eq!(map.bucket_count(), 1);
    }
}
