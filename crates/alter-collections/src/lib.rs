//! # alter-collections — ALTER collection classes
//!
//! The paper's runtime ships "a library of standard data structures that
//! are commonly iterated over" (§4.1): replacing a plain container with its
//! ALTER equivalent makes the loop's iterator recognizable as an induction
//! variable and makes element accesses instrumented, isolated heap
//! operations. This crate provides:
//!
//! * [`AlterVec`] — ALTERVector: a typed fixed-length array (one heap
//!   allocation);
//! * [`AlterList`] — ALTERList: a doubly linked list whose node sequence
//!   can be captured as an iteration space (used by AggloClust and
//!   BarnesHut in the evaluation);
//! * [`AlterHashSet`] / [`AlterHashMap`] — bucketized hash containers (the
//!   shared structure behind the Genome benchmark).
//!
//! All three "can also safely be used in a sequential program" (§4.1): each
//! offers `seq_*` accessors that work directly on the committed heap.
//!
//! ```
//! use alter_heap::Heap;
//! use alter_collections::AlterList;
//! use alter_runtime::{ExecParams, LoopBuilder, Driver};
//!
//! let mut heap = Heap::new();
//! let list: AlterList<f64> = AlterList::from_iter(&mut heap, (0..10).map(f64::from));
//!
//! // Parallel loop over a linked structure: capture the node ids, then
//! // treat them as the iteration space.
//! let params = ExecParams::new(4, 2);
//! LoopBuilder::new(&params)
//!     .items(list.node_ids(&heap))
//!     .run(&mut heap, Driver::sequential(), |ctx, raw| {
//!         let node = alter_heap::ObjId::from_index(raw as u32);
//!         let v = list.value(ctx, node);
//!         list.set_value(ctx, node, v + 1.0);
//!     })?;
//! assert_eq!(list.seq_values(&heap)[3], 4.0);
//! # Ok::<(), alter_runtime::RunError>(())
//! ```

#![warn(missing_docs)]

mod element;
mod hashmap;
mod hashset;
mod list;
mod vec;

pub use element::Element;
pub use hashmap::AlterHashMap;
pub use hashset::AlterHashSet;
pub use list::AlterList;
pub use vec::AlterVec;
