//! A small FxHash-style hasher, in-repo replacement for the `rustc-hash`
//! crate (the workspace builds fully offline).
//!
//! The algorithm is the classic "Fx" mix used by rustc: fold each input
//! word into the state with a rotate, xor, and multiply by a fixed odd
//! constant. It is not DoS-resistant — which is exactly right here: keys
//! are in-repo `ObjId`s / small integers, and a *seedless* hasher keeps
//! map iteration order a pure function of the insertion sequence, which
//! the determinism guarantee (DESIGN.md §2) relies on.
//!
//! ```
//! use alter_heap::fx::FxHashMap;
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx mixing constant (derived from the golden ratio, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state. Use through [`FxHashMap`] / [`FxHashSet`], or
/// directly as a cheap streaming mixer.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Folds one 64-bit word into the state.
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn hashing_is_deterministic_and_seedless() {
        assert_eq!(hash_of(b"alter"), hash_of(b"alter"));
        assert_ne!(hash_of(b"alter"), hash_of(b"altar"));
        // Unaligned tails reach the state too.
        assert_ne!(hash_of(b"12345678"), hash_of(b"123456789"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&40], 80);
        let s: FxHashSet<u64> = (0..50).collect();
        assert!(s.contains(&49));
        assert!(!s.contains(&50));
    }

    #[test]
    fn integer_writes_match_between_runs() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        a.write_u64(9);
        let mut b = FxHasher::default();
        b.write_u32(7);
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }
}
