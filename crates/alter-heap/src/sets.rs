//! Read and write sets.
//!
//! The runtime library in the paper stores instrumented addresses "in a
//! (local) hash set as well as a (global) array. The hash set allows quick
//! elimination of duplicates, while the global array allows other processes
//! to check for conflicts" (§4.1). We keep the same structure: a
//! deterministic hash map from allocation to a set of word ranges, which
//! doubles as the structure other transactions probe during validation.

use crate::fx::{FxHashMap, FxHasher};
use crate::object::ObjId;
use std::hash::Hasher as _;

/// Words per fingerprint block: accesses are fingerprinted at the
/// granularity of `(allocation, word >> FINGERPRINT_BLOCK_SHIFT)`, so one
/// hash covers a 64-word block. Coarser blocks keep range inserts cheap;
/// the exact merge-scan behind the fingerprint restores word precision.
const FINGERPRINT_BLOCK_SHIFT: u32 = 6;

/// A 128-bit Bloom-style fingerprint of an access set, maintained
/// incrementally on insert (paper §4.1 keeps a hash set *plus* a global
/// array so conflict checks are cheap; this is the analogous cheap
/// pre-filter in front of the exact range scan).
///
/// Each inserted `(ObjId, word-block)` pair sets two bits derived from its
/// deterministic FxHash. The only guarantee is one-sided and that is the
/// point: if two fingerprints share no bit, the underlying sets share no
/// `(allocation, word)` — so [`Fingerprint::may_intersect`] returning
/// `false` proves [`AccessSet::overlaps`] is `false`. False positives
/// merely fall through to the exact scan; verdicts never change.
///
/// ```
/// use alter_heap::{AccessSet, ObjId};
/// let mut a = AccessSet::new();
/// a.insert(ObjId::from_index(1), 0, 8);
/// let mut b = AccessSet::new();
/// b.insert(ObjId::from_index(2), 0, 8);
/// if !a.fingerprint().may_intersect(b.fingerprint()) {
///     assert!(!a.overlaps(&b)); // the rejection is always sound
/// }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fingerprint {
    bits: [u64; 2],
}

impl Fingerprint {
    /// The empty fingerprint (matches the empty set).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one `(allocation, block)` element in.
    #[inline]
    fn insert_block(&mut self, id: ObjId, block: u32) {
        let mut h = FxHasher::default();
        h.write_u32(id.index());
        h.write_u32(block);
        let hash = h.finish();
        // Two independent bit positions in 0..128 from disjoint hash bits.
        let b1 = (hash & 127) as usize;
        let b2 = ((hash >> 7) & 127) as usize;
        self.bits[b1 >> 6] |= 1u64 << (b1 & 63);
        self.bits[b2 >> 6] |= 1u64 << (b2 & 63);
    }

    /// Folds the blocks covered by words `lo..hi` of `id` in.
    #[inline]
    fn insert_range(&mut self, id: ObjId, lo: u32, hi: u32) {
        debug_assert!(lo < hi);
        for block in (lo >> FINGERPRINT_BLOCK_SHIFT)..=((hi - 1) >> FINGERPRINT_BLOCK_SHIFT) {
            self.insert_block(id, block);
        }
    }

    /// Whether the sets behind the two fingerprints *may* share an element.
    /// `false` is a proof of disjointness; `true` says nothing.
    #[inline]
    pub fn may_intersect(self, other: Fingerprint) -> bool {
        (self.bits[0] & other.bits[0]) | (self.bits[1] & other.bits[1]) != 0
    }

    /// Whether no element was ever folded in.
    pub fn is_empty(self) -> bool {
        self.bits == [0, 0]
    }

    /// Resets to the empty fingerprint.
    pub fn clear(&mut self) {
        self.bits = [0, 0];
    }
}

/// A sorted, coalesced set of half-open word ranges within one allocation.
///
/// ```
/// use alter_heap::RangeSet;
/// let mut r = RangeSet::new();
/// r.insert(0, 4);
/// r.insert(4, 8); // coalesces with the previous range
/// assert_eq!(r.range_count(), 1);
/// assert!(r.overlaps_range(6, 7));
/// assert!(!r.contains(8));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Sorted by `lo`, pairwise disjoint and non-adjacent.
    ranges: Vec<(u32, u32)>,
}

impl RangeSet {
    /// Creates an empty range set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `lo..hi`, merging with overlapping or adjacent ranges.
    /// Inserting an empty range is a no-op.
    pub fn insert(&mut self, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        // Fast path: append or extend at the tail (the common access pattern
        // is monotonically increasing indices within a chunk).
        if let Some(last) = self.ranges.last_mut() {
            if lo >= last.0 {
                if lo <= last.1 {
                    last.1 = last.1.max(hi);
                    return;
                }
                self.ranges.push((lo, hi));
                return;
            }
        } else {
            self.ranges.push((lo, hi));
            return;
        }
        // Slow path: general insert with coalescing.
        let start = self.ranges.partition_point(|&(_, h)| h < lo);
        let mut end = start;
        let mut new_lo = lo;
        let mut new_hi = hi;
        while end < self.ranges.len() && self.ranges[end].0 <= new_hi {
            new_lo = new_lo.min(self.ranges[end].0);
            new_hi = new_hi.max(self.ranges[end].1);
            end += 1;
        }
        self.ranges.splice(start..end, [(new_lo, new_hi)]);
    }

    /// Whether any word of `lo..hi` is present.
    pub fn overlaps_range(&self, lo: u32, hi: u32) -> bool {
        if lo >= hi {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, h)| h <= lo);
        i < self.ranges.len() && self.ranges[i].0 < hi
    }

    /// Whether the two sets share any word.
    pub fn overlaps(&self, other: &RangeSet) -> bool {
        let (a, b) = (&self.ranges, &other.ranges);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].1 <= b[j].0 {
                i += 1;
            } else if b[j].1 <= a[i].0 {
                j += 1;
            } else {
                return true;
            }
        }
        false
    }

    /// The lowest word shared by the two sets, if any.
    pub fn first_overlap(&self, other: &RangeSet) -> Option<u32> {
        let (a, b) = (&self.ranges, &other.ranges);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].1 <= b[j].0 {
                i += 1;
            } else if b[j].1 <= a[i].0 {
                j += 1;
            } else {
                return Some(a[i].0.max(b[j].0));
            }
        }
        None
    }

    /// Whether a specific word is present.
    pub fn contains(&self, word: u32) -> bool {
        self.overlaps_range(word, word + 1)
    }

    /// Total number of words covered.
    pub fn words(&self) -> u64 {
        self.ranges.iter().map(|&(l, h)| u64::from(h - l)).sum()
    }

    /// Number of maximal ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Removes all ranges, retaining the backing vector's capacity so a
    /// recycled set (see [`AccessSet::clear`] and the runtime's buffer
    /// pool) inserts without reallocating.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Iterates over the maximal ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().copied()
    }
}

/// A read or write set: for each touched allocation, the set of touched
/// word ranges.
///
/// ```
/// use alter_heap::{AccessSet, ObjId};
/// let (a, b) = (ObjId::from_index(1), ObjId::from_index(2));
/// let mut reads = AccessSet::new();
/// reads.insert(a, 0, 16);
/// let mut writes = AccessSet::new();
/// writes.insert(b, 0, 16); // different allocation: no conflict
/// assert!(!reads.overlaps(&writes));
/// writes.insert(a, 15, 17); // one shared word: conflict
/// assert!(reads.overlaps(&writes));
/// ```
///
/// Iteration order over allocations is only exposed in sorted form
/// ([`AccessSet::iter_sorted`]) so that every consumer of the set is
/// deterministic — determinism is a headline guarantee of the runtime
/// (paper §4.3).
#[derive(Debug, Default)]
pub struct AccessSet {
    map: FxHashMap<ObjId, RangeSet>,
    words: u64,
    /// Bloom-style summary maintained incrementally by [`AccessSet::insert`]
    /// — the O(1) pre-filter in front of the exact merge-scan.
    fp: Fingerprint,
    /// Cleared [`RangeSet`]s recycled by [`AccessSet::clear`]; their backing
    /// vectors keep their capacity and are reused by later inserts.
    spare: Vec<RangeSet>,
}

impl Clone for AccessSet {
    fn clone(&self) -> Self {
        AccessSet {
            map: self.map.clone(),
            words: self.words,
            fp: self.fp,
            // Spare capacity is a recycling detail of the original, not part
            // of the set's value.
            spare: Vec::new(),
        }
    }
}

impl AccessSet {
    /// Creates an empty access set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to words `lo..hi` of `id`.
    pub fn insert(&mut self, id: ObjId, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        self.fp.insert_range(id, lo, hi);
        let spare = &mut self.spare;
        let set = self
            .map
            .entry(id)
            .or_insert_with(|| spare.pop().unwrap_or_default());
        let before = set.words();
        set.insert(lo, hi);
        self.words += set.words() - before;
    }

    /// Records an access to a single word.
    pub fn insert_word(&mut self, id: ObjId, word: u32) {
        self.insert(id, word, word + 1);
    }

    /// Whether this set shares any (allocation, word) with `other`.
    ///
    /// This is the conflict test at the heart of validation: `FULL` compares
    /// reads∪writes against writes, `WAW` writes against writes, `RAW` reads
    /// against writes (paper §4.2).
    pub fn overlaps(&self, other: &AccessSet) -> bool {
        // Probe from the smaller side.
        let (small, big) = if self.map.len() <= other.map.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (id, ranges) in &small.map {
            if let Some(other_ranges) = big.map.get(id) {
                if ranges.overlaps(other_ranges) {
                    return true;
                }
            }
        }
        false
    }

    /// The first `(allocation, word)` shared with `other`, searched in
    /// deterministic order: ascending [`ObjId`], then lowest shared word.
    ///
    /// This is the slow sibling of [`AccessSet::overlaps`] used only on the
    /// conflict path, where validation has already failed and the trace
    /// wants to *name* the dependence that broke (which word, and below,
    /// which committed writer owns it).
    pub fn first_overlap(&self, other: &AccessSet) -> Option<(ObjId, u32)> {
        let mut best: Option<(ObjId, u32)> = None;
        for (id, ranges) in &self.map {
            if best.is_some_and(|(b, _)| b <= *id) {
                continue;
            }
            if let Some(other_ranges) = other.map.get(id) {
                if let Some(word) = ranges.first_overlap(other_ranges) {
                    best = Some((*id, word));
                }
            }
        }
        best
    }

    /// Whether words `lo..hi` of `id` are present.
    pub fn contains_range(&self, id: ObjId, lo: u32, hi: u32) -> bool {
        self.map.get(&id).is_some_and(|r| r.overlaps_range(lo, hi))
    }

    /// The range set recorded for `id`, if any.
    pub fn ranges(&self, id: ObjId) -> Option<&RangeSet> {
        self.map.get(&id)
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &AccessSet) {
        for (id, ranges) in &other.map {
            for (lo, hi) in ranges.iter() {
                self.insert(*id, lo, hi);
            }
        }
    }

    /// Total words covered across all allocations.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Number of distinct allocations touched.
    pub fn objects(&self) -> usize {
        self.map.len()
    }

    /// Total number of maximal ranges across all allocations (each maps to
    /// one instrumentation record).
    pub fn range_count(&self) -> usize {
        self.map.values().map(RangeSet::range_count).sum()
    }

    /// Whether no access has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes all recorded accesses, retaining capacity: the allocation
    /// map keeps its table, and each per-allocation [`RangeSet`] is drained
    /// into a spare list for reuse by later inserts — the `clear()`-style
    /// recycling the cross-round buffer pool relies on.
    pub fn clear(&mut self) {
        for (_, mut ranges) in self.map.drain() {
            ranges.clear();
            self.spare.push(ranges);
        }
        self.words = 0;
        self.fp.clear();
    }

    /// The Bloom-style fingerprint summarizing this set (empty set ⇒ empty
    /// fingerprint).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// O(1) conservative overlap pre-check: `false` proves
    /// [`AccessSet::overlaps`] is `false`; `true` requires the exact scan.
    pub fn may_overlap(&self, other: &AccessSet) -> bool {
        self.fp.may_intersect(other.fp)
    }

    /// Iterates over `(allocation, ranges)` in ascending `ObjId` order.
    pub fn iter_sorted(&self) -> Vec<(ObjId, &RangeSet)> {
        let mut v: Vec<_> = self.map.iter().map(|(id, r)| (*id, r)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ObjId {
        ObjId::from_index(n)
    }

    #[test]
    fn rangeset_coalesces_adjacent_and_overlapping() {
        let mut r = RangeSet::new();
        r.insert(0, 2);
        r.insert(2, 4); // adjacent
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.words(), 4);
        r.insert(10, 12);
        r.insert(1, 11); // bridges both
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.words(), 12);
    }

    #[test]
    fn rangeset_out_of_order_inserts() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(0, 5);
        r.insert(30, 40);
        assert_eq!(r.range_count(), 3);
        assert!(r.contains(0));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(25));
        assert!(r.contains(39));
    }

    #[test]
    fn rangeset_empty_insert_is_noop() {
        let mut r = RangeSet::new();
        r.insert(5, 5);
        assert!(r.is_empty());
        assert!(!r.overlaps_range(0, 100));
    }

    #[test]
    fn rangeset_overlap_tests() {
        let mut a = RangeSet::new();
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = RangeSet::new();
        b.insert(10, 20);
        assert!(!a.overlaps(&b));
        b.insert(29, 35);
        assert!(a.overlaps(&b));
        assert!(a.overlaps_range(5, 6));
        assert!(!a.overlaps_range(10, 20));
    }

    #[test]
    fn accessset_word_accounting() {
        let mut s = AccessSet::new();
        s.insert(id(1), 0, 4);
        s.insert(id(1), 2, 6); // 2 new words
        s.insert_word(id(2), 9);
        assert_eq!(s.words(), 7);
        assert_eq!(s.objects(), 2);
    }

    #[test]
    fn accessset_overlap_requires_same_object_and_range() {
        let mut a = AccessSet::new();
        a.insert(id(1), 0, 4);
        let mut b = AccessSet::new();
        b.insert(id(2), 0, 4);
        assert!(!a.overlaps(&b));
        b.insert(id(1), 4, 8);
        assert!(!a.overlaps(&b));
        b.insert(id(1), 3, 4);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn accessset_union_and_clear() {
        let mut a = AccessSet::new();
        a.insert(id(1), 0, 2);
        let mut b = AccessSet::new();
        b.insert(id(1), 1, 3);
        b.insert(id(3), 0, 1);
        a.union_with(&b);
        assert_eq!(a.words(), 4);
        assert_eq!(a.objects(), 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.words(), 0);
    }

    #[test]
    fn rangeset_first_overlap_finds_lowest_shared_word() {
        let mut a = RangeSet::new();
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = RangeSet::new();
        b.insert(10, 20);
        assert_eq!(a.first_overlap(&b), None);
        b.insert(25, 35);
        assert_eq!(a.first_overlap(&b), Some(25));
        let mut c = RangeSet::new();
        c.insert(5, 6);
        c.insert(22, 23);
        assert_eq!(a.first_overlap(&c), Some(5));
        assert_eq!(c.first_overlap(&a), Some(5));
    }

    #[test]
    fn accessset_first_overlap_is_deterministic_ascending() {
        let mut a = AccessSet::new();
        a.insert(id(7), 0, 4);
        a.insert(id(2), 8, 12);
        let mut b = AccessSet::new();
        b.insert(id(7), 2, 3);
        b.insert(id(2), 10, 11);
        // Both objects overlap; the lowest ObjId (and its lowest shared
        // word) must win regardless of hash-map iteration order.
        assert_eq!(a.first_overlap(&b), Some((id(2), 10)));
        assert_eq!(b.first_overlap(&a), Some((id(2), 10)));
        let empty = AccessSet::new();
        assert_eq!(a.first_overlap(&empty), None);
    }

    #[test]
    fn rangeset_clear_retains_capacity() {
        let mut r = RangeSet::new();
        r.insert(0, 2);
        r.insert(10, 12);
        let cap = r.ranges.capacity();
        assert!(cap >= 2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.ranges.capacity(), cap, "clear must not shrink");
        r.insert(5, 7);
        assert_eq!(r.words(), 2);
    }

    #[test]
    fn accessset_clear_recycles_rangesets_and_resets_fingerprint() {
        let mut s = AccessSet::new();
        s.insert(id(1), 0, 4);
        s.insert(id(2), 8, 16);
        assert!(!s.fingerprint().is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.words(), 0);
        assert!(s.fingerprint().is_empty());
        assert_eq!(s.spare.len(), 2, "cleared range sets are kept for reuse");
        s.insert(id(3), 0, 1);
        assert_eq!(s.spare.len(), 1, "a reused range set left the spare list");
        assert_eq!(s.words(), 1);
    }

    #[test]
    fn fingerprint_reject_implies_no_overlap() {
        // Exhaustive-ish sweep of small disjoint pairs: whenever the
        // fingerprints reject, the exact answer must be "no overlap" —
        // and whenever the sets do overlap, the fingerprints must hit.
        for n in 0..64u32 {
            let mut a = AccessSet::new();
            let mut b = AccessSet::new();
            a.insert(id(n), n, n + 3);
            b.insert(id(n + 1), n, n + 3); // different allocation
            if !a.may_overlap(&b) {
                assert!(!a.overlaps(&b));
            }
            let mut c = AccessSet::new();
            c.insert(id(n), n + 1, n + 2); // genuine overlap with `a`
            assert!(a.overlaps(&c));
            assert!(
                a.may_overlap(&c),
                "a real overlap must never be fingerprint-rejected (n={n})"
            );
        }
    }

    #[test]
    fn fingerprint_survives_clone_and_union() {
        let mut a = AccessSet::new();
        a.insert(id(9), 100, golden());
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut u = AccessSet::new();
        u.union_with(&a);
        assert!(u.may_overlap(&a), "union must carry the donor's blocks");
    }

    fn golden() -> u32 {
        // A multi-block range, exercising the per-block fingerprint loop.
        100 + 3 * 64 + 7
    }

    #[test]
    fn empty_fingerprints_never_intersect() {
        let a = AccessSet::new();
        let mut b = AccessSet::new();
        assert!(!a.may_overlap(&b));
        b.insert(id(1), 0, 1);
        assert!(!a.may_overlap(&b), "empty set intersects nothing");
    }

    #[test]
    fn accessset_iter_sorted_is_ascending() {
        let mut a = AccessSet::new();
        for n in [5u32, 1, 9, 3] {
            a.insert_word(id(n), 0);
        }
        let order: Vec<u32> = a.iter_sorted().iter().map(|(i, _)| i.index()).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }
}
