//! Read and write sets.
//!
//! The runtime library in the paper stores instrumented addresses "in a
//! (local) hash set as well as a (global) array. The hash set allows quick
//! elimination of duplicates, while the global array allows other processes
//! to check for conflicts" (§4.1). We keep the same structure: a
//! deterministic hash map from allocation to a set of word ranges, which
//! doubles as the structure other transactions probe during validation.

use crate::fx::{FxHashMap, FxHasher};
use crate::object::ObjId;
use std::hash::Hasher as _;

/// Words per fingerprint block: accesses are fingerprinted at the
/// granularity of `(allocation, word >> FINGERPRINT_BLOCK_SHIFT)`, so one
/// hash covers a 64-word block. Coarser blocks keep range inserts cheap;
/// the exact merge-scan behind the fingerprint restores word precision.
const FINGERPRINT_BLOCK_SHIFT: u32 = 6;

/// Number of fingerprint lanes an [`AccessSet`] maintains, and therefore the
/// maximum number of heap shards: a lane is the finest shard an access can
/// route to, and a shard at any coarser power-of-two count is a union of
/// lanes. See [`shard_of_id`].
pub const SHARD_LANES: usize = 16;

/// The heap shard `id` routes to, out of `shards` (a power of two, at most
/// [`SHARD_LANES`]). Routing is by *snapshot page* — all ids of one
/// 64-slot page share a shard — interleaved round-robin so consecutive
/// pages land on different shards. This is the one routing function shared
/// by the heap's storage partition and the access sets' lane partition.
#[inline]
pub fn shard_of_id(id: ObjId, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two() && shards <= SHARD_LANES);
    lane_of(id) & (shards - 1)
}

/// The fingerprint lane `id` routes to (its shard at [`SHARD_LANES`] shards).
#[inline]
fn lane_of(id: ObjId) -> usize {
    (id.index() as usize / crate::heap::SNAPSHOT_PAGE_SLOTS) & (SHARD_LANES - 1)
}

/// A 128-bit Bloom-style fingerprint of an access set, maintained
/// incrementally on insert (paper §4.1 keeps a hash set *plus* a global
/// array so conflict checks are cheap; this is the analogous cheap
/// pre-filter in front of the exact range scan).
///
/// Each inserted `(ObjId, word-block)` pair sets two bits derived from its
/// deterministic FxHash. The only guarantee is one-sided and that is the
/// point: if two fingerprints share no bit, the underlying sets share no
/// `(allocation, word)` — so [`Fingerprint::may_intersect`] returning
/// `false` proves [`AccessSet::overlaps`] is `false`. False positives
/// merely fall through to the exact scan; verdicts never change.
///
/// ```
/// use alter_heap::{AccessSet, ObjId};
/// let mut a = AccessSet::new();
/// a.insert(ObjId::from_index(1), 0, 8);
/// let mut b = AccessSet::new();
/// b.insert(ObjId::from_index(2), 0, 8);
/// if !a.fingerprint().may_intersect(b.fingerprint()) {
///     assert!(!a.overlaps(&b)); // the rejection is always sound
/// }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fingerprint {
    bits: [u64; 2],
}

impl Fingerprint {
    /// The empty fingerprint (matches the empty set).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one `(allocation, block)` element in.
    #[inline]
    fn insert_block(&mut self, id: ObjId, block: u32) {
        let mut h = FxHasher::default();
        h.write_u32(id.index());
        h.write_u32(block);
        let hash = h.finish();
        // Two independent bit positions in 0..128 from disjoint hash bits.
        let b1 = (hash & 127) as usize;
        let b2 = ((hash >> 7) & 127) as usize;
        self.bits[b1 >> 6] |= 1u64 << (b1 & 63);
        self.bits[b2 >> 6] |= 1u64 << (b2 & 63);
    }

    /// Folds the blocks covered by words `lo..hi` of `id` in.
    #[inline]
    pub(crate) fn insert_range(&mut self, id: ObjId, lo: u32, hi: u32) {
        debug_assert!(lo < hi);
        for block in (lo >> FINGERPRINT_BLOCK_SHIFT)..=((hi - 1) >> FINGERPRINT_BLOCK_SHIFT) {
            self.insert_block(id, block);
        }
    }

    /// Whether the sets behind the two fingerprints *may* share an element.
    /// `false` is a proof of disjointness; `true` says nothing.
    #[inline]
    pub fn may_intersect(self, other: Fingerprint) -> bool {
        (self.bits[0] & other.bits[0]) | (self.bits[1] & other.bits[1]) != 0
    }

    /// Whether no element was ever folded in.
    pub fn is_empty(self) -> bool {
        self.bits == [0, 0]
    }

    /// Resets to the empty fingerprint.
    pub fn clear(&mut self) {
        self.bits = [0, 0];
    }

    /// Folds every element of `other` in (bitwise OR). The fingerprint of a
    /// union is exactly the OR of the parts' fingerprints, which is what
    /// makes the per-lane decomposition below lossless.
    #[inline]
    pub fn union_with(&mut self, other: Fingerprint) {
        self.bits[0] |= other.bits[0];
        self.bits[1] |= other.bits[1];
    }
}

/// A sorted, coalesced set of half-open word ranges within one allocation.
///
/// ```
/// use alter_heap::RangeSet;
/// let mut r = RangeSet::new();
/// r.insert(0, 4);
/// r.insert(4, 8); // coalesces with the previous range
/// assert_eq!(r.range_count(), 1);
/// assert!(r.overlaps_range(6, 7));
/// assert!(!r.contains(8));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Sorted by `lo`, pairwise disjoint and non-adjacent.
    ranges: Vec<(u32, u32)>,
}

impl RangeSet {
    /// Creates an empty range set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `lo..hi`, merging with overlapping or adjacent ranges.
    /// Inserting an empty range is a no-op.
    pub fn insert(&mut self, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        // Fast path: append or extend at the tail (the common access pattern
        // is monotonically increasing indices within a chunk).
        if let Some(last) = self.ranges.last_mut() {
            if lo >= last.0 {
                if lo <= last.1 {
                    last.1 = last.1.max(hi);
                    return;
                }
                self.ranges.push((lo, hi));
                return;
            }
        } else {
            self.ranges.push((lo, hi));
            return;
        }
        // Slow path: general insert with coalescing.
        let start = self.ranges.partition_point(|&(_, h)| h < lo);
        let mut end = start;
        let mut new_lo = lo;
        let mut new_hi = hi;
        while end < self.ranges.len() && self.ranges[end].0 <= new_hi {
            new_lo = new_lo.min(self.ranges[end].0);
            new_hi = new_hi.max(self.ranges[end].1);
            end += 1;
        }
        self.ranges.splice(start..end, [(new_lo, new_hi)]);
    }

    /// Whether any word of `lo..hi` is present.
    pub fn overlaps_range(&self, lo: u32, hi: u32) -> bool {
        if lo >= hi {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, h)| h <= lo);
        i < self.ranges.len() && self.ranges[i].0 < hi
    }

    /// Whether the two sets share any word.
    pub fn overlaps(&self, other: &RangeSet) -> bool {
        let (a, b) = (&self.ranges, &other.ranges);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].1 <= b[j].0 {
                i += 1;
            } else if b[j].1 <= a[i].0 {
                j += 1;
            } else {
                return true;
            }
        }
        false
    }

    /// The lowest word shared by the two sets, if any.
    pub fn first_overlap(&self, other: &RangeSet) -> Option<u32> {
        let (a, b) = (&self.ranges, &other.ranges);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].1 <= b[j].0 {
                i += 1;
            } else if b[j].1 <= a[i].0 {
                j += 1;
            } else {
                return Some(a[i].0.max(b[j].0));
            }
        }
        None
    }

    /// Whether a specific word is present.
    pub fn contains(&self, word: u32) -> bool {
        self.overlaps_range(word, word + 1)
    }

    /// Total number of words covered.
    pub fn words(&self) -> u64 {
        self.ranges.iter().map(|&(l, h)| u64::from(h - l)).sum()
    }

    /// Number of maximal ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Removes all ranges, retaining the backing vector's capacity so a
    /// recycled set (see [`AccessSet::clear`] and the runtime's buffer
    /// pool) inserts without reallocating.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Iterates over the maximal ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().copied()
    }

    /// Word-block disjointness scan against `other`: walks both sets as
    /// streams of `(64-word block, u64 occupancy mask)` pairs — one lane
    /// comparison per common block instead of one per word — and returns
    /// `(overlap, words_compared)`. The verdict is exact (masks are exact
    /// occupancy, so it always equals [`RangeSet::overlaps`]);
    /// `words_compared` charges each common block the smaller side's
    /// popcount, the work a word-granular probe of that block would not
    /// have been able to skip. Stops at the first overlapping block.
    pub fn block_scan(&self, other: &RangeSet) -> (bool, u64) {
        let mut a = BlockMasks::new(&self.ranges);
        let mut b = BlockMasks::new(&other.ranges);
        let (mut x, mut y) = (a.next(), b.next());
        let mut words = 0u64;
        while let (Some((ab, am)), Some((bb, bm))) = (x, y) {
            match ab.cmp(&bb) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => {
                    words += u64::from(am.count_ones().min(bm.count_ones()));
                    if am & bm != 0 {
                        return (true, words);
                    }
                    x = a.next();
                    y = b.next();
                }
            }
        }
        (false, words)
    }
}

/// Streams a sorted range list as `(block, occupancy mask)` pairs in
/// ascending block order, skipping blocks the set does not touch.
struct BlockMasks<'a> {
    ranges: &'a [(u32, u32)],
    /// First range not yet fully consumed.
    idx: usize,
    /// Next block to emit (valid while `idx < ranges.len()`).
    block: u32,
}

impl<'a> BlockMasks<'a> {
    fn new(ranges: &'a [(u32, u32)]) -> Self {
        let block = ranges.first().map_or(0, |r| r.0 >> FINGERPRINT_BLOCK_SHIFT);
        BlockMasks {
            ranges,
            idx: 0,
            block,
        }
    }
}

impl Iterator for BlockMasks<'_> {
    type Item = (u32, u64);

    fn next(&mut self) -> Option<(u32, u64)> {
        if self.idx >= self.ranges.len() {
            return None;
        }
        let block = self.block;
        let base = u64::from(block) << FINGERPRINT_BLOCK_SHIFT;
        let mut mask = 0u64;
        let mut j = self.idx;
        while j < self.ranges.len() && u64::from(self.ranges[j].0) < base + 64 {
            let (lo, hi) = (u64::from(self.ranges[j].0), u64::from(self.ranges[j].1));
            let s = lo.max(base) - base;
            let e = hi.min(base + 64) - base;
            debug_assert!(s < e, "ranges are non-empty and sorted");
            mask |= if e - s == 64 {
                u64::MAX
            } else {
                ((1u64 << (e - s)) - 1) << s
            };
            if hi > base + 64 {
                break; // range continues into the next block
            }
            j += 1;
        }
        self.idx = j;
        if j < self.ranges.len() {
            self.block = (block + 1).max(self.ranges[j].0 >> FINGERPRINT_BLOCK_SHIFT);
        }
        Some((block, mask))
    }
}

/// A read or write set: for each touched allocation, the set of touched
/// word ranges.
///
/// ```
/// use alter_heap::{AccessSet, ObjId};
/// let (a, b) = (ObjId::from_index(1), ObjId::from_index(2));
/// let mut reads = AccessSet::new();
/// reads.insert(a, 0, 16);
/// let mut writes = AccessSet::new();
/// writes.insert(b, 0, 16); // different allocation: no conflict
/// assert!(!reads.overlaps(&writes));
/// writes.insert(a, 15, 17); // one shared word: conflict
/// assert!(reads.overlaps(&writes));
/// ```
///
/// Iteration order over allocations is only exposed in sorted form
/// ([`AccessSet::iter_sorted`]) so that every consumer of the set is
/// deterministic — determinism is a headline guarantee of the runtime
/// (paper §4.3).
#[derive(Debug, Default)]
pub struct AccessSet {
    map: FxHashMap<ObjId, RangeSet>,
    words: u64,
    /// Bloom-style summary maintained incrementally by [`AccessSet::insert`]
    /// — the O(1) pre-filter in front of the exact merge-scan.
    fp: Fingerprint,
    /// `fp` decomposed by fingerprint lane (= heap shard at the maximum
    /// shard count): every insert sets the same bits in `fp` and in its
    /// lane, so the OR of any lane subset is exactly the fingerprint of the
    /// accesses routing there — [`AccessSet::shard_fingerprint`] reads a
    /// shard's slice without any per-shard map.
    lane_fp: [Fingerprint; SHARD_LANES],
    /// Words recorded per lane (sums to `words`).
    lane_words: [u64; SHARD_LANES],
    /// Cleared [`RangeSet`]s recycled by [`AccessSet::clear`]; their backing
    /// vectors keep their capacity and are reused by later inserts.
    spare: Vec<RangeSet>,
}

impl Clone for AccessSet {
    fn clone(&self) -> Self {
        AccessSet {
            map: self.map.clone(),
            words: self.words,
            fp: self.fp,
            lane_fp: self.lane_fp,
            lane_words: self.lane_words,
            // Spare capacity is a recycling detail of the original, not part
            // of the set's value.
            spare: Vec::new(),
        }
    }
}

impl AccessSet {
    /// Creates an empty access set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to words `lo..hi` of `id`.
    pub fn insert(&mut self, id: ObjId, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        self.fp.insert_range(id, lo, hi);
        let lane = lane_of(id);
        self.lane_fp[lane].insert_range(id, lo, hi);
        let spare = &mut self.spare;
        let set = self
            .map
            .entry(id)
            .or_insert_with(|| spare.pop().unwrap_or_default());
        let before = set.words();
        set.insert(lo, hi);
        let added = set.words() - before;
        self.words += added;
        self.lane_words[lane] += added;
    }

    /// Records an access to a single word.
    pub fn insert_word(&mut self, id: ObjId, word: u32) {
        self.insert(id, word, word + 1);
    }

    /// Whether this set shares any (allocation, word) with `other`.
    ///
    /// This is the conflict test at the heart of validation: `FULL` compares
    /// reads∪writes against writes, `WAW` writes against writes, `RAW` reads
    /// against writes (paper §4.2).
    pub fn overlaps(&self, other: &AccessSet) -> bool {
        // Probe from the smaller side.
        let (small, big) = if self.map.len() <= other.map.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (id, ranges) in &small.map {
            if let Some(other_ranges) = big.map.get(id) {
                if ranges.overlaps(other_ranges) {
                    return true;
                }
            }
        }
        false
    }

    /// The first `(allocation, word)` shared with `other`, searched in
    /// deterministic order: ascending [`ObjId`], then lowest shared word.
    ///
    /// This is the slow sibling of [`AccessSet::overlaps`] used only on the
    /// conflict path, where validation has already failed and the trace
    /// wants to *name* the dependence that broke (which word, and below,
    /// which committed writer owns it).
    pub fn first_overlap(&self, other: &AccessSet) -> Option<(ObjId, u32)> {
        let mut best: Option<(ObjId, u32)> = None;
        for (id, ranges) in &self.map {
            if best.is_some_and(|(b, _)| b <= *id) {
                continue;
            }
            if let Some(other_ranges) = other.map.get(id) {
                if let Some(word) = ranges.first_overlap(other_ranges) {
                    best = Some((*id, word));
                }
            }
        }
        best
    }

    /// Whether words `lo..hi` of `id` are present.
    pub fn contains_range(&self, id: ObjId, lo: u32, hi: u32) -> bool {
        self.map.get(&id).is_some_and(|r| r.overlaps_range(lo, hi))
    }

    /// The range set recorded for `id`, if any.
    pub fn ranges(&self, id: ObjId) -> Option<&RangeSet> {
        self.map.get(&id)
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &AccessSet) {
        for (id, ranges) in &other.map {
            for (lo, hi) in ranges.iter() {
                self.insert(*id, lo, hi);
            }
        }
    }

    /// Total words covered across all allocations.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Number of distinct allocations touched.
    pub fn objects(&self) -> usize {
        self.map.len()
    }

    /// Total number of maximal ranges across all allocations (each maps to
    /// one instrumentation record).
    pub fn range_count(&self) -> usize {
        self.map.values().map(RangeSet::range_count).sum()
    }

    /// Whether no access has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes all recorded accesses, retaining capacity: the allocation
    /// map keeps its table, and each per-allocation [`RangeSet`] is drained
    /// into a spare list for reuse by later inserts — the `clear()`-style
    /// recycling the cross-round buffer pool relies on.
    pub fn clear(&mut self) {
        for (_, mut ranges) in self.map.drain() {
            ranges.clear();
            self.spare.push(ranges);
        }
        self.words = 0;
        self.fp.clear();
        self.lane_fp = [Fingerprint::default(); SHARD_LANES];
        self.lane_words = [0; SHARD_LANES];
    }

    /// The Bloom-style fingerprint summarizing this set (empty set ⇒ empty
    /// fingerprint).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// O(1) conservative overlap pre-check: `false` proves
    /// [`AccessSet::overlaps`] is `false`; `true` requires the exact scan.
    pub fn may_overlap(&self, other: &AccessSet) -> bool {
        self.fp.may_intersect(other.fp)
    }

    /// Iterates over `(allocation, ranges)` in ascending `ObjId` order.
    pub fn iter_sorted(&self) -> Vec<(ObjId, &RangeSet)> {
        let mut v: Vec<_> = self.map.iter().map(|(id, r)| (*id, r)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// The fingerprint of the accesses routing to heap shard `shard` out of
    /// `shards` — the OR of that shard's lanes, read in O([`SHARD_LANES`]).
    /// ORing this over all shards reproduces [`AccessSet::fingerprint`]
    /// exactly, so a per-shard rejection is as sound as the global one.
    pub fn shard_fingerprint(&self, shard: usize, shards: usize) -> Fingerprint {
        debug_assert!(shards.is_power_of_two() && shards <= SHARD_LANES);
        let mut fp = Fingerprint::default();
        let mut lane = shard & (shards - 1);
        while lane < SHARD_LANES {
            fp.union_with(self.lane_fp[lane]);
            lane += shards;
        }
        fp
    }

    /// Words recorded against heap shard `shard` out of `shards` (the
    /// shard's slice of [`AccessSet::words`]).
    pub fn shard_words(&self, shard: usize, shards: usize) -> u64 {
        debug_assert!(shards.is_power_of_two() && shards <= SHARD_LANES);
        let mut words = 0;
        let mut lane = shard & (shards - 1);
        while lane < SHARD_LANES {
            words += self.lane_words[lane];
            lane += shards;
        }
        words
    }

    /// Exact overlap test against `other`, restricted to the accesses
    /// routing to heap shard `shard` out of `shards`, using word-block
    /// scans. Returns `(overlap, words_compared)`; ORing the verdict over
    /// all shards equals [`AccessSet::overlaps`], because two sets share an
    /// `(allocation, word)` exactly when they share one in some shard.
    pub fn shard_block_overlaps(
        &self,
        other: &AccessSet,
        shard: usize,
        shards: usize,
    ) -> (bool, u64) {
        let (small, big) = if self.map.len() <= other.map.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut words = 0;
        for (id, ranges) in &small.map {
            if shard_of_id(*id, shards) != shard {
                continue;
            }
            if let Some(other_ranges) = big.map.get(id) {
                let (hit, compared) = ranges.block_scan(other_ranges);
                words += compared;
                if hit {
                    return (true, words);
                }
            }
        }
        (false, words)
    }

    /// Clones the subset of this set owned by heap shard `shard` out of
    /// `shards`. The shard views of one set partition it: their union (and
    /// the OR of their fingerprints) reproduces the original exactly.
    pub fn shard_view(&self, shard: usize, shards: usize) -> AccessSet {
        let mut out = AccessSet::new();
        for (id, ranges) in self.iter_sorted() {
            if shard_of_id(id, shards) == shard {
                for (lo, hi) in ranges.iter() {
                    out.insert(id, lo, hi);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> ObjId {
        ObjId::from_index(n)
    }

    #[test]
    fn rangeset_coalesces_adjacent_and_overlapping() {
        let mut r = RangeSet::new();
        r.insert(0, 2);
        r.insert(2, 4); // adjacent
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.words(), 4);
        r.insert(10, 12);
        r.insert(1, 11); // bridges both
        assert_eq!(r.range_count(), 1);
        assert_eq!(r.words(), 12);
    }

    #[test]
    fn rangeset_out_of_order_inserts() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(0, 5);
        r.insert(30, 40);
        assert_eq!(r.range_count(), 3);
        assert!(r.contains(0));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(25));
        assert!(r.contains(39));
    }

    #[test]
    fn rangeset_empty_insert_is_noop() {
        let mut r = RangeSet::new();
        r.insert(5, 5);
        assert!(r.is_empty());
        assert!(!r.overlaps_range(0, 100));
    }

    #[test]
    fn rangeset_overlap_tests() {
        let mut a = RangeSet::new();
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = RangeSet::new();
        b.insert(10, 20);
        assert!(!a.overlaps(&b));
        b.insert(29, 35);
        assert!(a.overlaps(&b));
        assert!(a.overlaps_range(5, 6));
        assert!(!a.overlaps_range(10, 20));
    }

    #[test]
    fn accessset_word_accounting() {
        let mut s = AccessSet::new();
        s.insert(id(1), 0, 4);
        s.insert(id(1), 2, 6); // 2 new words
        s.insert_word(id(2), 9);
        assert_eq!(s.words(), 7);
        assert_eq!(s.objects(), 2);
    }

    #[test]
    fn accessset_overlap_requires_same_object_and_range() {
        let mut a = AccessSet::new();
        a.insert(id(1), 0, 4);
        let mut b = AccessSet::new();
        b.insert(id(2), 0, 4);
        assert!(!a.overlaps(&b));
        b.insert(id(1), 4, 8);
        assert!(!a.overlaps(&b));
        b.insert(id(1), 3, 4);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn accessset_union_and_clear() {
        let mut a = AccessSet::new();
        a.insert(id(1), 0, 2);
        let mut b = AccessSet::new();
        b.insert(id(1), 1, 3);
        b.insert(id(3), 0, 1);
        a.union_with(&b);
        assert_eq!(a.words(), 4);
        assert_eq!(a.objects(), 2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.words(), 0);
    }

    #[test]
    fn rangeset_first_overlap_finds_lowest_shared_word() {
        let mut a = RangeSet::new();
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = RangeSet::new();
        b.insert(10, 20);
        assert_eq!(a.first_overlap(&b), None);
        b.insert(25, 35);
        assert_eq!(a.first_overlap(&b), Some(25));
        let mut c = RangeSet::new();
        c.insert(5, 6);
        c.insert(22, 23);
        assert_eq!(a.first_overlap(&c), Some(5));
        assert_eq!(c.first_overlap(&a), Some(5));
    }

    #[test]
    fn accessset_first_overlap_is_deterministic_ascending() {
        let mut a = AccessSet::new();
        a.insert(id(7), 0, 4);
        a.insert(id(2), 8, 12);
        let mut b = AccessSet::new();
        b.insert(id(7), 2, 3);
        b.insert(id(2), 10, 11);
        // Both objects overlap; the lowest ObjId (and its lowest shared
        // word) must win regardless of hash-map iteration order.
        assert_eq!(a.first_overlap(&b), Some((id(2), 10)));
        assert_eq!(b.first_overlap(&a), Some((id(2), 10)));
        let empty = AccessSet::new();
        assert_eq!(a.first_overlap(&empty), None);
    }

    #[test]
    fn rangeset_clear_retains_capacity() {
        let mut r = RangeSet::new();
        r.insert(0, 2);
        r.insert(10, 12);
        let cap = r.ranges.capacity();
        assert!(cap >= 2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.ranges.capacity(), cap, "clear must not shrink");
        r.insert(5, 7);
        assert_eq!(r.words(), 2);
    }

    #[test]
    fn accessset_clear_recycles_rangesets_and_resets_fingerprint() {
        let mut s = AccessSet::new();
        s.insert(id(1), 0, 4);
        s.insert(id(2), 8, 16);
        assert!(!s.fingerprint().is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.words(), 0);
        assert!(s.fingerprint().is_empty());
        assert_eq!(s.spare.len(), 2, "cleared range sets are kept for reuse");
        s.insert(id(3), 0, 1);
        assert_eq!(s.spare.len(), 1, "a reused range set left the spare list");
        assert_eq!(s.words(), 1);
    }

    #[test]
    fn fingerprint_reject_implies_no_overlap() {
        // Exhaustive-ish sweep of small disjoint pairs: whenever the
        // fingerprints reject, the exact answer must be "no overlap" —
        // and whenever the sets do overlap, the fingerprints must hit.
        for n in 0..64u32 {
            let mut a = AccessSet::new();
            let mut b = AccessSet::new();
            a.insert(id(n), n, n + 3);
            b.insert(id(n + 1), n, n + 3); // different allocation
            if !a.may_overlap(&b) {
                assert!(!a.overlaps(&b));
            }
            let mut c = AccessSet::new();
            c.insert(id(n), n + 1, n + 2); // genuine overlap with `a`
            assert!(a.overlaps(&c));
            assert!(
                a.may_overlap(&c),
                "a real overlap must never be fingerprint-rejected (n={n})"
            );
        }
    }

    #[test]
    fn fingerprint_survives_clone_and_union() {
        let mut a = AccessSet::new();
        a.insert(id(9), 100, golden());
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut u = AccessSet::new();
        u.union_with(&a);
        assert!(u.may_overlap(&a), "union must carry the donor's blocks");
    }

    fn golden() -> u32 {
        // A multi-block range, exercising the per-block fingerprint loop.
        100 + 3 * 64 + 7
    }

    #[test]
    fn empty_fingerprints_never_intersect() {
        let a = AccessSet::new();
        let mut b = AccessSet::new();
        assert!(!a.may_overlap(&b));
        b.insert(id(1), 0, 1);
        assert!(!a.may_overlap(&b), "empty set intersects nothing");
    }

    #[test]
    fn accessset_iter_sorted_is_ascending() {
        let mut a = AccessSet::new();
        for n in [5u32, 1, 9, 3] {
            a.insert_word(id(n), 0);
        }
        let order: Vec<u32> = a.iter_sorted().iter().map(|(i, _)| i.index()).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    /// An access set spread over many pages, so every shard count splits it.
    fn spread() -> AccessSet {
        let mut s = AccessSet::new();
        for n in [0u32, 63, 64, 130, 1000, 1025, 2047, 4096] {
            s.insert(id(n), n % 7, n % 7 + 5 + n % 11);
        }
        s.insert(id(130), 200, 270); // multi-block range on an existing id
        s
    }

    #[test]
    fn lane_fingerprints_decompose_the_global_fingerprint() {
        let s = spread();
        for shards in [1usize, 2, 4, 8, 16] {
            let mut fp = Fingerprint::default();
            let mut words = 0;
            for shard in 0..shards {
                fp.union_with(s.shard_fingerprint(shard, shards));
                words += s.shard_words(shard, shards);
            }
            assert_eq!(fp, s.fingerprint(), "{shards} shards: OR of lanes");
            assert_eq!(words, s.words(), "{shards} shards: word slices sum");
        }
        let mut c = s.clone();
        c.clear();
        assert!(c.shard_fingerprint(0, 1).is_empty(), "clear resets lanes");
        assert_eq!(c.shard_words(0, 1), 0);
    }

    #[test]
    fn shard_views_partition_the_set() {
        let s = spread();
        for shards in [1usize, 2, 4, 16] {
            let mut union = AccessSet::new();
            let mut words = 0;
            for shard in 0..shards {
                let view = s.shard_view(shard, shards);
                assert_eq!(view.words(), s.shard_words(shard, shards));
                for (vid, _) in view.iter_sorted() {
                    assert_eq!(shard_of_id(vid, shards), shard);
                }
                words += view.words();
                union.union_with(&view);
            }
            assert_eq!(words, s.words(), "{shards} shards: views are disjoint");
            assert_eq!(
                union.iter_sorted(),
                s.iter_sorted(),
                "{shards} shards: views reassemble the set"
            );
            assert_eq!(union.fingerprint(), s.fingerprint());
        }
    }

    #[test]
    fn block_scan_verdicts_match_exact_overlap() {
        type Ranges = &'static [(u32, u32)];
        let cases: &[(Ranges, Ranges)] = &[
            (&[(0, 10)], &[(10, 20)]),            // touching, disjoint
            (&[(0, 10)], &[(9, 12)]),             // overlap in block 0
            (&[(0, 64)], &[(64, 128)]),           // block-aligned, disjoint
            (&[(0, 200)], &[(120, 130)]),         // long range spans blocks
            (&[(5, 6), (700, 710)], &[(6, 700)]), // interleaved, disjoint
            (&[(5, 6), (700, 710)], &[(6, 701)]), // grazes the second range
            (&[], &[(0, 4)]),                     // empty side
            (&[(63, 65)], &[(64, 66)]),           // straddles a block seam
            (&[(63, 64)], &[(64, 66)]),           // disjoint across the seam
        ];
        for (i, (aw, bw)) in cases.iter().enumerate() {
            let mut a = RangeSet::new();
            let mut b = RangeSet::new();
            for &(l, h) in *aw {
                a.insert(l, h);
            }
            for &(l, h) in *bw {
                b.insert(l, h);
            }
            let (hit, words) = a.block_scan(&b);
            assert_eq!(hit, a.overlaps(&b), "case {i}: verdicts must agree");
            assert_eq!(hit, b.block_scan(&a).0, "case {i}: symmetric verdict");
            assert!(
                words <= a.words().min(b.words()),
                "case {i}: block accounting never exceeds the smaller side"
            );
        }
    }

    #[test]
    fn shard_block_overlaps_reassembles_the_global_verdict() {
        let a = spread();
        let mut b = AccessSet::new();
        b.insert(id(1000), 900, 910); // no shared words with `a`
        b.insert(id(64), 0, 3);
        for shards in [1usize, 4, 16] {
            let mut any = false;
            for shard in 0..shards {
                any |= a.shard_block_overlaps(&b, shard, shards).0;
            }
            assert_eq!(any, a.overlaps(&b), "{shards} shards");
        }
        // Remove the overlap: every shard must report disjoint.
        let mut c = AccessSet::new();
        c.insert(id(1000), 900, 910);
        for shard in 0..16 {
            let (hit, _) = a.shard_block_overlaps(&c, shard, 16);
            assert!(!hit);
        }
    }
}
