//! Cross-round transaction buffer recycling.
//!
//! Every lock-step round builds one [`Tx`](crate::Tx) per task, and each
//! `Tx` owns three allocation-heavy structures: the copy-on-write overlay
//! map, the read set, and the write set. Rebuilding them from scratch every
//! round puts the allocator on the engine's critical path; the paper's
//! runtime avoids the equivalent cost by re-establishing copy-on-write
//! mappings instead of copying (§4.1). [`TxBufferPool`] is the analogue
//! here: finished transactions return their emptied containers to the pool
//! (capacity retained — see [`AccessSet::clear`]), and the next round's
//! transactions start from recycled ones.
//!
//! The pool lives on the coordinating thread and is only touched between
//! rounds, so it needs no synchronization and cannot perturb determinism:
//! buffer *capacity* is the only thing recycled, never contents.

use crate::fx::FxHashMap;
use crate::object::{ObjData, ObjId};
use crate::sets::AccessSet;

/// The recyclable allocations backing one transaction: overlay map, read
/// set, and write set. Acquired from a [`TxBufferPool`] before a task runs
/// and released (emptied, capacity retained) after its effects are
/// consumed.
#[derive(Debug, Default)]
pub struct TxBuffers {
    /// Copy-on-write overlay storage.
    pub overlay: FxHashMap<ObjId, ObjData>,
    /// Read-set storage.
    pub reads: AccessSet,
    /// Write-set storage.
    pub writes: AccessSet,
}

impl TxBuffers {
    /// Fresh, empty buffers (used when the pool is dry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties all three containers, retaining their capacity.
    fn reset(&mut self) {
        self.overlay.clear();
        self.reads.clear();
        self.writes.clear();
    }
}

/// A free list of [`TxBuffers`] plus spare [`AccessSet`]s (for the
/// engine's per-round committed write-set log), with a reuse counter that
/// surfaces as `RunStats::pool_reuses`.
#[derive(Debug, Default)]
pub struct TxBufferPool {
    free: Vec<TxBuffers>,
    spare_sets: Vec<AccessSet>,
    reuses: u64,
}

impl TxBufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out buffers: recycled if available, freshly allocated
    /// otherwise.
    pub fn acquire(&mut self) -> TxBuffers {
        match self.free.pop() {
            Some(b) => {
                self.reuses += 1;
                b
            }
            None => TxBuffers::new(),
        }
    }

    /// Returns buffers to the pool, emptied with capacity retained.
    pub fn release(&mut self, mut bufs: TxBuffers) {
        bufs.reset();
        self.free.push(bufs);
    }

    /// Hands out a standalone [`AccessSet`] (recycled if available).
    pub fn acquire_set(&mut self) -> AccessSet {
        match self.spare_sets.pop() {
            Some(s) => {
                self.reuses += 1;
                s
            }
            None => AccessSet::new(),
        }
    }

    /// Returns a standalone [`AccessSet`], emptied with capacity retained.
    pub fn release_set(&mut self, mut set: AccessSet) {
        set.clear();
        self.spare_sets.push(set);
    }

    /// Acquisitions served from the free lists (rather than the allocator)
    /// since the pool was created.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Buffers currently parked in the pool (for tests and diagnostics).
    pub fn idle(&self) -> usize {
        self.free.len() + self.spare_sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle_counts_reuses() {
        let mut pool = TxBufferPool::new();
        let a = pool.acquire();
        assert_eq!(pool.reuses(), 0, "first acquire is a fresh allocation");
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire();
        assert_eq!(pool.reuses(), 1, "second acquire reuses");
        assert!(b.overlay.is_empty() && b.reads.is_empty() && b.writes.is_empty());
    }

    #[test]
    fn released_buffers_come_back_empty_with_capacity() {
        let mut pool = TxBufferPool::new();
        let mut b = pool.acquire();
        b.overlay
            .insert(ObjId::from_index(3), ObjData::scalar_i64(1));
        b.writes.insert(ObjId::from_index(3), 0, 4);
        let cap = b.overlay.capacity();
        pool.release(b);
        let b = pool.acquire();
        assert!(b.overlay.is_empty());
        assert!(b.writes.is_empty());
        assert!(b.writes.fingerprint().is_empty());
        assert!(b.overlay.capacity() >= cap, "capacity must be retained");
    }

    #[test]
    fn standalone_sets_recycle_too() {
        let mut pool = TxBufferPool::new();
        let mut s = pool.acquire_set();
        s.insert(ObjId::from_index(1), 0, 16);
        pool.release_set(s);
        let s = pool.acquire_set();
        assert!(s.is_empty());
        assert_eq!(pool.reuses(), 1);
    }
}
