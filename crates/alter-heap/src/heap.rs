//! The committed memory state, snapshots of it, and commit application.
//!
//! The paper's runtime keeps one *committed memory state* plus N process-
//! private copy-on-write mappings (§4.1, Figure 4). Here the committed state
//! is a vector of `Arc`'d objects; a [`Snapshot`] is a cheap structural copy
//! of that vector (every object shared), and transaction privacy comes from
//! copying an object into a private overlay on first write
//! ([`crate::Tx`]) — software copy-on-write at allocation granularity.

use crate::object::{ObjData, ObjId};
use std::sync::Arc;

/// The committed memory state.
///
/// Sequential (non-transactional) code — program setup, the sequential parts
/// between parallel loops, validation — accesses the heap directly through
/// [`Heap::get`] / [`Heap::get_mut`]. Parallel loops access it only through
/// snapshots and transactions, and mutate it only through
/// [`Heap::apply_commit`] in deterministic commit order.
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Option<Arc<ObjData>>>,
    /// Commit version at which each slot was last written.
    versions: Vec<u64>,
    /// Global commit counter; bumped once per committed transaction.
    version: u64,
    /// Slots freed by sequential code, reusable by sequential allocation.
    free: Vec<u32>,
    live: usize,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object from sequential code and returns its id.
    ///
    /// Reuses previously freed slots (single-threaded, so reuse is
    /// deterministic). Transactional allocation goes through
    /// [`crate::Tx::alloc`] instead, which draws from per-worker disjoint id
    /// reservations so concurrent transactions can never be handed the same
    /// id (the ALTER-allocator guarantee, §4.1).
    pub fn alloc(&mut self, data: ObjData) -> ObjId {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.slots.len()).expect("heap exhausted");
                self.slots.push(None);
                self.versions.push(0);
                idx
            }
        };
        self.slots[idx as usize] = Some(Arc::new(data));
        self.versions[idx as usize] = self.version;
        self.live += 1;
        ObjId(idx)
    }

    /// Frees an object from sequential code.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live (double free or never allocated).
    pub fn free(&mut self, id: ObjId) {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        assert!(slot.take().is_some(), "double free of {id}");
        self.free.push(id.0);
        self.live -= 1;
    }

    /// Borrows the committed payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get(&self, id: ObjId) -> &ObjData {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_deref())
            .unwrap_or_else(|| panic!("access to dead or unknown {id}"))
    }

    /// Whether `id` names a live allocation.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.slots.get(id.0 as usize).is_some_and(|s| s.is_some())
    }

    /// Mutably borrows the committed payload of `id` from sequential code,
    /// cloning it first if a snapshot still shares it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn get_mut(&mut self, id: ObjId) -> &mut ObjData {
        self.versions[id.0 as usize] = self.version;
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("access to dead or unknown {id}"));
        Arc::make_mut(slot)
    }

    /// Takes a consistent snapshot of the committed state.
    ///
    /// Cost is one `Arc` clone per slot — the analogue of re-establishing the
    /// copy-on-write mappings at the start of a lock-step round.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            slots: Arc::from(self.slots.clone().into_boxed_slice()),
            version: self.version,
        }
    }

    /// Current global commit version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Commit version at which `id` was last written.
    pub fn slot_version(&self, id: ObjId) -> u64 {
        self.versions[id.0 as usize]
    }

    /// Number of live allocations.
    pub fn live_objects(&self) -> usize {
        self.live
    }

    /// Total words across live allocations (used by the simulator's
    /// bandwidth model and by memory-budget accounting).
    pub fn live_words(&self) -> u64 {
        self.slots.iter().flatten().map(|o| o.len() as u64).sum()
    }

    /// First id that has never been allocated; parallel id reservations
    /// start here (see [`crate::IdReservation`]).
    pub fn high_water(&self) -> u32 {
        u32::try_from(self.slots.len()).expect("heap exhausted")
    }

    /// Applies a validated transaction's effects, in deterministic commit
    /// order, and bumps the commit version.
    ///
    /// Only the word ranges in the transaction's write set are merged back
    /// ([`ObjData::copy_range_from`]): snapshot isolation lets two
    /// transactions commit writes to disjoint ranges of one allocation, so a
    /// whole-object overwrite would lose the earlier commit.
    ///
    /// # Panics
    ///
    /// Panics if an op refers to a dead object (the engine validates before
    /// committing, so this indicates a runtime bug) or an alloc id collides
    /// with a live slot (an allocator invariant violation).
    pub fn apply_commit(&mut self, ops: CommitOps) {
        self.version += 1;
        for (id, lo, hi, src) in ops.writes {
            let slot_idx = id.0 as usize;
            self.versions[slot_idx] = self.version;
            let slot = self.slots[slot_idx]
                .as_mut()
                .unwrap_or_else(|| panic!("commit write to dead {id}"));
            if lo == 0 && hi as usize == src.len() && src.len() == slot.len() {
                // Whole-object write: swap the Arc, no copy.
                *slot = src;
            } else {
                Arc::make_mut(slot).copy_range_from(&src, lo as usize, hi as usize);
            }
        }
        for (id, data) in ops.allocs {
            let idx = id.0 as usize;
            if idx >= self.slots.len() {
                self.slots.resize(idx + 1, None);
                self.versions.resize(idx + 1, 0);
            }
            assert!(
                self.slots[idx].is_none(),
                "allocator invariant violated: {id} already live at commit"
            );
            self.slots[idx] = Some(data);
            self.versions[idx] = self.version;
            self.live += 1;
        }
        for id in ops.frees {
            let slot = self.slots[id.0 as usize]
                .take()
                .unwrap_or_else(|| panic!("commit free of dead {id}"));
            drop(slot);
            self.live -= 1;
            // Freed parallel slots are not recycled: the paper's allocator
            // also leaves holes rather than risk cross-process reuse races.
        }
    }

    /// Returns a deterministic digest of the committed state, for
    /// output-comparison in tests and the inference engine.
    pub fn digest(&self) -> u64 {
        // FNV-1a over (slot index, kind tag, raw words) of live slots.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(obj) = slot else { continue };
            mix(i as u64);
            match obj.as_ref() {
                ObjData::F64(v) => {
                    mix(1);
                    for x in v {
                        mix(x.to_bits());
                    }
                }
                ObjData::I64(v) => {
                    mix(2);
                    for x in v {
                        mix(*x as u64);
                    }
                }
            }
        }
        h
    }
}

/// A consistent, immutable view of the committed state at some version.
///
/// Cloning a snapshot is O(1); all transactions of one lock-step round share
/// one snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    slots: Arc<[Option<Arc<ObjData>>]>,
    version: u64,
}

impl Snapshot {
    /// Borrows the payload of `id` as of this snapshot, or `None` if the
    /// object was dead (or not yet allocated) at snapshot time.
    #[inline]
    pub fn get(&self, id: ObjId) -> Option<&ObjData> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_deref())
    }

    /// Shares the payload `Arc` of `id`, for zero-copy reads.
    pub fn get_arc(&self, id: ObjId) -> Option<Arc<ObjData>> {
        self.slots.get(id.0 as usize).and_then(|s| s.clone())
    }

    /// The commit version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of slots (live or dead) visible to the snapshot.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

/// The effects of one validated transaction, applied by
/// [`Heap::apply_commit`].
#[derive(Debug, Default)]
pub struct CommitOps {
    /// `(object, lo, hi, source)` — merge words `lo..hi` of `source` into
    /// the committed object.
    pub writes: Vec<(ObjId, u32, u32, Arc<ObjData>)>,
    /// Objects allocated by the transaction, installed at their reserved ids.
    pub allocs: Vec<(ObjId, Arc<ObjData>)>,
    /// Objects freed by the transaction.
    pub frees: Vec<ObjId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_mutate_free() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_f64(1.0));
        let b = h.alloc(ObjData::zeros_i64(3));
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.get(a).f64s()[0], 1.0);
        h.get_mut(b).i64s_mut()[2] = 7;
        assert_eq!(h.get(b).i64s(), &[0, 0, 7]);
        h.free(a);
        assert_eq!(h.live_objects(), 1);
        assert!(!h.is_live(a));
        // Sequential alloc reuses the freed slot deterministically.
        let c = h.alloc(ObjData::scalar_i64(9));
        assert_eq!(c.index(), a.index());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(0));
        h.free(a);
        // Slot is now empty; freeing again must panic.
        let dead = ObjId::from_index(a.index());
        h.free(dead);
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_f64(1.0));
        let snap = h.snapshot();
        h.get_mut(a).f64s_mut()[0] = 2.0;
        assert_eq!(snap.get(a).unwrap().f64s()[0], 1.0);
        assert_eq!(h.get(a).f64s()[0], 2.0);
    }

    #[test]
    fn snapshot_does_not_see_later_allocations() {
        let mut h = Heap::new();
        let snap = h.snapshot();
        let a = h.alloc(ObjData::scalar_i64(1));
        assert!(snap.get(a).is_none());
        assert_eq!(snap.slot_count(), 0);
    }

    #[test]
    fn apply_commit_merges_ranges_not_whole_objects() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::F64(vec![0.0; 4]));
        // Two "transactions" writing disjoint ranges, both based on the
        // original snapshot contents.
        let tx1 = Arc::new(ObjData::F64(vec![1.0, 1.0, 0.0, 0.0]));
        let tx2 = Arc::new(ObjData::F64(vec![0.0, 0.0, 2.0, 2.0]));
        h.apply_commit(CommitOps {
            writes: vec![(a, 0, 2, tx1)],
            ..Default::default()
        });
        h.apply_commit(CommitOps {
            writes: vec![(a, 2, 4, tx2)],
            ..Default::default()
        });
        assert_eq!(h.get(a).f64s(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(h.version(), 2);
        assert_eq!(h.slot_version(a), 2);
    }

    #[test]
    fn apply_commit_installs_allocs_at_reserved_ids() {
        let mut h = Heap::new();
        let _ = h.alloc(ObjData::scalar_i64(0));
        let far = ObjId::from_index(10);
        h.apply_commit(CommitOps {
            allocs: vec![(far, Arc::new(ObjData::scalar_i64(42)))],
            ..Default::default()
        });
        assert_eq!(h.get(far).i64s(), &[42]);
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.high_water(), 11);
    }

    #[test]
    fn apply_commit_frees() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        h.apply_commit(CommitOps {
            frees: vec![a],
            ..Default::default()
        });
        assert!(!h.is_live(a));
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn digest_changes_with_content_and_identity() {
        let mut h1 = Heap::new();
        let a = h1.alloc(ObjData::scalar_f64(1.0));
        let d1 = h1.digest();
        h1.get_mut(a).f64s_mut()[0] = 2.0;
        let d2 = h1.digest();
        assert_ne!(d1, d2);

        let mut h2 = Heap::new();
        h2.alloc(ObjData::scalar_f64(2.0));
        assert_eq!(h2.digest(), d2);
    }

    #[test]
    fn snapshot_get_arc_shares_until_write() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::zeros_f64(4));
        let snap = h.snapshot();
        let arc = snap.get_arc(a).unwrap();
        // Snapshot and heap share the payload until a write forces a copy.
        assert!(std::sync::Arc::ptr_eq(&arc, &snap.get_arc(a).unwrap()));
        h.get_mut(a).f64s_mut()[0] = 5.0;
        assert_eq!(arc.f64s()[0], 0.0, "snapshot view unaffected");
        assert_eq!(h.get(a).f64s()[0], 5.0);
        assert!(snap.get_arc(ObjId::from_index(99)).is_none());
    }

    #[test]
    fn live_words_counts_all_payloads() {
        let mut h = Heap::new();
        h.alloc(ObjData::zeros_f64(10));
        let b = h.alloc(ObjData::zeros_i64(5));
        assert_eq!(h.live_words(), 15);
        h.free(b);
        assert_eq!(h.live_words(), 10);
    }
}
