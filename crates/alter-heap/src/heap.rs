//! The committed memory state, snapshots of it, and commit application.
//!
//! The paper's runtime keeps one *committed memory state* plus N process-
//! private copy-on-write mappings (§4.1, Figure 4). Here the committed state
//! is a vector of `Arc`'d objects; a [`Snapshot`] is a page-chunked
//! structural copy of that vector (every object shared), and transaction
//! privacy comes from copying an object into a private overlay on first
//! write ([`crate::Tx`]) — software copy-on-write at allocation granularity.
//!
//! Snapshots come in two flavours. [`Heap::snapshot`] builds the page table
//! from scratch (O(slots), one `Arc` clone per slot — the cost this module
//! existed with for its first two releases). [`Heap::snapshot_incremental`]
//! instead patches a persistent page table kept inside the heap, guided by a
//! dirty-slot journal that every mutation path feeds, and is O(slots dirtied
//! since the previous incremental snapshot) — the analogue of the paper's
//! runtime re-establishing only the *invalidated* copy-on-write mappings at
//! a round boundary instead of remapping the whole address space. Both
//! produce bit-identical snapshot views.
//!
//! # Sharding
//!
//! Internally the heap is a fixed power-of-two array of [`HeapShard`]s, each
//! owning its slot storage, dirty-slot journal, page-chunked snapshot cache,
//! and a 128-bit fingerprint accumulating the write blocks committed into
//! it. Object ids route to shards by *snapshot page*: global page
//! `id / SNAPSHOT_PAGE_SLOTS` belongs to shard `page % shards`, so every
//! snapshot page lives wholly inside one shard and the page partition — and
//! therefore every snapshot-economics counter — is independent of the shard
//! count. Validation and commit batches over distinct shards touch disjoint
//! state by construction; [`Heap::apply_commit`] applies them in ascending
//! shard order on the committer, which keeps commit order per shard equal to
//! ticket order and traces byte-identical across shard counts. The default
//! is a single shard, which is bit-for-bit the pre-sharding layout.

use crate::object::{ObjData, ObjId};
use crate::sets::{Fingerprint, SHARD_LANES};
use std::sync::Arc;

/// Slots per snapshot page. Pages are the unit of structural sharing
/// between consecutive incremental snapshots: a page none of whose slots
/// were dirtied since the last snapshot is reused as-is (one `Arc` bump for
/// the whole page instead of one per slot). Pages are also the unit of
/// shard routing, so a page never straddles two shards.
pub const SNAPSHOT_PAGE_SLOTS: usize = 64;

/// One fixed-size page of a snapshot's slot table. The array is padded
/// with `None` past the heap's current length, which stays correct across
/// heap growth because a slot is `None` until its first allocation — and
/// that allocation lands in the dirty journal.
#[derive(Clone, Debug)]
struct PageData {
    slots: [Option<Arc<ObjData>>; SNAPSHOT_PAGE_SLOTS],
}

impl PageData {
    fn empty() -> Self {
        PageData {
            slots: [const { None }; SNAPSHOT_PAGE_SLOTS],
        }
    }

    /// Builds one page from the slot vector starting at `lo`, tolerating
    /// short (or absent) tails — the padding stays `None`.
    fn from_slots_at(slots: &[Option<Arc<ObjData>>], lo: usize) -> Self {
        let mut page = PageData::empty();
        if lo < slots.len() {
            let hi = (lo + SNAPSHOT_PAGE_SLOTS).min(slots.len());
            for (dst, src) in page.slots.iter_mut().zip(&slots[lo..hi]) {
                *dst = src.clone();
            }
        }
        page
    }
}

type Page = Arc<PageData>;

/// Construction cost of one snapshot, reported by
/// [`Heap::snapshot_incremental`] (the full [`Heap::snapshot`] path costs
/// `slot_count` copies and reuses nothing, by definition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Slot entries `Arc`-cloned into the page table: every slot on a full
    /// (re)build, only journalled slots on the incremental path.
    pub slots_copied: u64,
    /// Pages carried over from the previous snapshot untouched — their
    /// slots were not copied at all.
    pub pages_reused: u64,
}

/// One shard of the committed state: a slice of the slot table (every
/// `shards`-th snapshot page), its versions, its dirty-slot journal, its
/// snapshot-page cache, and a fingerprint folding in every write block
/// committed into the shard. All indices are shard-local; only [`Heap`]
/// knows the global routing.
#[derive(Debug, Default)]
struct HeapShard {
    slots: Vec<Option<Arc<ObjData>>>,
    /// Commit version at which each local slot was last written.
    versions: Vec<u64>,
    live: usize,
    live_words: u64,
    /// Persistent page table shared with the last incremental snapshot,
    /// indexed by shard-local page.
    snap_pages: Vec<Page>,
    /// Local slots mutated since the last incremental snapshot,
    /// deduplicated via `journaled`.
    journal: Vec<u32>,
    journaled: Vec<bool>,
    /// Bloom-style accumulator over the `(object, word-block)` pairs of
    /// every write committed into this shard (diagnostics and the sharding
    /// invariant tests; never consulted on the validation path).
    write_fp: Fingerprint,
}

impl HeapShard {
    /// Records that local slot `idx` diverged from the last incremental
    /// snapshot.
    #[inline]
    fn mark_dirty(&mut self, idx: usize) {
        if idx >= self.journaled.len() {
            self.journaled.resize(idx + 1, false);
        }
        if !self.journaled[idx] {
            self.journaled[idx] = true;
            self.journal.push(idx as u32);
        }
    }

    /// Grows the local slot table to cover local index `idx`.
    fn ensure(&mut self, idx: usize) {
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
            self.versions.resize(idx + 1, 0);
        }
    }
}

/// The committed memory state.
///
/// Sequential (non-transactional) code — program setup, the sequential parts
/// between parallel loops, validation — accesses the heap directly through
/// [`Heap::get`] / [`Heap::get_mut`]. Parallel loops access it only through
/// snapshots and transactions, and mutate it only through
/// [`Heap::apply_commit`] in deterministic commit order.
///
/// Storage is partitioned into a power-of-two number of [`HeapShard`]s (one
/// by default — see the module docs); the partition is an internal layout
/// choice and never observable through snapshots, digests, or commits.
#[derive(Debug)]
pub struct Heap {
    shards: Vec<HeapShard>,
    /// `log2(shards.len())`, cached for routing.
    shard_bits: u32,
    /// Global high water: number of slot ids ever issued (live or dead).
    len: usize,
    /// Global commit counter; bumped once per committed transaction.
    version: u64,
    /// Slots freed by sequential code, reusable by sequential allocation
    /// (global ids — the free list is not sharded).
    free: Vec<u32>,
    /// Whether the shards' `snap_pages` reflect some past snapshot (false
    /// until the first incremental snapshot, which does a full build).
    snap_valid: bool,
    /// Monotonic snapshot epoch: bumped once per round snapshot (either
    /// flavour). The pipelined engine stamps every ticket with the epoch it
    /// executes against; a re-queued ticket gets the next (fresh) epoch.
    epoch: u64,
}

impl Default for Heap {
    fn default() -> Self {
        Heap {
            shards: vec![HeapShard::default()],
            shard_bits: 0,
            len: 0,
            version: 0,
            free: Vec::new(),
            snap_valid: false,
            epoch: 0,
        }
    }
}

impl Heap {
    /// Creates an empty heap (single shard).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty heap partitioned into `shards` shards (rounded to a
    /// power of two, clamped to `1..=`[`SHARD_LANES`]).
    pub fn with_shards(shards: usize) -> Self {
        let mut h = Self::default();
        h.set_shards(shards);
        h
    }

    /// Number of shards the slot table is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `id` routes to: global snapshot page, interleaved. Every
    /// id of one snapshot page lands in the same shard, so the page
    /// partition (and with it every snapshot-economics counter) is
    /// independent of the shard count.
    #[inline]
    pub fn shard_of(&self, id: ObjId) -> usize {
        (id.0 as usize / SNAPSHOT_PAGE_SLOTS) & (self.shards.len() - 1)
    }

    /// Routes a global slot index to `(shard, local slot index)`.
    #[inline]
    fn locate(&self, idx: usize) -> (usize, usize) {
        let page = idx / SNAPSHOT_PAGE_SLOTS;
        let shard = page & (self.shards.len() - 1);
        let local = ((page >> self.shard_bits) * SNAPSHOT_PAGE_SLOTS) + (idx % SNAPSHOT_PAGE_SLOTS);
        (shard, local)
    }

    /// Re-partitions the slot table into `shards` shards (rounded to a
    /// power of two, clamped to `1..=`[`SHARD_LANES`]). A no-op when the
    /// count is unchanged; otherwise slots are redistributed
    /// deterministically in ascending id order, the per-shard write
    /// fingerprints reset, and the snapshot cache is dropped so the next
    /// incremental snapshot does a full build — exactly the cost a fresh
    /// heap's first snapshot pays, so snapshot accounting stays comparable
    /// across shard counts. The committed state, versions, free list and
    /// epoch are untouched; digests and snapshots are identical before and
    /// after.
    pub fn set_shards(&mut self, shards: usize) {
        let n = shards.clamp(1, SHARD_LANES).next_power_of_two();
        if n == self.shards.len() {
            return;
        }
        let old_bits = self.shard_bits;
        let old_mask = self.shards.len() - 1;
        let old = std::mem::take(&mut self.shards);
        let new_bits = n.trailing_zeros();
        let mut shards_new: Vec<HeapShard> = (0..n).map(|_| HeapShard::default()).collect();
        for idx in 0..self.len {
            let page = idx / SNAPSHOT_PAGE_SLOTS;
            let off = idx % SNAPSHOT_PAGE_SLOTS;
            let (os, ol) = (
                page & old_mask,
                ((page >> old_bits) * SNAPSHOT_PAGE_SLOTS) + off,
            );
            let slot = old[os].slots.get(ol).cloned().flatten();
            let ver = old[os].versions.get(ol).copied().unwrap_or(0);
            if slot.is_none() && ver == 0 {
                continue;
            }
            let (ns, nl) = (
                page & (n - 1),
                ((page >> new_bits) * SNAPSHOT_PAGE_SLOTS) + off,
            );
            let dst = &mut shards_new[ns];
            dst.ensure(nl);
            if let Some(obj) = slot {
                dst.live += 1;
                dst.live_words += obj.len() as u64;
                dst.slots[nl] = Some(obj);
            }
            dst.versions[nl] = ver;
        }
        self.shards = shards_new;
        self.shard_bits = new_bits;
        self.snap_valid = false;
    }

    /// The Bloom-style accumulator over every `(object, word-block)` pair
    /// committed into shard `shard` via [`Heap::apply_commit`]. Reset by
    /// [`Heap::set_shards`]. Purely diagnostic: validation probes the
    /// round's access-set fingerprints, never this one.
    pub fn shard_write_fingerprint(&self, shard: usize) -> Fingerprint {
        self.shards[shard].write_fp
    }

    /// Allocates an object from sequential code and returns its id.
    ///
    /// Reuses previously freed slots (single-threaded, so reuse is
    /// deterministic). Transactional allocation goes through
    /// [`crate::Tx::alloc`] instead, which draws from per-worker disjoint id
    /// reservations so concurrent transactions can never be handed the same
    /// id (the ALTER-allocator guarantee, §4.1).
    pub fn alloc(&mut self, data: ObjData) -> ObjId {
        let idx = match self.free.pop() {
            Some(idx) => idx as usize,
            None => {
                let idx = self.len;
                u32::try_from(idx).expect("heap exhausted");
                self.len += 1;
                idx
            }
        };
        let version = self.version;
        let (s, l) = self.locate(idx);
        let shard = &mut self.shards[s];
        shard.ensure(l);
        shard.live_words += data.len() as u64;
        shard.slots[l] = Some(Arc::new(data));
        shard.versions[l] = version;
        shard.live += 1;
        shard.mark_dirty(l);
        ObjId(idx as u32)
    }

    /// Frees an object from sequential code.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live (double free or never allocated).
    pub fn free(&mut self, id: ObjId) {
        let (s, l) = self.locate(id.0 as usize);
        let shard = &mut self.shards[s];
        let slot = shard
            .slots
            .get_mut(l)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        let freed = slot.take().unwrap_or_else(|| panic!("double free of {id}"));
        shard.live_words -= freed.len() as u64;
        shard.live -= 1;
        shard.mark_dirty(l);
        self.free.push(id.0);
    }

    /// Borrows the committed payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get(&self, id: ObjId) -> &ObjData {
        let (s, l) = self.locate(id.0 as usize);
        self.shards[s]
            .slots
            .get(l)
            .and_then(|slot| slot.as_deref())
            .unwrap_or_else(|| panic!("access to dead or unknown {id}"))
    }

    /// Whether `id` names a live allocation.
    pub fn is_live(&self, id: ObjId) -> bool {
        let (s, l) = self.locate(id.0 as usize);
        self.shards[s]
            .slots
            .get(l)
            .is_some_and(|slot| slot.is_some())
    }

    /// Mutably borrows the committed payload of `id` from sequential code,
    /// cloning it first if a snapshot still shares it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn get_mut(&mut self, id: ObjId) -> &mut ObjData {
        let version = self.version;
        let (s, l) = self.locate(id.0 as usize);
        let shard = &mut self.shards[s];
        if l < shard.versions.len() {
            shard.versions[l] = version;
        }
        shard.mark_dirty(l);
        let slot = shard
            .slots
            .get_mut(l)
            .and_then(|slot| slot.as_mut())
            .unwrap_or_else(|| panic!("access to dead or unknown {id}"));
        Arc::make_mut(slot)
    }

    /// Number of global snapshot pages covering the slot table.
    fn page_count(&self) -> usize {
        self.len.div_ceil(SNAPSHOT_PAGE_SLOTS)
    }

    /// Number of shard-local pages shard `s` owns out of `npages` global
    /// pages (the pages `s, s + shards, s + 2·shards, …`).
    fn local_pages(&self, s: usize, npages: usize) -> usize {
        npages.saturating_sub(s).div_ceil(self.shards.len())
    }

    /// Takes a consistent snapshot of the committed state, building the
    /// page table from scratch.
    ///
    /// Cost is one `Arc` clone per slot — the analogue of re-establishing
    /// all N copy-on-write mappings at the start of a lock-step round. The
    /// engine's hot path uses [`Heap::snapshot_incremental`] instead; this
    /// entry point stays for one-shot snapshots (dependence detection,
    /// tests) and as the A/B baseline.
    pub fn snapshot(&self) -> Snapshot {
        let npages = self.page_count();
        Snapshot {
            pages: (0..npages)
                .map(|page| {
                    let shard = &self.shards[page & (self.shards.len() - 1)];
                    let lo = (page >> self.shard_bits) * SNAPSHOT_PAGE_SLOTS;
                    Arc::new(PageData::from_slots_at(&shard.slots, lo))
                })
                .collect(),
            len: self.len,
            version: self.version,
        }
    }

    /// Takes a full-build round snapshot *and* advances the snapshot
    /// epoch — the engine's non-incremental round path. One-shot snapshots
    /// that are not round boundaries (dependence detection, tests) keep
    /// using [`Heap::snapshot`], which leaves the epoch alone.
    pub fn snapshot_round(&mut self) -> Snapshot {
        self.epoch += 1;
        self.snapshot()
    }

    /// The current snapshot epoch: how many round snapshots this heap has
    /// issued. Monotonic across engine runs on the same heap (convergence
    /// loops drive the engine repeatedly), so an epoch names one snapshot
    /// globally, not just within a run.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch
    }

    /// Takes a snapshot bit-identical to [`Heap::snapshot`]'s by patching
    /// each shard's persistent page table, in O(slots dirtied since the
    /// previous incremental snapshot).
    ///
    /// The first call (and any call after [`Heap::reset_snapshot_cache`] or
    /// [`Heap::set_shards`]) falls back to a full build. Clean pages are
    /// shared structurally with the previous snapshot — one `Arc` bump per
    /// page; dirty pages are patched slot-by-slot, copy-on-write if the
    /// previous snapshot is still alive, in place once it has been dropped
    /// (the engine's steady state, since a round's snapshot dies at the
    /// round barrier). Because shard routing is page-aligned, the dirty-page
    /// partition — and both [`SnapshotStats`] counters — is identical
    /// whatever the shard count.
    pub fn snapshot_incremental(&mut self) -> (Snapshot, SnapshotStats) {
        self.epoch += 1;
        let mut stats = SnapshotStats::default();
        let npages = self.page_count();
        let nshards = self.shards.len();
        if self.snap_valid {
            for s in 0..nshards {
                let local_npages = self.local_pages(s, npages);
                let shard = &mut self.shards[s];
                debug_assert!(shard.snap_pages.len() <= local_npages, "slots never shrink");
                while shard.snap_pages.len() < local_npages {
                    shard.snap_pages.push(Arc::new(PageData::empty()));
                }
                let mut page_dirty = vec![false; local_npages];
                for i in 0..shard.journal.len() {
                    let idx = shard.journal[i] as usize;
                    let page_idx = idx / SNAPSHOT_PAGE_SLOTS;
                    page_dirty[page_idx] = true;
                    let page = Arc::make_mut(&mut shard.snap_pages[page_idx]);
                    page.slots[idx % SNAPSHOT_PAGE_SLOTS] = shard.slots.get(idx).cloned().flatten();
                    shard.journaled[idx] = false;
                }
                stats.slots_copied += shard.journal.len() as u64;
                stats.pages_reused += page_dirty.iter().filter(|d| !**d).count() as u64;
                shard.journal.clear();
            }
        } else {
            for s in 0..nshards {
                let local_npages = self.local_pages(s, npages);
                let shard = &mut self.shards[s];
                shard.snap_pages.clear();
                shard.snap_pages.extend((0..local_npages).map(|p| {
                    Arc::new(PageData::from_slots_at(
                        &shard.slots,
                        p * SNAPSHOT_PAGE_SLOTS,
                    ))
                }));
                for i in 0..shard.journal.len() {
                    let idx = shard.journal[i] as usize;
                    shard.journaled[idx] = false;
                }
                shard.journal.clear();
            }
            stats.slots_copied = self.len as u64;
            self.snap_valid = true;
        }
        let snap = Snapshot {
            pages: (0..npages)
                .map(|page| {
                    self.shards[page & (nshards - 1)].snap_pages[page >> self.shard_bits].clone()
                })
                .collect(),
            len: self.len,
            version: self.version,
        };
        (snap, stats)
    }

    /// Drops the persistent page tables; the next
    /// [`Heap::snapshot_incremental`] does a full build. Only useful to
    /// release memory between unrelated parallel phases.
    pub fn reset_snapshot_cache(&mut self) {
        for shard in &mut self.shards {
            shard.snap_pages.clear();
            shard.snap_pages.shrink_to_fit();
        }
        self.snap_valid = false;
    }

    /// Current global commit version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Commit version at which `id` was last written.
    pub fn slot_version(&self, id: ObjId) -> u64 {
        let (s, l) = self.locate(id.0 as usize);
        self.shards[s].versions.get(l).copied().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_objects(&self) -> usize {
        self.shards.iter().map(|s| s.live).sum()
    }

    /// Total words across live allocations (used by the simulator's
    /// bandwidth model and by memory-budget accounting). O(shards):
    /// payloads are fixed-length, so the per-shard counters move only on
    /// alloc and free.
    pub fn live_words(&self) -> u64 {
        let total: u64 = self.shards.iter().map(|s| s.live_words).sum();
        debug_assert_eq!(
            total,
            self.shards
                .iter()
                .flat_map(|s| s.slots.iter().flatten())
                .map(|o| o.len() as u64)
                .sum::<u64>(),
            "live-words counters diverged from the sweep"
        );
        total
    }

    /// First id that has never been allocated; parallel id reservations
    /// start here (see [`crate::IdReservation`]).
    pub fn high_water(&self) -> u32 {
        u32::try_from(self.len).expect("heap exhausted")
    }

    /// Applies a validated transaction's effects, in deterministic commit
    /// order, and bumps the commit version. Returns the number of distinct
    /// shards the commit touched — the per-shard batches a partitioned
    /// committer retires (batches over distinct shards are disjoint by
    /// construction; they are applied here in ascending op order, which
    /// visits shards deterministically).
    ///
    /// Only the word ranges in the transaction's write set are merged back
    /// ([`ObjData::copy_range_from`]): snapshot isolation lets two
    /// transactions commit writes to disjoint ranges of one allocation, so a
    /// whole-object overwrite would lose the earlier commit.
    ///
    /// # Panics
    ///
    /// Panics if an op refers to a dead object (the engine validates before
    /// committing, so this indicates a runtime bug) or an alloc id collides
    /// with a live slot (an allocator invariant violation).
    pub fn apply_commit(&mut self, ops: CommitOps) -> u32 {
        self.version += 1;
        let version = self.version;
        let mut touched: u32 = 0;
        for (id, lo, hi, src) in ops.writes {
            let (s, l) = self.locate(id.0 as usize);
            touched |= 1 << s;
            let shard = &mut self.shards[s];
            shard.versions[l] = version;
            shard.mark_dirty(l);
            shard.write_fp.insert_range(id, lo, hi);
            let slot = shard.slots[l]
                .as_mut()
                .unwrap_or_else(|| panic!("commit write to dead {id}"));
            if lo == 0 && hi as usize == src.len() && src.len() == slot.len() {
                // Whole-object write: swap the Arc, no copy.
                *slot = src;
            } else {
                Arc::make_mut(slot).copy_range_from(&src, lo as usize, hi as usize);
            }
        }
        for (id, data) in ops.allocs {
            let idx = id.0 as usize;
            if idx >= self.len {
                self.len = idx + 1;
            }
            let (s, l) = self.locate(idx);
            touched |= 1 << s;
            let shard = &mut self.shards[s];
            shard.ensure(l);
            assert!(
                shard.slots[l].is_none(),
                "allocator invariant violated: {id} already live at commit"
            );
            shard.live_words += data.len() as u64;
            shard.write_fp.insert_range(id, 0, data.len().max(1) as u32);
            shard.slots[l] = Some(data);
            shard.versions[l] = version;
            shard.live += 1;
            shard.mark_dirty(l);
        }
        for id in ops.frees {
            let (s, l) = self.locate(id.0 as usize);
            touched |= 1 << s;
            let shard = &mut self.shards[s];
            let slot = shard.slots[l]
                .take()
                .unwrap_or_else(|| panic!("commit free of dead {id}"));
            shard.live_words -= slot.len() as u64;
            drop(slot);
            shard.live -= 1;
            shard.mark_dirty(l);
            // Freed parallel slots are not recycled: the paper's allocator
            // also leaves holes rather than risk cross-process reuse races.
        }
        touched.count_ones()
    }

    /// Returns a deterministic digest of the committed state, for
    /// output-comparison in tests and the inference engine. Iterates in
    /// ascending global id order, so the digest is independent of the
    /// shard layout.
    pub fn digest(&self) -> u64 {
        // FNV-1a over (slot index, kind tag, raw words) of live slots.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for i in 0..self.len {
            let (s, l) = self.locate(i);
            let Some(obj) = self.shards[s].slots.get(l).and_then(|slot| slot.as_ref()) else {
                continue;
            };
            mix(i as u64);
            match obj.as_ref() {
                ObjData::F64(v) => {
                    mix(1);
                    for x in v {
                        mix(x.to_bits());
                    }
                }
                ObjData::I64(v) => {
                    mix(2);
                    for x in v {
                        mix(*x as u64);
                    }
                }
            }
        }
        h
    }
}

/// A consistent, immutable view of the committed state at some version.
///
/// Cloning a snapshot is O(1); all transactions of one lock-step round share
/// one snapshot. The slot table is chunked into fixed-size pages
/// ([`SNAPSHOT_PAGE_SLOTS`]) so consecutive incremental snapshots can share
/// clean pages structurally; page padding past [`Snapshot::slot_count`] is
/// always `None`, so lookups need no length check. The page table is always
/// assembled in global page order, so a snapshot's view is identical
/// whatever the heap's shard count.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pages: Arc<[Page]>,
    len: usize,
    version: u64,
}

impl Snapshot {
    /// Borrows the payload of `id` as of this snapshot, or `None` if the
    /// object was dead (or not yet allocated) at snapshot time.
    #[inline]
    pub fn get(&self, id: ObjId) -> Option<&ObjData> {
        let idx = id.0 as usize;
        self.pages
            .get(idx / SNAPSHOT_PAGE_SLOTS)
            .and_then(|p| p.slots[idx % SNAPSHOT_PAGE_SLOTS].as_deref())
    }

    /// Shares the payload `Arc` of `id`, for zero-copy reads.
    pub fn get_arc(&self, id: ObjId) -> Option<Arc<ObjData>> {
        let idx = id.0 as usize;
        self.pages
            .get(idx / SNAPSHOT_PAGE_SLOTS)
            .and_then(|p| p.slots[idx % SNAPSHOT_PAGE_SLOTS].clone())
    }

    /// The commit version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of slots (live or dead) visible to the snapshot.
    pub fn slot_count(&self) -> usize {
        self.len
    }
}

/// The effects of one validated transaction, applied by
/// [`Heap::apply_commit`].
#[derive(Debug, Default)]
pub struct CommitOps {
    /// `(object, lo, hi, source)` — merge words `lo..hi` of `source` into
    /// the committed object.
    pub writes: Vec<(ObjId, u32, u32, Arc<ObjData>)>,
    /// Objects allocated by the transaction, installed at their reserved ids.
    pub allocs: Vec<(ObjId, Arc<ObjData>)>,
    /// Objects freed by the transaction.
    pub frees: Vec<ObjId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_mutate_free() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_f64(1.0));
        let b = h.alloc(ObjData::zeros_i64(3));
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.get(a).f64s()[0], 1.0);
        h.get_mut(b).i64s_mut()[2] = 7;
        assert_eq!(h.get(b).i64s(), &[0, 0, 7]);
        h.free(a);
        assert_eq!(h.live_objects(), 1);
        assert!(!h.is_live(a));
        // Sequential alloc reuses the freed slot deterministically.
        let c = h.alloc(ObjData::scalar_i64(9));
        assert_eq!(c.index(), a.index());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(0));
        h.free(a);
        // Slot is now empty; freeing again must panic.
        let dead = ObjId::from_index(a.index());
        h.free(dead);
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_f64(1.0));
        let snap = h.snapshot();
        h.get_mut(a).f64s_mut()[0] = 2.0;
        assert_eq!(snap.get(a).unwrap().f64s()[0], 1.0);
        assert_eq!(h.get(a).f64s()[0], 2.0);
    }

    #[test]
    fn snapshot_does_not_see_later_allocations() {
        let mut h = Heap::new();
        let snap = h.snapshot();
        let a = h.alloc(ObjData::scalar_i64(1));
        assert!(snap.get(a).is_none());
        assert_eq!(snap.slot_count(), 0);
    }

    #[test]
    fn apply_commit_merges_ranges_not_whole_objects() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::F64(vec![0.0; 4]));
        // Two "transactions" writing disjoint ranges, both based on the
        // original snapshot contents.
        let tx1 = Arc::new(ObjData::F64(vec![1.0, 1.0, 0.0, 0.0]));
        let tx2 = Arc::new(ObjData::F64(vec![0.0, 0.0, 2.0, 2.0]));
        h.apply_commit(CommitOps {
            writes: vec![(a, 0, 2, tx1)],
            ..Default::default()
        });
        h.apply_commit(CommitOps {
            writes: vec![(a, 2, 4, tx2)],
            ..Default::default()
        });
        assert_eq!(h.get(a).f64s(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(h.version(), 2);
        assert_eq!(h.slot_version(a), 2);
    }

    #[test]
    fn apply_commit_installs_allocs_at_reserved_ids() {
        let mut h = Heap::new();
        let _ = h.alloc(ObjData::scalar_i64(0));
        let far = ObjId::from_index(10);
        h.apply_commit(CommitOps {
            allocs: vec![(far, Arc::new(ObjData::scalar_i64(42)))],
            ..Default::default()
        });
        assert_eq!(h.get(far).i64s(), &[42]);
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.high_water(), 11);
    }

    #[test]
    fn apply_commit_frees() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        h.apply_commit(CommitOps {
            frees: vec![a],
            ..Default::default()
        });
        assert!(!h.is_live(a));
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn digest_changes_with_content_and_identity() {
        let mut h1 = Heap::new();
        let a = h1.alloc(ObjData::scalar_f64(1.0));
        let d1 = h1.digest();
        h1.get_mut(a).f64s_mut()[0] = 2.0;
        let d2 = h1.digest();
        assert_ne!(d1, d2);

        let mut h2 = Heap::new();
        h2.alloc(ObjData::scalar_f64(2.0));
        assert_eq!(h2.digest(), d2);
    }

    #[test]
    fn snapshot_get_arc_shares_until_write() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::zeros_f64(4));
        let snap = h.snapshot();
        let arc = snap.get_arc(a).unwrap();
        // Snapshot and heap share the payload until a write forces a copy.
        assert!(std::sync::Arc::ptr_eq(&arc, &snap.get_arc(a).unwrap()));
        h.get_mut(a).f64s_mut()[0] = 5.0;
        assert_eq!(arc.f64s()[0], 0.0, "snapshot view unaffected");
        assert_eq!(h.get(a).f64s()[0], 5.0);
        assert!(snap.get_arc(ObjId::from_index(99)).is_none());
    }

    #[test]
    fn live_words_counts_all_payloads() {
        let mut h = Heap::new();
        h.alloc(ObjData::zeros_f64(10));
        let b = h.alloc(ObjData::zeros_i64(5));
        assert_eq!(h.live_words(), 15);
        h.free(b);
        assert_eq!(h.live_words(), 10);
    }

    #[test]
    fn live_words_tracks_commit_allocs_and_frees() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::zeros_f64(4));
        h.apply_commit(CommitOps {
            writes: vec![(a, 0, 4, Arc::new(ObjData::zeros_f64(4)))],
            allocs: vec![(ObjId::from_index(7), Arc::new(ObjData::zeros_i64(3)))],
            ..Default::default()
        });
        assert_eq!(h.live_words(), 7);
        h.apply_commit(CommitOps {
            frees: vec![a],
            ..Default::default()
        });
        assert_eq!(h.live_words(), 3);
    }

    /// Asserts `snap` is exactly the view [`Heap::snapshot`] would produce.
    fn assert_snap_matches(snap: &Snapshot, h: &Heap) {
        assert_eq!(snap.slot_count(), h.high_water() as usize);
        assert_eq!(snap.version(), h.version());
        for i in 0..h.high_water() + SNAPSHOT_PAGE_SLOTS as u32 {
            let id = ObjId::from_index(i);
            let expect = if h.is_live(id) { Some(h.get(id)) } else { None };
            assert_eq!(snap.get(id), expect, "slot {i}");
        }
    }

    #[test]
    fn incremental_snapshot_matches_full_snapshot() {
        for shards in [1usize, 4, 16] {
            let mut h = Heap::with_shards(shards);
            let mut ids = Vec::new();
            // Span several pages (the mutations below leave page 3 untouched).
            for i in 0..SNAPSHOT_PAGE_SLOTS * 4 {
                ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
            }
            let (s0, st0) = h.snapshot_incremental();
            assert_eq!(
                st0.slots_copied,
                h.high_water() as u64,
                "first use: full build"
            );
            assert_snap_matches(&s0, &h);
            drop(s0);

            // Dirty a handful of slots through every mutation path.
            h.get_mut(ids[3]).i64s_mut()[0] = -3;
            h.free(ids[70]);
            let reused = h.alloc(ObjData::scalar_f64(0.5)); // reuses slot 70
            assert_eq!(reused.index(), 70);
            h.apply_commit(CommitOps {
                writes: vec![(ids[130], 0, 1, Arc::new(ObjData::scalar_i64(-130)))],
                allocs: vec![(
                    ObjId::from_index(h.high_water()),
                    Arc::new(ObjData::zeros_f64(2)),
                )],
                frees: vec![ids[131]],
            });

            let (s1, st1) = h.snapshot_incremental();
            assert_snap_matches(&s1, &h);
            assert_eq!(
                st1.slots_copied, 5,
                "3, 70, 130, 131 and the new slot ({shards} shard(s))"
            );
            assert!(st1.pages_reused >= 1, "untouched pages must be reused");

            // A clean snapshot copies nothing and reuses every page.
            let (s2, st2) = h.snapshot_incremental();
            assert_snap_matches(&s2, &h);
            assert_eq!(st2.slots_copied, 0);
            assert_eq!(st2.pages_reused, s2.pages.len() as u64);
        }
    }

    #[test]
    fn incremental_snapshot_is_isolated_while_previous_lives() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        let (s1, _) = h.snapshot_incremental();
        h.get_mut(a).i64s_mut()[0] = 2;
        // s1 is still alive: the dirty page must be patched copy-on-write.
        let (s2, _) = h.snapshot_incremental();
        assert_eq!(s1.get(a).unwrap().i64s()[0], 1);
        assert_eq!(s2.get(a).unwrap().i64s()[0], 2);
    }

    #[test]
    fn incremental_snapshot_grows_across_page_boundaries() {
        let mut h = Heap::new();
        let (s0, _) = h.snapshot_incremental();
        assert_eq!(s0.slot_count(), 0);
        let mut ids = Vec::new();
        for i in 0..SNAPSHOT_PAGE_SLOTS + 3 {
            ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
        }
        let (s1, st1) = h.snapshot_incremental();
        assert_snap_matches(&s1, &h);
        assert_eq!(st1.slots_copied, (SNAPSHOT_PAGE_SLOTS + 3) as u64);
        assert!(s1.get(ids[SNAPSHOT_PAGE_SLOTS]).is_some());
        // Growth did not leak into the earlier snapshot's view.
        assert_eq!(s0.slot_count(), 0);
    }

    #[test]
    fn reset_snapshot_cache_forces_full_rebuild() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        let _ = h.snapshot_incremental();
        h.reset_snapshot_cache();
        let (s, st) = h.snapshot_incremental();
        assert_eq!(st.slots_copied, 1);
        assert_eq!(s.get(a).unwrap().i64s()[0], 1);
    }

    #[test]
    fn snapshot_epoch_is_monotonic_across_round_snapshots() {
        let mut h = Heap::new();
        let _ = h.alloc(ObjData::scalar_i64(1));
        assert_eq!(h.snapshot_epoch(), 0);
        // Both round-snapshot flavours advance the epoch…
        let _ = h.snapshot_incremental();
        assert_eq!(h.snapshot_epoch(), 1);
        let _ = h.snapshot_round();
        assert_eq!(h.snapshot_epoch(), 2);
        // …a plain one-shot snapshot does not, and neither does dropping
        // the incremental cache (epochs stay monotonic forever).
        let _ = h.snapshot();
        h.reset_snapshot_cache();
        assert_eq!(h.snapshot_epoch(), 2);
        let _ = h.snapshot_incremental();
        assert_eq!(h.snapshot_epoch(), 3);
    }

    /// Builds a heap with objects spread over several pages, through every
    /// mutation path, for the sharding invariance tests below.
    fn populated(shards: usize) -> Heap {
        let mut h = Heap::with_shards(shards);
        let mut ids = Vec::new();
        for i in 0..SNAPSHOT_PAGE_SLOTS * 3 + 17 {
            ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
        }
        h.free(ids[5]);
        h.free(ids[SNAPSHOT_PAGE_SLOTS + 1]);
        h.get_mut(ids[64]).i64s_mut()[0] = -64;
        h.apply_commit(CommitOps {
            writes: vec![(ids[130], 0, 1, Arc::new(ObjData::scalar_i64(-130)))],
            allocs: vec![(
                ObjId::from_index(h.high_water() + 9),
                Arc::new(ObjData::zeros_f64(4)),
            )],
            frees: vec![ids[131]],
        });
        h
    }

    #[test]
    fn shard_count_is_invisible_to_digest_and_snapshots() {
        let base = populated(1);
        for shards in [2usize, 4, 16] {
            let h = populated(shards);
            assert_eq!(h.shard_count(), shards);
            assert_eq!(h.digest(), base.digest(), "{shards} shards");
            assert_eq!(h.live_objects(), base.live_objects());
            assert_eq!(h.live_words(), base.live_words());
            assert_eq!(h.high_water(), base.high_water());
            assert_snap_matches(&h.snapshot(), &base);
        }
    }

    #[test]
    fn set_shards_redistributes_in_place() {
        let mut h = populated(1);
        let digest = h.digest();
        let live = (h.live_objects(), h.live_words());
        let _ = h.snapshot_incremental();
        h.set_shards(8);
        assert_eq!(h.shard_count(), 8);
        assert_eq!(h.digest(), digest);
        assert_eq!((h.live_objects(), h.live_words()), live);
        // Re-sharding drops the snapshot cache: the next incremental
        // snapshot is a full build, exactly like a fresh heap's first.
        let (snap, stats) = h.snapshot_incremental();
        assert_eq!(stats.slots_copied, h.high_water() as u64);
        assert_snap_matches(&snap, &h);
        // Versions survived the redistribution.
        h.set_shards(1);
        assert_eq!(h.shard_count(), 1);
        assert_eq!(h.digest(), digest);
        // Same count is a no-op (the cache survives).
        let (_, warm) = h.snapshot_incremental();
        h.set_shards(1);
        let (_, again) = h.snapshot_incremental();
        assert_eq!(
            warm.slots_copied,
            h.high_water() as u64,
            "rebuild after reshard"
        );
        assert_eq!(again.slots_copied, 0, "no-op set_shards keeps the cache");
    }

    #[test]
    fn snapshot_stats_are_shard_count_invariant() {
        let mut runs = Vec::new();
        for shards in [1usize, 4, 16] {
            let mut h = Heap::with_shards(shards);
            let mut ids = Vec::new();
            for i in 0..SNAPSHOT_PAGE_SLOTS * 4 {
                ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
            }
            let (_, st0) = h.snapshot_incremental();
            h.get_mut(ids[3]).i64s_mut()[0] = -3;
            h.get_mut(ids[100]).i64s_mut()[0] = -100;
            h.get_mut(ids[101]).i64s_mut()[0] = -101;
            let (_, st1) = h.snapshot_incremental();
            runs.push((st0, st1));
        }
        assert!(
            runs.windows(2).all(|w| w[0] == w[1]),
            "page-aligned routing keeps snapshot economics identical: {runs:?}"
        );
    }

    #[test]
    fn apply_commit_counts_touched_shards() {
        let mut h = Heap::with_shards(4);
        let mut ids = Vec::new();
        for i in 0..SNAPSHOT_PAGE_SLOTS * 4 {
            ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
        }
        // Pages 0..4 route to shards 0..4: one write each is 4 batches.
        let w = |i: usize| {
            (
                ids[i * SNAPSHOT_PAGE_SLOTS],
                0u32,
                1u32,
                Arc::new(ObjData::scalar_i64(-1)),
            )
        };
        let batches = h.apply_commit(CommitOps {
            writes: vec![w(0), w(1), w(2), w(3)],
            ..Default::default()
        });
        assert_eq!(batches, 4);
        // Two writes into one page are one batch.
        let batches = h.apply_commit(CommitOps {
            writes: vec![w(0), w(0)],
            ..Default::default()
        });
        assert_eq!(batches, 1);
        // An empty commit touches nothing (but still bumps the version).
        assert_eq!(h.apply_commit(CommitOps::default()), 0);
    }

    #[test]
    fn shard_write_fingerprints_accumulate_committed_blocks() {
        let mut h = Heap::with_shards(4);
        let mut ids = Vec::new();
        for _ in 0..SNAPSHOT_PAGE_SLOTS * 2 {
            ids.push(h.alloc(ObjData::zeros_i64(4)));
        }
        assert!(h.shard_write_fingerprint(0).is_empty());
        let target = ids[0]; // page 0 → shard 0
        h.apply_commit(CommitOps {
            writes: vec![(target, 0, 2, Arc::new(ObjData::zeros_i64(4)))],
            ..Default::default()
        });
        assert!(!h.shard_write_fingerprint(0).is_empty());
        assert_eq!(h.shard_of(target), 0);
        let other = ids[SNAPSHOT_PAGE_SLOTS]; // page 1 → shard 1
        assert_eq!(h.shard_of(other), 1);
        assert!(
            h.shard_write_fingerprint(1).is_empty(),
            "only the written shard accumulates"
        );
        // The accumulated fingerprint must cover the committed block.
        let mut probe = Fingerprint::new();
        probe.insert_range(target, 0, 2);
        assert!(h.shard_write_fingerprint(0).may_intersect(probe));
    }
}
