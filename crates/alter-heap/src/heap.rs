//! The committed memory state, snapshots of it, and commit application.
//!
//! The paper's runtime keeps one *committed memory state* plus N process-
//! private copy-on-write mappings (§4.1, Figure 4). Here the committed state
//! is a vector of `Arc`'d objects; a [`Snapshot`] is a page-chunked
//! structural copy of that vector (every object shared), and transaction
//! privacy comes from copying an object into a private overlay on first
//! write ([`crate::Tx`]) — software copy-on-write at allocation granularity.
//!
//! Snapshots come in two flavours. [`Heap::snapshot`] builds the page table
//! from scratch (O(slots), one `Arc` clone per slot — the cost this module
//! existed with for its first two releases). [`Heap::snapshot_incremental`]
//! instead patches a persistent page table kept inside the heap, guided by a
//! dirty-slot journal that every mutation path feeds, and is O(slots dirtied
//! since the previous incremental snapshot) — the analogue of the paper's
//! runtime re-establishing only the *invalidated* copy-on-write mappings at
//! a round boundary instead of remapping the whole address space. Both
//! produce bit-identical snapshot views.

use crate::object::{ObjData, ObjId};
use std::sync::Arc;

/// Slots per snapshot page. Pages are the unit of structural sharing
/// between consecutive incremental snapshots: a page none of whose slots
/// were dirtied since the last snapshot is reused as-is (one `Arc` bump for
/// the whole page instead of one per slot).
pub const SNAPSHOT_PAGE_SLOTS: usize = 64;

/// One fixed-size page of a snapshot's slot table. The array is padded
/// with `None` past the heap's current length, which stays correct across
/// heap growth because a slot is `None` until its first allocation — and
/// that allocation lands in the dirty journal.
#[derive(Clone, Debug)]
struct PageData {
    slots: [Option<Arc<ObjData>>; SNAPSHOT_PAGE_SLOTS],
}

impl PageData {
    fn empty() -> Self {
        PageData {
            slots: [const { None }; SNAPSHOT_PAGE_SLOTS],
        }
    }

    fn from_chunk(chunk: &[Option<Arc<ObjData>>]) -> Self {
        let mut page = PageData::empty();
        for (dst, src) in page.slots.iter_mut().zip(chunk) {
            *dst = src.clone();
        }
        page
    }
}

type Page = Arc<PageData>;

/// Construction cost of one snapshot, reported by
/// [`Heap::snapshot_incremental`] (the full [`Heap::snapshot`] path costs
/// `slot_count` copies and reuses nothing, by definition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Slot entries `Arc`-cloned into the page table: every slot on a full
    /// (re)build, only journalled slots on the incremental path.
    pub slots_copied: u64,
    /// Pages carried over from the previous snapshot untouched — their
    /// slots were not copied at all.
    pub pages_reused: u64,
}

/// The committed memory state.
///
/// Sequential (non-transactional) code — program setup, the sequential parts
/// between parallel loops, validation — accesses the heap directly through
/// [`Heap::get`] / [`Heap::get_mut`]. Parallel loops access it only through
/// snapshots and transactions, and mutate it only through
/// [`Heap::apply_commit`] in deterministic commit order.
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Option<Arc<ObjData>>>,
    /// Commit version at which each slot was last written.
    versions: Vec<u64>,
    /// Global commit counter; bumped once per committed transaction.
    version: u64,
    /// Slots freed by sequential code, reusable by sequential allocation.
    free: Vec<u32>,
    live: usize,
    /// Total words across live allocations, maintained incrementally
    /// (payloads are fixed-length, so only alloc/free paths move it).
    live_words: u64,
    /// Persistent page table shared with the last incremental snapshot.
    snap_pages: Vec<Page>,
    /// Whether `snap_pages` reflects some past snapshot (false until the
    /// first incremental snapshot, which does a full build).
    snap_valid: bool,
    /// Slots mutated since the last incremental snapshot, deduplicated via
    /// `journaled`. Fed unconditionally by every mutation path — the cost
    /// is one flag test per touch and the length is bounded by the slot
    /// count.
    journal: Vec<u32>,
    journaled: Vec<bool>,
    /// Monotonic snapshot epoch: bumped once per round snapshot (either
    /// flavour). The pipelined engine stamps every ticket with the epoch it
    /// executes against; a re-queued ticket gets the next (fresh) epoch.
    epoch: u64,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object from sequential code and returns its id.
    ///
    /// Reuses previously freed slots (single-threaded, so reuse is
    /// deterministic). Transactional allocation goes through
    /// [`crate::Tx::alloc`] instead, which draws from per-worker disjoint id
    /// reservations so concurrent transactions can never be handed the same
    /// id (the ALTER-allocator guarantee, §4.1).
    pub fn alloc(&mut self, data: ObjData) -> ObjId {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.slots.len()).expect("heap exhausted");
                self.slots.push(None);
                self.versions.push(0);
                idx
            }
        };
        self.live_words += data.len() as u64;
        self.slots[idx as usize] = Some(Arc::new(data));
        self.versions[idx as usize] = self.version;
        self.live += 1;
        self.mark_dirty(idx as usize);
        ObjId(idx)
    }

    /// Records that `idx` diverged from the last incremental snapshot.
    #[inline]
    fn mark_dirty(&mut self, idx: usize) {
        if idx >= self.journaled.len() {
            self.journaled.resize(idx + 1, false);
        }
        if !self.journaled[idx] {
            self.journaled[idx] = true;
            self.journal.push(idx as u32);
        }
    }

    /// Frees an object from sequential code.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live (double free or never allocated).
    pub fn free(&mut self, id: ObjId) {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("free of unknown {id}"));
        let freed = slot.take().unwrap_or_else(|| panic!("double free of {id}"));
        self.live_words -= freed.len() as u64;
        self.free.push(id.0);
        self.live -= 1;
        self.mark_dirty(id.0 as usize);
    }

    /// Borrows the committed payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    #[inline]
    pub fn get(&self, id: ObjId) -> &ObjData {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_deref())
            .unwrap_or_else(|| panic!("access to dead or unknown {id}"))
    }

    /// Whether `id` names a live allocation.
    pub fn is_live(&self, id: ObjId) -> bool {
        self.slots.get(id.0 as usize).is_some_and(|s| s.is_some())
    }

    /// Mutably borrows the committed payload of `id` from sequential code,
    /// cloning it first if a snapshot still shares it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not live.
    pub fn get_mut(&mut self, id: ObjId) -> &mut ObjData {
        self.versions[id.0 as usize] = self.version;
        self.mark_dirty(id.0 as usize);
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("access to dead or unknown {id}"));
        Arc::make_mut(slot)
    }

    /// Takes a consistent snapshot of the committed state, building the
    /// page table from scratch.
    ///
    /// Cost is one `Arc` clone per slot — the analogue of re-establishing
    /// all N copy-on-write mappings at the start of a lock-step round. The
    /// engine's hot path uses [`Heap::snapshot_incremental`] instead; this
    /// entry point stays for one-shot snapshots (dependence detection,
    /// tests) and as the A/B baseline.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            pages: self
                .slots
                .chunks(SNAPSHOT_PAGE_SLOTS)
                .map(|chunk| Arc::new(PageData::from_chunk(chunk)))
                .collect(),
            len: self.slots.len(),
            version: self.version,
        }
    }

    /// Takes a full-build round snapshot *and* advances the snapshot
    /// epoch — the engine's non-incremental round path. One-shot snapshots
    /// that are not round boundaries (dependence detection, tests) keep
    /// using [`Heap::snapshot`], which leaves the epoch alone.
    pub fn snapshot_round(&mut self) -> Snapshot {
        self.epoch += 1;
        self.snapshot()
    }

    /// The current snapshot epoch: how many round snapshots this heap has
    /// issued. Monotonic across engine runs on the same heap (convergence
    /// loops drive the engine repeatedly), so an epoch names one snapshot
    /// globally, not just within a run.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch
    }

    /// Takes a snapshot bit-identical to [`Heap::snapshot`]'s by patching
    /// the persistent page table, in O(slots dirtied since the previous
    /// incremental snapshot).
    ///
    /// The first call (and any call after [`Heap::reset_snapshot_cache`])
    /// falls back to a full build. Clean pages are shared structurally with
    /// the previous snapshot — one `Arc` bump per page; dirty pages are
    /// patched slot-by-slot, copy-on-write if the previous snapshot is
    /// still alive, in place once it has been dropped (the engine's steady
    /// state, since a round's snapshot dies at the round barrier).
    pub fn snapshot_incremental(&mut self) -> (Snapshot, SnapshotStats) {
        self.epoch += 1;
        let mut stats = SnapshotStats::default();
        let npages = self.slots.len().div_ceil(SNAPSHOT_PAGE_SLOTS);
        if self.snap_valid {
            debug_assert!(self.snap_pages.len() <= npages, "slots never shrink");
            while self.snap_pages.len() < npages {
                self.snap_pages.push(Arc::new(PageData::empty()));
            }
            let mut page_dirty = vec![false; npages];
            for i in 0..self.journal.len() {
                let idx = self.journal[i] as usize;
                let page_idx = idx / SNAPSHOT_PAGE_SLOTS;
                page_dirty[page_idx] = true;
                let page = Arc::make_mut(&mut self.snap_pages[page_idx]);
                page.slots[idx % SNAPSHOT_PAGE_SLOTS] = self.slots[idx].clone();
                self.journaled[idx] = false;
            }
            stats.slots_copied = self.journal.len() as u64;
            stats.pages_reused = page_dirty.iter().filter(|d| !**d).count() as u64;
            self.journal.clear();
        } else {
            self.snap_pages.clear();
            self.snap_pages.extend(
                self.slots
                    .chunks(SNAPSHOT_PAGE_SLOTS)
                    .map(|chunk| Arc::new(PageData::from_chunk(chunk))),
            );
            stats.slots_copied = self.slots.len() as u64;
            for i in 0..self.journal.len() {
                let idx = self.journal[i] as usize;
                self.journaled[idx] = false;
            }
            self.journal.clear();
            self.snap_valid = true;
        }
        let snap = Snapshot {
            pages: self.snap_pages.iter().cloned().collect(),
            len: self.slots.len(),
            version: self.version,
        };
        (snap, stats)
    }

    /// Drops the persistent page table; the next
    /// [`Heap::snapshot_incremental`] does a full build. Only useful to
    /// release memory between unrelated parallel phases.
    pub fn reset_snapshot_cache(&mut self) {
        self.snap_pages.clear();
        self.snap_pages.shrink_to_fit();
        self.snap_valid = false;
    }

    /// Current global commit version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Commit version at which `id` was last written.
    pub fn slot_version(&self, id: ObjId) -> u64 {
        self.versions[id.0 as usize]
    }

    /// Number of live allocations.
    pub fn live_objects(&self) -> usize {
        self.live
    }

    /// Total words across live allocations (used by the simulator's
    /// bandwidth model and by memory-budget accounting). O(1): payloads
    /// are fixed-length, so the counter moves only on alloc and free.
    pub fn live_words(&self) -> u64 {
        debug_assert_eq!(
            self.live_words,
            self.slots
                .iter()
                .flatten()
                .map(|o| o.len() as u64)
                .sum::<u64>(),
            "live-words counter diverged from the sweep"
        );
        self.live_words
    }

    /// First id that has never been allocated; parallel id reservations
    /// start here (see [`crate::IdReservation`]).
    pub fn high_water(&self) -> u32 {
        u32::try_from(self.slots.len()).expect("heap exhausted")
    }

    /// Applies a validated transaction's effects, in deterministic commit
    /// order, and bumps the commit version.
    ///
    /// Only the word ranges in the transaction's write set are merged back
    /// ([`ObjData::copy_range_from`]): snapshot isolation lets two
    /// transactions commit writes to disjoint ranges of one allocation, so a
    /// whole-object overwrite would lose the earlier commit.
    ///
    /// # Panics
    ///
    /// Panics if an op refers to a dead object (the engine validates before
    /// committing, so this indicates a runtime bug) or an alloc id collides
    /// with a live slot (an allocator invariant violation).
    pub fn apply_commit(&mut self, ops: CommitOps) {
        self.version += 1;
        for (id, lo, hi, src) in ops.writes {
            let slot_idx = id.0 as usize;
            self.versions[slot_idx] = self.version;
            self.mark_dirty(slot_idx);
            let slot = self.slots[slot_idx]
                .as_mut()
                .unwrap_or_else(|| panic!("commit write to dead {id}"));
            if lo == 0 && hi as usize == src.len() && src.len() == slot.len() {
                // Whole-object write: swap the Arc, no copy.
                *slot = src;
            } else {
                Arc::make_mut(slot).copy_range_from(&src, lo as usize, hi as usize);
            }
        }
        for (id, data) in ops.allocs {
            let idx = id.0 as usize;
            if idx >= self.slots.len() {
                self.slots.resize(idx + 1, None);
                self.versions.resize(idx + 1, 0);
            }
            assert!(
                self.slots[idx].is_none(),
                "allocator invariant violated: {id} already live at commit"
            );
            self.live_words += data.len() as u64;
            self.slots[idx] = Some(data);
            self.versions[idx] = self.version;
            self.live += 1;
            self.mark_dirty(idx);
        }
        for id in ops.frees {
            let slot = self.slots[id.0 as usize]
                .take()
                .unwrap_or_else(|| panic!("commit free of dead {id}"));
            self.live_words -= slot.len() as u64;
            drop(slot);
            self.live -= 1;
            self.mark_dirty(id.0 as usize);
            // Freed parallel slots are not recycled: the paper's allocator
            // also leaves holes rather than risk cross-process reuse races.
        }
    }

    /// Returns a deterministic digest of the committed state, for
    /// output-comparison in tests and the inference engine.
    pub fn digest(&self) -> u64 {
        // FNV-1a over (slot index, kind tag, raw words) of live slots.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(obj) = slot else { continue };
            mix(i as u64);
            match obj.as_ref() {
                ObjData::F64(v) => {
                    mix(1);
                    for x in v {
                        mix(x.to_bits());
                    }
                }
                ObjData::I64(v) => {
                    mix(2);
                    for x in v {
                        mix(*x as u64);
                    }
                }
            }
        }
        h
    }
}

/// A consistent, immutable view of the committed state at some version.
///
/// Cloning a snapshot is O(1); all transactions of one lock-step round share
/// one snapshot. The slot table is chunked into fixed-size pages
/// ([`SNAPSHOT_PAGE_SLOTS`]) so consecutive incremental snapshots can share
/// clean pages structurally; page padding past [`Snapshot::slot_count`] is
/// always `None`, so lookups need no length check.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pages: Arc<[Page]>,
    len: usize,
    version: u64,
}

impl Snapshot {
    /// Borrows the payload of `id` as of this snapshot, or `None` if the
    /// object was dead (or not yet allocated) at snapshot time.
    #[inline]
    pub fn get(&self, id: ObjId) -> Option<&ObjData> {
        let idx = id.0 as usize;
        self.pages
            .get(idx / SNAPSHOT_PAGE_SLOTS)
            .and_then(|p| p.slots[idx % SNAPSHOT_PAGE_SLOTS].as_deref())
    }

    /// Shares the payload `Arc` of `id`, for zero-copy reads.
    pub fn get_arc(&self, id: ObjId) -> Option<Arc<ObjData>> {
        let idx = id.0 as usize;
        self.pages
            .get(idx / SNAPSHOT_PAGE_SLOTS)
            .and_then(|p| p.slots[idx % SNAPSHOT_PAGE_SLOTS].clone())
    }

    /// The commit version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of slots (live or dead) visible to the snapshot.
    pub fn slot_count(&self) -> usize {
        self.len
    }
}

/// The effects of one validated transaction, applied by
/// [`Heap::apply_commit`].
#[derive(Debug, Default)]
pub struct CommitOps {
    /// `(object, lo, hi, source)` — merge words `lo..hi` of `source` into
    /// the committed object.
    pub writes: Vec<(ObjId, u32, u32, Arc<ObjData>)>,
    /// Objects allocated by the transaction, installed at their reserved ids.
    pub allocs: Vec<(ObjId, Arc<ObjData>)>,
    /// Objects freed by the transaction.
    pub frees: Vec<ObjId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_mutate_free() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_f64(1.0));
        let b = h.alloc(ObjData::zeros_i64(3));
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.get(a).f64s()[0], 1.0);
        h.get_mut(b).i64s_mut()[2] = 7;
        assert_eq!(h.get(b).i64s(), &[0, 0, 7]);
        h.free(a);
        assert_eq!(h.live_objects(), 1);
        assert!(!h.is_live(a));
        // Sequential alloc reuses the freed slot deterministically.
        let c = h.alloc(ObjData::scalar_i64(9));
        assert_eq!(c.index(), a.index());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(0));
        h.free(a);
        // Slot is now empty; freeing again must panic.
        let dead = ObjId::from_index(a.index());
        h.free(dead);
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_f64(1.0));
        let snap = h.snapshot();
        h.get_mut(a).f64s_mut()[0] = 2.0;
        assert_eq!(snap.get(a).unwrap().f64s()[0], 1.0);
        assert_eq!(h.get(a).f64s()[0], 2.0);
    }

    #[test]
    fn snapshot_does_not_see_later_allocations() {
        let mut h = Heap::new();
        let snap = h.snapshot();
        let a = h.alloc(ObjData::scalar_i64(1));
        assert!(snap.get(a).is_none());
        assert_eq!(snap.slot_count(), 0);
    }

    #[test]
    fn apply_commit_merges_ranges_not_whole_objects() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::F64(vec![0.0; 4]));
        // Two "transactions" writing disjoint ranges, both based on the
        // original snapshot contents.
        let tx1 = Arc::new(ObjData::F64(vec![1.0, 1.0, 0.0, 0.0]));
        let tx2 = Arc::new(ObjData::F64(vec![0.0, 0.0, 2.0, 2.0]));
        h.apply_commit(CommitOps {
            writes: vec![(a, 0, 2, tx1)],
            ..Default::default()
        });
        h.apply_commit(CommitOps {
            writes: vec![(a, 2, 4, tx2)],
            ..Default::default()
        });
        assert_eq!(h.get(a).f64s(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(h.version(), 2);
        assert_eq!(h.slot_version(a), 2);
    }

    #[test]
    fn apply_commit_installs_allocs_at_reserved_ids() {
        let mut h = Heap::new();
        let _ = h.alloc(ObjData::scalar_i64(0));
        let far = ObjId::from_index(10);
        h.apply_commit(CommitOps {
            allocs: vec![(far, Arc::new(ObjData::scalar_i64(42)))],
            ..Default::default()
        });
        assert_eq!(h.get(far).i64s(), &[42]);
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.high_water(), 11);
    }

    #[test]
    fn apply_commit_frees() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        h.apply_commit(CommitOps {
            frees: vec![a],
            ..Default::default()
        });
        assert!(!h.is_live(a));
        assert_eq!(h.live_objects(), 0);
    }

    #[test]
    fn digest_changes_with_content_and_identity() {
        let mut h1 = Heap::new();
        let a = h1.alloc(ObjData::scalar_f64(1.0));
        let d1 = h1.digest();
        h1.get_mut(a).f64s_mut()[0] = 2.0;
        let d2 = h1.digest();
        assert_ne!(d1, d2);

        let mut h2 = Heap::new();
        h2.alloc(ObjData::scalar_f64(2.0));
        assert_eq!(h2.digest(), d2);
    }

    #[test]
    fn snapshot_get_arc_shares_until_write() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::zeros_f64(4));
        let snap = h.snapshot();
        let arc = snap.get_arc(a).unwrap();
        // Snapshot and heap share the payload until a write forces a copy.
        assert!(std::sync::Arc::ptr_eq(&arc, &snap.get_arc(a).unwrap()));
        h.get_mut(a).f64s_mut()[0] = 5.0;
        assert_eq!(arc.f64s()[0], 0.0, "snapshot view unaffected");
        assert_eq!(h.get(a).f64s()[0], 5.0);
        assert!(snap.get_arc(ObjId::from_index(99)).is_none());
    }

    #[test]
    fn live_words_counts_all_payloads() {
        let mut h = Heap::new();
        h.alloc(ObjData::zeros_f64(10));
        let b = h.alloc(ObjData::zeros_i64(5));
        assert_eq!(h.live_words(), 15);
        h.free(b);
        assert_eq!(h.live_words(), 10);
    }

    #[test]
    fn live_words_tracks_commit_allocs_and_frees() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::zeros_f64(4));
        h.apply_commit(CommitOps {
            writes: vec![(a, 0, 4, Arc::new(ObjData::zeros_f64(4)))],
            allocs: vec![(ObjId::from_index(7), Arc::new(ObjData::zeros_i64(3)))],
            ..Default::default()
        });
        assert_eq!(h.live_words(), 7);
        h.apply_commit(CommitOps {
            frees: vec![a],
            ..Default::default()
        });
        assert_eq!(h.live_words(), 3);
    }

    /// Asserts `snap` is exactly the view [`Heap::snapshot`] would produce.
    fn assert_snap_matches(snap: &Snapshot, h: &Heap) {
        assert_eq!(snap.slot_count(), h.high_water() as usize);
        assert_eq!(snap.version(), h.version());
        for i in 0..h.high_water() + SNAPSHOT_PAGE_SLOTS as u32 {
            let id = ObjId::from_index(i);
            let expect = if h.is_live(id) { Some(h.get(id)) } else { None };
            assert_eq!(snap.get(id), expect, "slot {i}");
        }
    }

    #[test]
    fn incremental_snapshot_matches_full_snapshot() {
        let mut h = Heap::new();
        let mut ids = Vec::new();
        // Span several pages (the mutations below leave page 3 untouched).
        for i in 0..SNAPSHOT_PAGE_SLOTS * 4 {
            ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
        }
        let (s0, st0) = h.snapshot_incremental();
        assert_eq!(
            st0.slots_copied,
            h.high_water() as u64,
            "first use: full build"
        );
        assert_snap_matches(&s0, &h);
        drop(s0);

        // Dirty a handful of slots through every mutation path.
        h.get_mut(ids[3]).i64s_mut()[0] = -3;
        h.free(ids[70]);
        let reused = h.alloc(ObjData::scalar_f64(0.5)); // reuses slot 70
        assert_eq!(reused.index(), 70);
        h.apply_commit(CommitOps {
            writes: vec![(ids[130], 0, 1, Arc::new(ObjData::scalar_i64(-130)))],
            allocs: vec![(
                ObjId::from_index(h.high_water()),
                Arc::new(ObjData::zeros_f64(2)),
            )],
            frees: vec![ids[131]],
        });

        let (s1, st1) = h.snapshot_incremental();
        assert_snap_matches(&s1, &h);
        assert_eq!(st1.slots_copied, 5, "3, 70, 130, 131 and the new slot");
        assert!(st1.pages_reused >= 1, "untouched pages must be reused");

        // A clean snapshot copies nothing and reuses every page.
        let (s2, st2) = h.snapshot_incremental();
        assert_snap_matches(&s2, &h);
        assert_eq!(st2.slots_copied, 0);
        assert_eq!(st2.pages_reused, s2.pages.len() as u64);
    }

    #[test]
    fn incremental_snapshot_is_isolated_while_previous_lives() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        let (s1, _) = h.snapshot_incremental();
        h.get_mut(a).i64s_mut()[0] = 2;
        // s1 is still alive: the dirty page must be patched copy-on-write.
        let (s2, _) = h.snapshot_incremental();
        assert_eq!(s1.get(a).unwrap().i64s()[0], 1);
        assert_eq!(s2.get(a).unwrap().i64s()[0], 2);
    }

    #[test]
    fn incremental_snapshot_grows_across_page_boundaries() {
        let mut h = Heap::new();
        let (s0, _) = h.snapshot_incremental();
        assert_eq!(s0.slot_count(), 0);
        let mut ids = Vec::new();
        for i in 0..SNAPSHOT_PAGE_SLOTS + 3 {
            ids.push(h.alloc(ObjData::scalar_i64(i as i64)));
        }
        let (s1, st1) = h.snapshot_incremental();
        assert_snap_matches(&s1, &h);
        assert_eq!(st1.slots_copied, (SNAPSHOT_PAGE_SLOTS + 3) as u64);
        assert!(s1.get(ids[SNAPSHOT_PAGE_SLOTS]).is_some());
        // Growth did not leak into the earlier snapshot's view.
        assert_eq!(s0.slot_count(), 0);
    }

    #[test]
    fn reset_snapshot_cache_forces_full_rebuild() {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::scalar_i64(1));
        let _ = h.snapshot_incremental();
        h.reset_snapshot_cache();
        let (s, st) = h.snapshot_incremental();
        assert_eq!(st.slots_copied, 1);
        assert_eq!(s.get(a).unwrap().i64s()[0], 1);
    }

    #[test]
    fn snapshot_epoch_is_monotonic_across_round_snapshots() {
        let mut h = Heap::new();
        let _ = h.alloc(ObjData::scalar_i64(1));
        assert_eq!(h.snapshot_epoch(), 0);
        // Both round-snapshot flavours advance the epoch…
        let _ = h.snapshot_incremental();
        assert_eq!(h.snapshot_epoch(), 1);
        let _ = h.snapshot_round();
        assert_eq!(h.snapshot_epoch(), 2);
        // …a plain one-shot snapshot does not, and neither does dropping
        // the incremental cache (epochs stay monotonic forever).
        let _ = h.snapshot();
        h.reset_snapshot_cache();
        assert_eq!(h.snapshot_epoch(), 2);
        let _ = h.snapshot_incremental();
        assert_eq!(h.snapshot_epoch(), 3);
    }
}
