//! Transactions: isolated, instrumented views of a snapshot.
//!
//! Each loop iteration (or chunk of iterations) executes against a [`Tx`]:
//! reads come from the round's shared [`Snapshot`] unless the transaction
//! already wrote the object, in which case they come from the private
//! overlay (software copy-on-write at allocation granularity). Reads and
//! writes are recorded in word-range [`AccessSet`]s — the `InstrumentRead` /
//! `InstrumentWrite` calls the ALTER compiler inserts (§4.1).
//!
//! Read tracking is elided when the conflict policy does not need read sets
//! (`WAW`, `NONE`): this is precisely why the paper finds `StaleReads`
//! outperforming `OutOfOrder` — "enforcing StaleReads does not need read
//! instrumentation" (§7.2).

use crate::alloc::IdReservation;
use crate::fx::FxHashMap;
use crate::heap::Snapshot;
use crate::object::{ObjData, ObjId};
use crate::pool::TxBuffers;
use crate::sets::AccessSet;

/// Which access sets a transaction maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrackMode {
    /// Track reads and writes (needed by `FULL` and `RAW` conflict policies).
    ReadsAndWrites,
    /// Track writes only (sufficient for `WAW` — the StaleReads fast path).
    WritesOnly,
    /// Track nothing (DOALL / sequential replay; stats still counted).
    None,
}

impl TrackMode {
    /// Whether read instrumentation is active.
    pub fn tracks_reads(self) -> bool {
        matches!(self, TrackMode::ReadsAndWrites)
    }

    /// Whether write instrumentation is active.
    pub fn tracks_writes(self) -> bool {
        !matches!(self, TrackMode::None)
    }
}

/// Panic payload raised when a transaction exceeds its tracked-memory
/// budget. The engine converts it into an out-of-memory abort — the
/// analogue of the paper's AggloClust runs where "the machine runs out of
/// memory (due to very large read sets)" under TLS and OutOfOrder (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryExceeded {
    /// Words tracked at the moment the budget was exceeded.
    pub words: u64,
    /// The configured budget.
    pub budget: u64,
}

/// Operation counters for one transaction, fed to the virtual-time cost
/// model and to the Table 4 statistics (RW set sizes, etc.).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Instrumented read operations (one per `read_*`/`with_*` call).
    pub read_ops: u64,
    /// Words covered by read operations (a range read of n words counts n).
    pub read_words: u64,
    /// Instrumented write operations.
    pub write_ops: u64,
    /// Words covered by write operations.
    pub write_words: u64,
    /// Abstract compute work declared by the loop body via [`Tx::work`].
    pub work: u64,
    /// Memory traffic on loop-invariant data outside the heap (e.g. a
    /// read-only matrix streamed by every iteration), declared via
    /// [`Tx::traffic`]. Counts toward the bandwidth model but is never
    /// instrumented.
    pub traffic_words: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Objects freed.
    pub frees: u64,
}

impl TxStats {
    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &TxStats) {
        self.read_ops += other.read_ops;
        self.read_words += other.read_words;
        self.write_ops += other.write_ops;
        self.write_words += other.write_words;
        self.work += other.work;
        self.traffic_words += other.traffic_words;
        self.allocs += other.allocs;
        self.frees += other.frees;
    }
}

/// An isolated, instrumented view of the heap for one transaction.
pub struct Tx<'s> {
    snap: &'s Snapshot,
    overlay: FxHashMap<ObjId, ObjData>,
    reads: AccessSet,
    writes: AccessSet,
    mode: TrackMode,
    /// Ids allocated by this transaction; accesses to them are not
    /// instrumented (they cannot conflict — the paper elides instrumentation
    /// for variables "defined afresh in each iteration").
    fresh: Vec<ObjId>,
    freed: Vec<ObjId>,
    ids: IdReservation,
    stats: TxStats,
    /// Abort when tracked read+write words exceed this.
    budget_words: u64,
}

impl<'s> std::fmt::Debug for Tx<'s> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tx")
            .field("mode", &self.mode)
            .field("overlay_objects", &self.overlay.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'s> Tx<'s> {
    /// Creates a transaction over `snap` with the given tracking mode, id
    /// reservation and tracked-memory budget (in words).
    pub fn new(snap: &'s Snapshot, mode: TrackMode, ids: IdReservation, budget_words: u64) -> Self {
        Self::with_buffers(snap, mode, ids, budget_words, TxBuffers::new())
    }

    /// Like [`Tx::new`], but starting from recycled buffers (overlay map
    /// and access sets with retained capacity) handed out by a
    /// [`crate::TxBufferPool`]. The buffers must be empty; only their
    /// capacity carries over, so pooled and fresh transactions behave
    /// identically.
    pub fn with_buffers(
        snap: &'s Snapshot,
        mode: TrackMode,
        ids: IdReservation,
        budget_words: u64,
        bufs: TxBuffers,
    ) -> Self {
        debug_assert!(
            bufs.overlay.is_empty() && bufs.reads.is_empty() && bufs.writes.is_empty(),
            "pooled buffers must be released empty"
        );
        Tx {
            snap,
            overlay: bufs.overlay,
            reads: bufs.reads,
            writes: bufs.writes,
            mode,
            fresh: Vec::new(),
            freed: Vec::new(),
            ids,
            stats: TxStats::default(),
            budget_words,
        }
    }

    fn check_budget(&self) {
        let words = self.reads.words() + self.writes.words();
        if words > self.budget_words {
            std::panic::panic_any(MemoryExceeded {
                words,
                budget: self.budget_words,
            });
        }
    }

    #[inline]
    fn is_fresh(&self, id: ObjId) -> bool {
        self.fresh.contains(&id)
    }

    #[inline]
    fn track_read(&mut self, id: ObjId, lo: u32, hi: u32) {
        self.stats.read_ops += 1;
        self.stats.read_words += u64::from(hi - lo);
        if self.mode.tracks_reads() && !self.is_fresh(id) {
            self.reads.insert(id, lo, hi);
            self.check_budget();
        }
    }

    #[inline]
    fn track_write(&mut self, id: ObjId, lo: u32, hi: u32) {
        self.stats.write_ops += 1;
        self.stats.write_words += u64::from(hi - lo);
        if self.mode.tracks_writes() && !self.is_fresh(id) {
            self.writes.insert(id, lo, hi);
            self.check_budget();
        }
    }

    /// Borrows the current payload of `id` (overlay first, snapshot second)
    /// **without** recording a read. Internal helper; public reads go
    /// through the typed accessors.
    fn payload(&self, id: ObjId) -> &ObjData {
        if let Some(obj) = self.overlay.get(&id) {
            return obj;
        }
        self.snap
            .get(id)
            .unwrap_or_else(|| panic!("transaction accessed dead or unknown {id}"))
    }

    /// Ensures `id` is materialized in the private overlay (copy-on-write)
    /// and returns a mutable borrow.
    fn payload_mut(&mut self, id: ObjId) -> &mut ObjData {
        if !self.overlay.contains_key(&id) {
            let obj = self
                .snap
                .get(id)
                .unwrap_or_else(|| panic!("transaction wrote dead or unknown {id}"))
                .clone();
            self.overlay.insert(id, obj);
        }
        self.overlay.get_mut(&id).expect("just inserted")
    }

    // ----- typed scalar access -----

    /// Reads word `idx` of float object `id`.
    #[inline]
    pub fn read_f64(&mut self, id: ObjId, idx: usize) -> f64 {
        self.track_read(id, idx as u32, idx as u32 + 1);
        self.payload(id).f64s()[idx]
    }

    /// Reads word `idx` of integer object `id`.
    #[inline]
    pub fn read_i64(&mut self, id: ObjId, idx: usize) -> i64 {
        self.track_read(id, idx as u32, idx as u32 + 1);
        self.payload(id).i64s()[idx]
    }

    /// Writes word `idx` of float object `id`.
    #[inline]
    pub fn write_f64(&mut self, id: ObjId, idx: usize, v: f64) {
        self.track_write(id, idx as u32, idx as u32 + 1);
        self.payload_mut(id).f64s_mut()[idx] = v;
    }

    /// Writes word `idx` of integer object `id`.
    #[inline]
    pub fn write_i64(&mut self, id: ObjId, idx: usize, v: i64) {
        self.track_write(id, idx as u32, idx as u32 + 1);
        self.payload_mut(id).i64s_mut()[idx] = v;
    }

    // ----- range access (the paper's induction-variable-range optimization:
    // one instrumentation call covers the whole range) -----

    /// Calls `f` with words `lo..hi` of float object `id`, recording a
    /// single range read.
    pub fn with_f64s<R>(
        &mut self,
        id: ObjId,
        lo: usize,
        hi: usize,
        f: impl FnOnce(&[f64]) -> R,
    ) -> R {
        self.track_read(id, lo as u32, hi as u32);
        f(&self.payload(id).f64s()[lo..hi])
    }

    /// Calls `f` with words `lo..hi` of integer object `id`, recording a
    /// single range read.
    pub fn with_i64s<R>(
        &mut self,
        id: ObjId,
        lo: usize,
        hi: usize,
        f: impl FnOnce(&[i64]) -> R,
    ) -> R {
        self.track_read(id, lo as u32, hi as u32);
        f(&self.payload(id).i64s()[lo..hi])
    }

    /// Writes `src` into words `lo..` of float object `id` as one range write.
    pub fn write_f64s(&mut self, id: ObjId, lo: usize, src: &[f64]) {
        self.track_write(id, lo as u32, (lo + src.len()) as u32);
        self.payload_mut(id).f64s_mut()[lo..lo + src.len()].copy_from_slice(src);
    }

    /// Writes `src` into words `lo..` of integer object `id` as one range write.
    pub fn write_i64s(&mut self, id: ObjId, lo: usize, src: &[i64]) {
        self.track_write(id, lo as u32, (lo + src.len()) as u32);
        self.payload_mut(id).i64s_mut()[lo..lo + src.len()].copy_from_slice(src);
    }

    /// Calls `f` with mutable access to words `lo..hi` of float object `id`,
    /// recording one range read and one range write (read-modify-write).
    pub fn update_f64s<R>(
        &mut self,
        id: ObjId,
        lo: usize,
        hi: usize,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> R {
        self.track_read(id, lo as u32, hi as u32);
        self.track_write(id, lo as u32, hi as u32);
        f(&mut self.payload_mut(id).f64s_mut()[lo..hi])
    }

    /// Like [`Tx::update_f64s`] for integer objects.
    pub fn update_i64s<R>(
        &mut self,
        id: ObjId,
        lo: usize,
        hi: usize,
        f: impl FnOnce(&mut [i64]) -> R,
    ) -> R {
        self.track_read(id, lo as u32, hi as u32);
        self.track_write(id, lo as u32, hi as u32);
        f(&mut self.payload_mut(id).i64s_mut()[lo..hi])
    }

    // ----- object lifecycle -----

    /// Length in words of object `id` (not instrumented: object sizes are
    /// immutable, so reading one cannot race).
    pub fn len(&self, id: ObjId) -> usize {
        self.payload(id).len()
    }

    /// Allocates a fresh object from this transaction's id reservation.
    ///
    /// The returned id is guaranteed distinct from every id any concurrent
    /// transaction can allocate (the ALTER-allocator guarantee). The object
    /// becomes visible to other transactions only if this one commits.
    pub fn alloc(&mut self, data: ObjData) -> ObjId {
        let id = self.ids.next_id();
        self.stats.allocs += 1;
        self.overlay.insert(id, data);
        self.fresh.push(id);
        id
    }

    /// Frees object `id`. The free takes effect at commit; concurrently it
    /// behaves as a whole-object write for conflict purposes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not visible to this transaction.
    pub fn free(&mut self, id: ObjId) {
        if let Some(pos) = self.fresh.iter().position(|f| *f == id) {
            // Alloc+free within one transaction cancels out.
            self.fresh.swap_remove(pos);
            self.overlay.remove(&id);
            self.stats.frees += 1;
            return;
        }
        let len = self.payload(id).len() as u32;
        self.track_write(id, 0, len.max(1));
        self.overlay.remove(&id);
        self.freed.push(id);
        self.stats.frees += 1;
    }

    /// Whether `id` is visible (live in the snapshot or created here) and
    /// not freed by this transaction.
    pub fn is_live(&self, id: ObjId) -> bool {
        if self.freed.contains(&id) {
            return false;
        }
        self.overlay.contains_key(&id) || self.snap.get(id).is_some()
    }

    /// Declares `n` abstract units of compute work, consumed by the
    /// virtual-time cost model.
    #[inline]
    pub fn work(&mut self, n: u64) {
        self.stats.work += n;
    }

    /// Declares `n` words of memory traffic on loop-invariant inputs that
    /// live outside the transactional heap (read-only matrices, feature
    /// tables, …). The bandwidth model charges them like heap touches; no
    /// instrumentation or tracking happens.
    #[inline]
    pub fn traffic(&mut self, n: u64) {
        self.stats.traffic_words += n;
    }

    /// The tracking mode this transaction runs under.
    pub fn mode(&self) -> TrackMode {
        self.mode
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// The snapshot this transaction reads through.
    pub fn snapshot(&self) -> &Snapshot {
        self.snap
    }

    /// Finishes the transaction, yielding everything the commit engine
    /// needs: private writes, access sets, allocation log and counters.
    pub fn finish(self) -> TxEffects {
        let mut overlay = self.overlay;
        let allocs: Vec<(ObjId, ObjData)> = {
            let mut fresh = self.fresh;
            fresh.sort_unstable();
            fresh
                .into_iter()
                .map(|id| {
                    let data = overlay.remove(&id).expect("fresh object lost");
                    (id, data)
                })
                .collect()
        };
        TxEffects {
            overlay,
            reads: self.reads,
            writes: self.writes,
            allocs,
            frees: self.freed,
            stats: self.stats,
            alloc_high_water: self.ids.high_water(),
        }
    }
}

/// Everything a finished transaction hands to the validation/commit engine.
#[derive(Debug)]
pub struct TxEffects {
    /// Privately modified copies of pre-existing objects.
    pub overlay: FxHashMap<ObjId, ObjData>,
    /// Read set (empty unless the mode tracked reads).
    pub reads: AccessSet,
    /// Write set (empty under [`TrackMode::None`]).
    pub writes: AccessSet,
    /// Freshly allocated objects, in ascending id order.
    pub allocs: Vec<(ObjId, ObjData)>,
    /// Objects freed.
    pub frees: Vec<ObjId>,
    /// Operation counters.
    pub stats: TxStats,
    /// High-water mark of the id reservation (for advancing the heap).
    pub alloc_high_water: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;

    fn ids() -> IdReservation {
        IdReservation::new(1000, 0, 1, 16)
    }

    fn setup() -> (Heap, ObjId, ObjId) {
        let mut h = Heap::new();
        let a = h.alloc(ObjData::F64(vec![1.0, 2.0, 3.0]));
        let b = h.alloc(ObjData::I64(vec![10, 20]));
        (h, a, b)
    }

    #[test]
    fn reads_come_from_snapshot_until_written() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), u64::MAX);
        assert_eq!(tx.read_f64(a, 1), 2.0);
        tx.write_f64(a, 1, 9.0);
        assert_eq!(tx.read_f64(a, 1), 9.0, "read-your-writes");
        // Committed state untouched.
        assert_eq!(h.get(a).f64s()[1], 2.0);
    }

    #[test]
    fn access_sets_record_ranges() {
        let (h, a, b) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), u64::MAX);
        tx.with_f64s(a, 0, 3, |s| assert_eq!(s.len(), 3));
        tx.write_i64(b, 0, 5);
        let fx = tx.finish();
        assert!(fx.reads.contains_range(a, 0, 3));
        assert!(!fx.reads.contains_range(b, 0, 1));
        assert!(fx.writes.contains_range(b, 0, 1));
        assert_eq!(fx.stats.read_words, 3);
        assert_eq!(fx.stats.write_words, 1);
    }

    #[test]
    fn writes_only_mode_elides_read_set_but_counts_stats() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::WritesOnly, ids(), u64::MAX);
        tx.read_f64(a, 0);
        tx.write_f64(a, 0, 0.0);
        let fx = tx.finish();
        assert!(fx.reads.is_empty());
        assert!(!fx.writes.is_empty());
        assert_eq!(fx.stats.read_ops, 1);
    }

    #[test]
    fn none_mode_tracks_nothing() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::None, ids(), u64::MAX);
        tx.read_f64(a, 0);
        tx.write_f64(a, 0, 7.0);
        let fx = tx.finish();
        assert!(fx.reads.is_empty());
        assert!(fx.writes.is_empty());
        assert_eq!(fx.overlay.len(), 1, "overlay still captures the write");
    }

    #[test]
    fn fresh_objects_are_untracked_and_sorted_in_effects() {
        let (h, _, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), u64::MAX);
        let x = tx.alloc(ObjData::scalar_i64(1));
        let y = tx.alloc(ObjData::scalar_i64(2));
        tx.write_i64(x, 0, 11);
        assert_eq!(tx.read_i64(x, 0), 11);
        let fx = tx.finish();
        assert!(fx.reads.is_empty());
        assert!(fx.writes.is_empty());
        let alloc_ids: Vec<ObjId> = fx.allocs.iter().map(|(i, _)| *i).collect();
        assert_eq!(alloc_ids, vec![x, y]);
        assert_eq!(fx.allocs[0].1.i64s(), &[11]);
    }

    #[test]
    fn alloc_then_free_cancels() {
        let (h, _, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), u64::MAX);
        let x = tx.alloc(ObjData::scalar_i64(1));
        tx.free(x);
        assert!(!tx.is_live(x));
        let fx = tx.finish();
        assert!(fx.allocs.is_empty());
        assert!(fx.frees.is_empty());
        assert_eq!(fx.stats.allocs, 1);
        assert_eq!(fx.stats.frees, 1);
    }

    #[test]
    fn free_of_snapshot_object_is_whole_object_write() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), u64::MAX);
        tx.free(a);
        assert!(!tx.is_live(a));
        let fx = tx.finish();
        assert_eq!(fx.frees, vec![a]);
        assert!(fx.writes.contains_range(a, 0, 3));
    }

    #[test]
    fn budget_exceeded_panics_with_typed_payload() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), 2);
            tx.with_f64s(a, 0, 3, |_| {});
        }));
        let payload = result.unwrap_err();
        let me = payload
            .downcast_ref::<MemoryExceeded>()
            .expect("typed payload");
        assert_eq!(me.budget, 2);
        assert_eq!(me.words, 3);
    }

    #[test]
    fn update_records_read_and_write() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids(), u64::MAX);
        tx.update_f64s(a, 0, 2, |s| {
            s[0] += 1.0;
            s[1] += 1.0;
        });
        let fx = tx.finish();
        assert!(fx.reads.contains_range(a, 0, 2));
        assert!(fx.writes.contains_range(a, 0, 2));
    }

    #[test]
    fn work_and_len_helpers() {
        let (h, a, _) = setup();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::None, ids(), u64::MAX);
        assert_eq!(tx.len(a), 3);
        tx.work(42);
        assert_eq!(tx.stats().work, 42);
        assert_eq!(tx.mode(), TrackMode::None);
    }

    #[test]
    #[should_panic(expected = "dead or unknown")]
    fn reading_unknown_object_panics() {
        let h = Heap::new();
        let snap = h.snapshot();
        let mut tx = Tx::new(&snap, TrackMode::None, ids(), u64::MAX);
        tx.read_f64(ObjId::from_index(5), 0);
    }
}
