//! Deterministic multi-space allocation for concurrent transactions.
//!
//! The paper's ALTER-allocator "ensures safety by guaranteeing that no two
//! concurrent processes are allocated the same virtual address" and is
//! "optimized to minimally use inter-process semaphores" (§4.1). We go one
//! step further and use *no* coordination at all: before a lock-step round
//! begins, each worker `w` of `n` is handed an [`IdReservation`] that draws
//! ids from the arithmetic progression of blocks
//!
//! ```text
//! block j of worker w  =  [base + (j·n + w)·B,  base + (j·n + w)·B + B)
//! ```
//!
//! where `base` is the heap's high-water mark at round start and `B` is the
//! block size. Blocks of different workers are disjoint by construction and
//! the assignment is a pure function of `(base, w, n, B)`, so allocation is
//! both race-free and deterministic — a requirement for ALTER's determinism
//! guarantee (§4.3). Ids of aborted transactions are simply abandoned,
//! exactly as aborted processes abandon their copy-on-write pages.

use crate::object::ObjId;

/// Default number of ids per reservation block.
pub const DEFAULT_BLOCK_SIZE: u32 = 256;

/// A per-worker, per-round source of fresh object ids.
///
/// ```
/// use alter_heap::IdReservation;
/// // Two of three workers allocating from the same base never collide.
/// let mut a = IdReservation::new(100, 0, 3, 8);
/// let mut b = IdReservation::new(100, 1, 3, 8);
/// let ids_a: Vec<_> = (0..20).map(|_| a.next_id()).collect();
/// assert!((0..20).map(|_| b.next_id()).all(|id| !ids_a.contains(&id)));
/// ```
#[derive(Debug, Clone)]
pub struct IdReservation {
    base: u32,
    worker: u32,
    workers: u32,
    block_size: u32,
    /// Next block index to take.
    next_block: u32,
    /// Current position within the active block; `cur == end` means no
    /// active block.
    cur: u32,
    end: u32,
    allocated: u32,
}

impl IdReservation {
    /// Creates a reservation for `worker` (of `workers`) starting at the
    /// heap high-water mark `base`.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers`, `workers == 0`, or `block_size == 0`.
    pub fn new(base: u32, worker: usize, workers: usize, block_size: u32) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(worker < workers, "worker index out of range");
        assert!(block_size > 0, "block size must be positive");
        IdReservation {
            base,
            worker: worker as u32,
            workers: workers as u32,
            block_size,
            next_block: 0,
            cur: 0,
            end: 0,
            allocated: 0,
        }
    }

    /// Hands out the next fresh id.
    ///
    /// # Panics
    ///
    /// Panics on id-space exhaustion (more than `u32::MAX` ids).
    pub fn next_id(&mut self) -> ObjId {
        if self.cur == self.end {
            let block = self.next_block;
            self.next_block += 1;
            let offset = (block * self.workers + self.worker)
                .checked_mul(self.block_size)
                .expect("object id space exhausted");
            self.cur = self
                .base
                .checked_add(offset)
                .expect("object id space exhausted");
            self.end = self.cur + self.block_size;
        }
        let id = ObjId::from_index(self.cur);
        self.cur += 1;
        self.allocated += 1;
        id
    }

    /// One past the largest id this reservation may have handed out so far.
    /// The engine raises the heap high-water mark to the max across workers
    /// after each round.
    pub fn high_water(&self) -> u32 {
        if self.next_block == 0 {
            self.base
        } else {
            self.base
                + ((self.next_block - 1) * self.workers + self.worker) * self.block_size
                + self.block_size
        }
    }

    /// Number of ids handed out.
    pub fn allocated(&self) -> u32 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn reservations_of_distinct_workers_are_disjoint() {
        let workers = 4;
        let mut seen = HashSet::new();
        for w in 0..workers {
            let mut r = IdReservation::new(100, w, workers, 8);
            for _ in 0..50 {
                assert!(seen.insert(r.next_id()), "duplicate id from worker {w}");
            }
        }
        assert_eq!(seen.len(), 200);
        assert!(seen.iter().all(|id| id.index() >= 100));
    }

    #[test]
    fn reservation_is_deterministic() {
        let run = || {
            let mut r = IdReservation::new(10, 1, 3, 4);
            (0..10).map(|_| r.next_id().index()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // Worker 1 of 3, base 10, B=4: blocks at 10+4*1=14.. and 10+4*4=26..
        assert_eq!(run()[..5], [14, 15, 16, 17, 26]);
    }

    #[test]
    fn high_water_covers_all_handed_out_ids() {
        let mut r = IdReservation::new(0, 2, 3, 4);
        assert_eq!(r.high_water(), 0);
        let mut max = 0;
        for _ in 0..9 {
            max = max.max(r.next_id().index());
        }
        assert!(r.high_water() > max);
        assert_eq!(r.allocated(), 9);
    }

    #[test]
    fn single_worker_allocates_contiguously() {
        let mut r = IdReservation::new(5, 0, 1, 4);
        let ids: Vec<u32> = (0..6).map(|_| r.next_id().index()).collect();
        assert_eq!(ids, vec![5, 6, 7, 8, 9, 10]);
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn worker_index_validated() {
        IdReservation::new(0, 3, 3, 4);
    }
}
