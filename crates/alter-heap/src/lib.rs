//! # alter-heap — the ALTER memory substrate
//!
//! This crate implements the memory system underneath the ALTER runtime
//! (Udupa, Rajan, Thies, *ALTER: Exploiting Breakable Dependences for
//! Parallelization*, PLDI 2011):
//!
//! * a committed [`Heap`] of typed allocations ([`ObjData`]) addressed by
//!   stable [`ObjId`]s — the analogue of the paper's committed memory state;
//! * O(1)-cloneable [`Snapshot`]s, the consistent views each lock-step round
//!   starts from;
//! * [`Tx`], a private copy-on-write overlay with instrumented reads and
//!   writes recorded as word-range [`AccessSet`]s — what the paper's
//!   `InstrumentRead` / `InstrumentWrite` compiler pass produces;
//! * [`IdReservation`], a coordination-free deterministic allocator that
//!   guarantees concurrent transactions never receive the same id — the
//!   ALTER-allocator property.
//!
//! The paper achieves isolation with Win32 processes and copy-on-write page
//! mappings; this crate achieves the same semantics in safe Rust with
//! `Arc`-shared objects and per-transaction overlays (see DESIGN.md for the
//! substitution argument).
//!
//! ```
//! use alter_heap::{Heap, ObjData, Tx, TrackMode, IdReservation};
//!
//! let mut heap = Heap::new();
//! let xs = heap.alloc(ObjData::F64(vec![1.0, 2.0, 3.0]));
//!
//! let snap = heap.snapshot();
//! let ids = IdReservation::new(heap.high_water(), 0, 1, 64);
//! let mut tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
//! let sum: f64 = tx.with_f64s(xs, 0, 3, |s| s.iter().sum());
//! tx.write_f64(xs, 0, sum);
//! let effects = tx.finish();
//! assert!(effects.writes.contains_range(xs, 0, 1));
//! ```

#![warn(missing_docs)]

mod alloc;
pub mod fx;
mod heap;
mod object;
mod pool;
mod sets;
mod tx;

pub use alloc::{IdReservation, DEFAULT_BLOCK_SIZE};
pub use heap::{CommitOps, Heap, Snapshot, SnapshotStats, SNAPSHOT_PAGE_SLOTS};
pub use object::{ObjData, ObjId, ObjKind};
pub use pool::{TxBufferPool, TxBuffers};
pub use sets::{shard_of_id, AccessSet, Fingerprint, RangeSet, SHARD_LANES};
pub use tx::{MemoryExceeded, TrackMode, Tx, TxEffects, TxStats};
