//! Heap objects: typed, fixed-length allocations.
//!
//! ALTER instruments memory at *allocation granularity* (paper §4.1): the unit
//! of copy-on-write isolation is one allocation. Conflict detection, however,
//! works on *word ranges within* an allocation, mirroring the paper's
//! optimization that an array indexed by an induction variable is instrumented
//! once per range rather than once per element.

use std::fmt;

/// Identifier of a heap allocation.
///
/// An `ObjId` is stable for the lifetime of the allocation: it never changes
/// when the object is written, snapshotted, or copied into a transaction
/// overlay. This is the analogue of a virtual address in the paper's
/// multi-process runtime, and like those addresses it may be stored inside
/// other objects (e.g. as the `next` pointer of an [`crate::ObjData::I64`]
/// list node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub(crate) u32);

impl ObjId {
    /// Raw index of this allocation. Useful for diagnostics and for storing
    /// object references inside `I64` payloads.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs an `ObjId` from a raw index previously obtained with
    /// [`ObjId::index`]. The id is not validated here; using an id that does
    /// not name a live allocation will panic at the access site.
    #[inline]
    pub fn from_index(index: u32) -> Self {
        ObjId(index)
    }

    /// Encodes the id as an `i64` suitable for storing in an `I64` object.
    #[inline]
    pub fn to_i64(self) -> i64 {
        i64::from(self.0)
    }

    /// Decodes an id stored with [`ObjId::to_i64`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `0..=u32::MAX`.
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        ObjId(u32::try_from(v).expect("stored ObjId out of range"))
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// The kind of payload an object holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// 64-bit floats.
    F64,
    /// 64-bit signed integers.
    I64,
}

impl fmt::Display for ObjKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKind::F64 => f.write_str("f64"),
            ObjKind::I64 => f.write_str("i64"),
        }
    }
}

/// Payload of a heap allocation: a fixed-length typed array of 64-bit words.
///
/// Scalars are represented as length-1 arrays. The two payload kinds cover
/// everything the evaluation workloads need (floats, integers, indices,
/// booleans-as-integers, and object references via [`ObjId::to_i64`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ObjData {
    /// An array of `f64`.
    F64(Vec<f64>),
    /// An array of `i64`.
    I64(Vec<i64>),
}

impl ObjData {
    /// A length-1 float object.
    pub fn scalar_f64(v: f64) -> Self {
        ObjData::F64(vec![v])
    }

    /// A length-1 integer object.
    pub fn scalar_i64(v: i64) -> Self {
        ObjData::I64(vec![v])
    }

    /// A zero-filled float array of length `n`.
    pub fn zeros_f64(n: usize) -> Self {
        ObjData::F64(vec![0.0; n])
    }

    /// A zero-filled integer array of length `n`.
    pub fn zeros_i64(n: usize) -> Self {
        ObjData::I64(vec![0; n])
    }

    /// Number of 64-bit words in the payload.
    pub fn len(&self) -> usize {
        match self {
            ObjData::F64(v) => v.len(),
            ObjData::I64(v) => v.len(),
        }
    }

    /// Whether the payload has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload kind.
    pub fn kind(&self) -> ObjKind {
        match self {
            ObjData::F64(_) => ObjKind::F64,
            ObjData::I64(_) => ObjKind::I64,
        }
    }

    /// Borrow the payload as floats.
    ///
    /// # Panics
    ///
    /// Panics if the object holds integers.
    #[inline]
    pub fn f64s(&self) -> &[f64] {
        match self {
            ObjData::F64(v) => v,
            ObjData::I64(_) => panic!("type error: expected f64 object, found i64"),
        }
    }

    /// Mutably borrow the payload as floats.
    ///
    /// # Panics
    ///
    /// Panics if the object holds integers.
    #[inline]
    pub fn f64s_mut(&mut self) -> &mut [f64] {
        match self {
            ObjData::F64(v) => v,
            ObjData::I64(_) => panic!("type error: expected f64 object, found i64"),
        }
    }

    /// Borrow the payload as integers.
    ///
    /// # Panics
    ///
    /// Panics if the object holds floats.
    #[inline]
    pub fn i64s(&self) -> &[i64] {
        match self {
            ObjData::I64(v) => v,
            ObjData::F64(_) => panic!("type error: expected i64 object, found f64"),
        }
    }

    /// Mutably borrow the payload as integers.
    ///
    /// # Panics
    ///
    /// Panics if the object holds floats.
    #[inline]
    pub fn i64s_mut(&mut self) -> &mut [i64] {
        match self {
            ObjData::I64(v) => v,
            ObjData::F64(_) => panic!("type error: expected i64 object, found f64"),
        }
    }

    /// Copies the words in `lo..hi` from `src` into `self`.
    ///
    /// This is the commit-time merge primitive: only the word ranges recorded
    /// in a transaction's write set are copied back into the committed object,
    /// so two transactions writing disjoint ranges of the same allocation can
    /// both commit (snapshot isolation permits this; see paper §3).
    ///
    /// # Panics
    ///
    /// Panics if the kinds differ or the range is out of bounds.
    pub fn copy_range_from(&mut self, src: &ObjData, lo: usize, hi: usize) {
        match (self, src) {
            (ObjData::F64(dst), ObjData::F64(s)) => dst[lo..hi].copy_from_slice(&s[lo..hi]),
            (ObjData::I64(dst), ObjData::I64(s)) => dst[lo..hi].copy_from_slice(&s[lo..hi]),
            (dst, src) => panic!(
                "type error: cannot merge {} range into {} object",
                src.kind(),
                dst.kind()
            ),
        }
    }
}

impl Default for ObjData {
    fn default() -> Self {
        ObjData::I64(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objid_roundtrips_through_i64() {
        let id = ObjId::from_index(123_456);
        assert_eq!(ObjId::from_i64(id.to_i64()), id);
    }

    #[test]
    fn scalar_constructors() {
        assert_eq!(ObjData::scalar_f64(2.5).f64s(), &[2.5]);
        assert_eq!(ObjData::scalar_i64(-3).i64s(), &[-3]);
        assert_eq!(ObjData::zeros_f64(4).len(), 4);
        assert_eq!(ObjData::zeros_i64(0).len(), 0);
        assert!(ObjData::zeros_i64(0).is_empty());
    }

    #[test]
    fn kind_reporting() {
        assert_eq!(ObjData::scalar_f64(0.0).kind(), ObjKind::F64);
        assert_eq!(ObjData::scalar_i64(0).kind(), ObjKind::I64);
        assert_eq!(ObjKind::F64.to_string(), "f64");
    }

    #[test]
    #[should_panic(expected = "type error")]
    fn f64_accessor_panics_on_i64() {
        ObjData::scalar_i64(1).f64s();
    }

    #[test]
    #[should_panic(expected = "type error")]
    fn i64_accessor_panics_on_f64() {
        ObjData::scalar_f64(1.0).i64s();
    }

    #[test]
    fn copy_range_merges_only_requested_words() {
        let mut dst = ObjData::F64(vec![0.0; 5]);
        let src = ObjData::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        dst.copy_range_from(&src, 1, 3);
        assert_eq!(dst.f64s(), &[0.0, 2.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn copy_range_panics_on_kind_mismatch() {
        let mut dst = ObjData::zeros_f64(2);
        dst.copy_range_from(&ObjData::zeros_i64(2), 0, 1);
    }
}
