//! The deterministic phase profiler's aggregation layer.
//!
//! [`Profile`] folds the [`Event::PhaseProfile`] entries of a trace into
//! per-phase cost-unit totals and renders them two ways: a sorted hotspot
//! table (the `alter-trace --profile` / `alter-replay profile` report) and
//! folded-stack lines (`workload;phase cost`) that any flamegraph tool can
//! consume directly. Because phase costs are deterministic cost units, a
//! `Profile` is a pure function of the trace — byte-stable across reruns,
//! machines and drive modes — which is what lets `PROFILE.json` sit under
//! a CI drift check.
//!
//! Wall-clock mirroring is deliberately out-of-band: [`WallProfile`] is a
//! thread-safe accumulator the engine fills when one is attached, so
//! seconds never enter the event stream, the trace hash, or any
//! drift-checked artifact.

use crate::event::{Event, Phase};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of phases tracked (the length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = Phase::ALL.len();

/// Per-phase cost-unit totals folded from a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    totals: [u64; PHASE_COUNT],
    /// `PhaseProfile` entries folded (not rounds: a round contributes one
    /// entry per engine phase).
    entries: u64,
    /// Highest round index seen on a round-phase entry, plus one; 0 when
    /// no round phases were recorded.
    rounds: u64,
    /// Highest probe index seen on an `InferProbe` entry, plus one.
    probes: u64,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Folds the `PhaseProfile` events of a trace; all other events are
    /// ignored.
    pub fn from_events(events: &[Event]) -> Self {
        let mut p = Profile::new();
        for ev in events {
            p.observe(ev);
        }
        p
    }

    /// Folds one event (no-op unless it is a `PhaseProfile`).
    pub fn observe(&mut self, ev: &Event) {
        if let Event::PhaseProfile { round, phase, cost } = ev {
            self.record(*round, *phase, *cost);
        }
    }

    /// Records one phase accounting entry directly.
    pub fn record(&mut self, round: u64, phase: Phase, cost: u64) {
        self.totals[phase.index()] += cost;
        self.entries += 1;
        if phase == Phase::InferProbe {
            self.probes = self.probes.max(round + 1);
        } else {
            self.rounds = self.rounds.max(round + 1);
        }
    }

    /// Merges another profile's totals into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (t, o) in self.totals.iter_mut().zip(&other.totals) {
            *t += o;
        }
        self.entries += other.entries;
        self.rounds = self.rounds.max(other.rounds);
        self.probes = self.probes.max(other.probes);
    }

    /// Total cost units charged to `phase`.
    pub fn cost(&self, phase: Phase) -> u64 {
        self.totals[phase.index()]
    }

    /// Total cost units across all phases.
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// `PhaseProfile` entries folded.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Rounds covered by the round-phase entries.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Inference probes covered by the `InferProbe` entries.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Fraction of the total cost charged to `phase` (0.0 when empty).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.cost(phase) as f64 / total as f64
        }
    }

    /// Phases with their totals and shares, most expensive first; ties
    /// break on pipeline order so the table is deterministic.
    pub fn hotspots(&self) -> Vec<(Phase, u64, f64)> {
        let mut rows: Vec<(Phase, u64, f64)> = Phase::ALL
            .into_iter()
            .map(|p| (p, self.cost(p), self.share(p)))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        rows
    }

    /// The sorted hotspot table. `wall` (seconds per phase, from a
    /// [`WallProfile`]) adds an informational wall-clock column; it never
    /// affects ordering or the cost-unit columns.
    pub fn render(&self, label: &str, wall: Option<&[f64; PHASE_COUNT]>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "phase profile: {label} ({} cost units, {} round(s), {} probe(s))",
            self.total(),
            self.rounds,
            self.probes
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>8}{}",
            "phase",
            "cost units",
            "share",
            if wall.is_some() { "      seconds" } else { "" }
        );
        for (phase, cost, share) in self.hotspots() {
            if cost == 0 && wall.is_none_or(|w| w[phase.index()] == 0.0) {
                continue;
            }
            let _ = write!(
                out,
                "  {:<12} {:>14} {:>7.1}%",
                phase.as_str(),
                cost,
                share * 100.0
            );
            if let Some(w) = wall {
                let _ = write!(out, "  {:>11.6}", w[phase.index()]);
            }
            out.push('\n');
        }
        out
    }

    /// Folded-stack lines (`label;phase cost`), one per non-empty phase in
    /// pipeline order — the input format of standard flamegraph tooling.
    pub fn folded(&self, label: &str) -> String {
        let mut out = String::new();
        for phase in Phase::ALL {
            let cost = self.cost(phase);
            if cost > 0 {
                let _ = writeln!(out, "{label};{} {cost}", phase.as_str());
            }
        }
        out
    }
}

/// Thread-safe wall-clock accumulator mirroring the cost-unit profiler in
/// seconds.
///
/// The engine adds elapsed seconds per phase only when one of these is
/// attached (`ExecParams::wall_profile`), and the numbers stay outside the
/// event stream: wall time is nondeterministic by nature, so it is
/// excluded from trace hashes and every drift-checked artifact. The CLIs
/// attach one when the `ALTER_PROFILE_WALL` environment variable is set.
#[derive(Debug, Default)]
pub struct WallProfile {
    secs: Mutex<[f64; PHASE_COUNT]>,
}

impl WallProfile {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Adds `seconds` to `phase`.
    pub fn add(&self, phase: Phase, seconds: f64) {
        self.secs.lock().expect("wall profile poisoned")[phase.index()] += seconds;
    }

    /// The accumulated seconds per phase, indexed like [`Phase::ALL`].
    pub fn seconds(&self) -> [f64; PHASE_COUNT] {
        *self.secs.lock().expect("wall profile poisoned")
    }

    /// Total accumulated seconds.
    pub fn total(&self) -> f64 {
        self.seconds().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(round: u64, phase: Phase, cost: u64) -> Event {
        Event::PhaseProfile { round, phase, cost }
    }

    #[test]
    fn profile_folds_totals_rounds_and_probes() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: 4,
            },
            entry(0, Phase::Snapshot, 4),
            entry(0, Phase::Execute, 100),
            entry(0, Phase::Validate, 10),
            entry(0, Phase::Commit, 6),
            entry(1, Phase::Snapshot, 4),
            entry(1, Phase::Execute, 50),
            entry(0, Phase::InferProbe, 500),
        ];
        let p = Profile::from_events(&evs);
        assert_eq!(p.cost(Phase::Snapshot), 8);
        assert_eq!(p.cost(Phase::Execute), 150);
        assert_eq!(p.total(), 674);
        assert_eq!(p.entries(), 7);
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.probes(), 1);
        assert!((p.share(Phase::InferProbe) - 500.0 / 674.0).abs() < 1e-12);
    }

    #[test]
    fn hotspots_sort_by_cost_then_pipeline_order() {
        let mut p = Profile::new();
        p.record(0, Phase::Commit, 10);
        p.record(0, Phase::Snapshot, 10);
        p.record(0, Phase::Execute, 99);
        let rows = p.hotspots();
        assert_eq!(rows[0].0, Phase::Execute);
        // Equal costs: snapshot precedes commit (pipeline order).
        assert_eq!(rows[1].0, Phase::Snapshot);
        assert_eq!(rows[2].0, Phase::Commit);
    }

    #[test]
    fn folded_stacks_skip_empty_phases() {
        let mut p = Profile::new();
        p.record(0, Phase::Execute, 7);
        p.record(0, Phase::Validate, 3);
        assert_eq!(p.folded("genome"), "genome;execute 7\ngenome;validate 3\n");
    }

    #[test]
    fn render_includes_wall_column_only_when_given() {
        let mut p = Profile::new();
        p.record(0, Phase::Execute, 7);
        let plain = p.render("w", None);
        assert!(plain.contains("execute"));
        assert!(!plain.contains("seconds"));
        let wall = [0.0, 0.5, 0.0, 0.0, 0.0];
        let with = p.render("w", Some(&wall));
        assert!(with.contains("seconds"));
        assert!(with.contains("0.500000"));
    }

    #[test]
    fn merge_adds_totals() {
        let mut a = Profile::new();
        a.record(0, Phase::Execute, 5);
        let mut b = Profile::new();
        b.record(2, Phase::Execute, 6);
        b.record(0, Phase::InferProbe, 1);
        a.merge(&b);
        assert_eq!(a.cost(Phase::Execute), 11);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.probes(), 1);
        assert_eq!(a.entries(), 3);
    }

    #[test]
    fn wall_profile_accumulates() {
        let w = WallProfile::new();
        w.add(Phase::Snapshot, 0.25);
        w.add(Phase::Snapshot, 0.25);
        w.add(Phase::Commit, 1.0);
        assert_eq!(w.seconds()[Phase::Snapshot.index()], 0.5);
        assert!((w.total() - 1.5).abs() < 1e-12);
    }
}
