//! Recorder sinks: where emission sites send their events.
//!
//! The engine's hot path pays exactly one branch when tracing is off: every
//! emission site is written as
//!
//! ```ignore
//! if recorder.is_enabled() {
//!     recorder.record(Event::...);
//! }
//! ```
//!
//! so event payloads are never even constructed for a [`NopRecorder`].

use crate::event::Event;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A sink for trace events.
///
/// `record` takes `&self` so a recorder can be shared via `Arc` across the
/// execution stack (engine parameters clone freely); implementations use
/// interior mutability. All engine emissions happen on the coordinating
/// thread, so contention is nil — the lock in [`RingRecorder`] is taken
/// uncontended.
pub trait Recorder: Send + Sync {
    /// Whether events should be constructed and recorded at all. Emission
    /// sites branch on this before building an [`Event`].
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, ev: Event);
}

/// The zero-cost default: reports disabled, drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopRecorder;

impl Recorder for NopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: Event) {}
}

struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

/// A bounded in-memory ring buffer of events.
///
/// When the buffer is full the *oldest* event is dropped and a drop
/// counter is bumped — a flight recorder keeps the most recent history.
/// Dropping is deterministic (a pure function of the event stream and the
/// capacity), so bounded traces still hash identically across runs.
pub struct RingRecorder {
    cap: usize,
    inner: Mutex<Ring>,
}

/// Default ring capacity: enough for every round of the evaluation
/// workloads at inference scale.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

impl RingRecorder {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingRecorder {
            cap: cap.max(1),
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// The capacity this ring was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let g = self.inner.lock().expect("ring poisoned");
        g.events.iter().cloned().collect()
    }

    /// How many events were dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring poisoned").dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all held events (oldest first) and the drop
    /// count, resetting both.
    pub fn take(&self) -> (Vec<Event>, u64) {
        let mut g = self.inner.lock().expect("ring poisoned");
        let evs = g.events.drain(..).collect();
        let dropped = std::mem::take(&mut g.dropped);
        (evs, dropped)
    }

    /// Clears all held events and the drop counter.
    pub fn clear(&self) {
        let _ = self.take();
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        RingRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for RingRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingRecorder")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Recorder for RingRecorder {
    fn record(&self, ev: Event) {
        let mut g = self.inner.lock().expect("ring poisoned");
        if g.events.len() == self.cap {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event::RoundStart {
            round: n,
            tasks: 1,
            snapshot_slots: 0,
        }
    }

    #[test]
    fn nop_recorder_reports_disabled() {
        let r = NopRecorder;
        assert!(!r.is_enabled());
        r.record(ev(0)); // must not panic
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let r = RingRecorder::new(3);
        assert!(r.is_enabled());
        for n in 0..5 {
            r.record(ev(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], Event::RoundStart { round: 2, .. }));
        assert!(matches!(evs[2], Event::RoundStart { round: 4, .. }));
    }

    #[test]
    fn take_drains_and_resets() {
        let r = RingRecorder::new(2);
        r.record(ev(0));
        r.record(ev(1));
        r.record(ev(2));
        let (evs, dropped) = r.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(dropped, 1);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = RingRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(ev(0));
        r.record(ev(1));
        assert_eq!(r.len(), 1);
    }
}
