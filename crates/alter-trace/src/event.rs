//! The trace event taxonomy.
//!
//! One [`Event`] is recorded per interesting point in the transaction
//! lifecycle (engine layer), per probe of the annotation-inference search
//! (inference layer), and per abnormal termination. Events carry only
//! deterministic payloads — sequence numbers, word indices, object ids —
//! never wall-clock times or addresses, so a trace is a pure function of
//! the program and its annotation. That is what makes the trace hash a
//! determinism oracle (DESIGN.md, Observability).

use alter_heap::ObjId;

/// Which conflict check failed for a [`Event::ValidateConflict`].
///
/// Under the `FULL` policy either can fire; the event names the specific
/// overlap that was found (reads are checked first, matching validation
/// order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// The transaction's *read* set overlapped an earlier committed write
    /// set (a broken flow dependence — what `OutOfOrder`/TLS forbid).
    Raw,
    /// The transaction's *write* set overlapped an earlier committed write
    /// set (a lost update — what `StaleReads` forbids).
    Waw,
}

impl ConflictKind {
    /// Short stable name used in JSONL and rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            ConflictKind::Raw => "RAW",
            ConflictKind::Waw => "WAW",
        }
    }
}

impl std::fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One engine phase, as accounted by the deterministic phase profiler.
///
/// The first four phases partition a lock-step round: establish the
/// snapshot, execute the round's transactions, validate them against
/// earlier committers, and apply the committed effects. `InferProbe`
/// covers the annotation-inference search, one accounting entry per probe.
/// Phase costs are *cost units* (slots, words, declared work — the same
/// currency as the virtual-time cost model), never wall-clock, so
/// [`Event::PhaseProfile`] payloads inherit the trace determinism
/// contract; an env-gated wall-clock mirror lives outside the event stream
/// (see [`crate::WallProfile`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Establishing the round's memory snapshot (charged per visible slot).
    Snapshot,
    /// Running the round's transactions in isolation (charged in declared
    /// work plus instrumented words moved).
    Execute,
    /// Conflict validation against earlier committers of the round
    /// (charged in legacy `validate_words` — identical with the validation
    /// fast path on or off).
    Validate,
    /// Applying committed effects to the heap (charged per committed write
    /// and allocation word).
    Commit,
    /// One annotation-inference probe (charged the probe run's total cost
    /// units).
    InferProbe,
}

impl Phase {
    /// Every phase, in canonical (pipeline) order.
    pub const ALL: [Phase; 5] = [
        Phase::Snapshot,
        Phase::Execute,
        Phase::Validate,
        Phase::Commit,
        Phase::InferProbe,
    ];

    /// Short stable name used in JSONL, folded stacks and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Snapshot => "snapshot",
            Phase::Execute => "execute",
            Phase::Validate => "validate",
            Phase::Commit => "commit",
            Phase::InferProbe => "infer_probe",
        }
    }

    /// Index into [`Phase::ALL`]-shaped arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Snapshot => 0,
            Phase::Execute => 1,
            Phase::Validate => 2,
            Phase::Commit => 3,
            Phase::InferProbe => 4,
        }
    }

    /// Inverse of [`Phase::as_str`].
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.as_str() == s)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured trace event.
///
/// Engine events are emitted from the sequential validate/commit phase of
/// each lock-step round — never from worker threads — so their order is
/// deterministic by construction (the same argument as the engine's own
/// determinism, paper §4.3).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A lock-step round began with `tasks` transactions over a snapshot
    /// exposing `snapshot_slots` allocation slots.
    RoundStart {
        /// Round index within the run (0-based).
        round: u64,
        /// Transactions assigned to the round.
        tasks: u32,
        /// Slots visible to the round's snapshot.
        snapshot_slots: u64,
    },
    /// A transaction of the round (identified by its program-order chunk
    /// sequence number) covering `iters` iterations ran on `worker`.
    TaskStart {
        /// Program-order chunk sequence number.
        seq: u64,
        /// Worker lane the task ran on.
        worker: u32,
        /// Iterations in the chunk.
        iters: u32,
    },
    /// The full tracked read and write sets of a task entering validation,
    /// in canonical `obj:lo-hi,…` form (half-open word ranges, ascending;
    /// see [`crate::jsonl::render_set`]). Emitted only when
    /// `ExecParams::record_sets` is on — it fattens traces considerably —
    /// and immediately precedes the task's verdict event, which lets the
    /// `alter-lint` sanitizer recompute every validation verdict from the
    /// recorded sets.
    TaskSets {
        /// The task about to be validated.
        seq: u64,
        /// Canonical rendering of the tracked read set (empty under
        /// write-only tracking).
        reads: String,
        /// Canonical rendering of the tracked write set.
        writes: String,
    },
    /// Validation passed: no overlap with any earlier committed write set
    /// of the round after comparing `validate_words` words.
    ValidateOk {
        /// The validated transaction.
        seq: u64,
        /// Words compared against earlier write sets.
        validate_words: u64,
    },
    /// Validation failed: the transaction overlapped the write set of an
    /// earlier-committed transaction of the same round. Names the *first*
    /// conflicting word in deterministic (ascending object, ascending
    /// word) order and the sequence number of the committed writer that
    /// owns it.
    ValidateConflict {
        /// The failing transaction.
        seq: u64,
        /// Which check failed (RAW vs WAW).
        kind: ConflictKind,
        /// Allocation holding the first conflicting word.
        obj: ObjId,
        /// Word index of the first conflicting word within `obj`.
        word: u32,
        /// Sequence number of the earlier transaction whose committed
        /// write set owns the word.
        winner_seq: u64,
    },
    /// The transaction committed its effects to the heap.
    Commit {
        /// The committing transaction.
        seq: u64,
        /// Tracked read-set words.
        read_words: u64,
        /// Tracked write-set words.
        write_words: u64,
        /// Objects allocated by the transaction.
        allocs: u32,
        /// Objects freed by the transaction.
        frees: u32,
    },
    /// The transaction was squashed by an earlier in-order failure (it
    /// never reached validation; `by_seq` is the failing transaction).
    Squash {
        /// The squashed transaction.
        seq: u64,
        /// The earlier transaction whose failure squashed it.
        by_seq: u64,
    },
    /// A reduction delta merged at commit time.
    ReductionMerge {
        /// The committing transaction.
        seq: u64,
        /// Reduction variable (registry index).
        var: u32,
        /// Merge operator (annotation operator, e.g. `+`, `max`).
        op: &'static str,
    },
    /// A transaction exceeded the tracked-memory budget (the paper's
    /// out-of-memory abort on huge read sets, §7.1).
    Oom {
        /// Words tracked when the budget tripped.
        words: u64,
        /// The configured budget.
        budget: u64,
    },
    /// A loop body panicked. Panics suppressed by
    /// `alter_runtime::quiet` during inference probes still produce this
    /// event, so expected-crash probes remain visible in the flight
    /// recorder.
    Crash {
        /// The panic payload message.
        message: String,
    },
    /// The total work budget was exceeded (the 10×-sequential timeout
    /// analogue, §5).
    WorkBudgetExceeded {
        /// Cost units spent.
        spent: u64,
        /// The configured budget.
        budget: u64,
    },
    /// Deterministic cost-unit accounting for one engine phase of one
    /// round (or, for [`Phase::InferProbe`], one inference probe — `round`
    /// is then the probe index). Emitted only when
    /// `ExecParams::profile_phases` is on; the four round phases arrive in
    /// [`Phase::ALL`] order after the round's task events.
    PhaseProfile {
        /// Round index (probe index for `InferProbe` entries).
        round: u64,
        /// The phase being accounted.
        phase: Phase,
        /// Deterministic cost units charged to the phase.
        cost: u64,
    },
    /// The inference engine started probing one candidate annotation.
    ProbeStart {
        /// Annotation-style description, e.g.
        /// `StaleReads + Reduction(delta, +)`.
        annotation: String,
    },
    /// The inference engine classified the probe's outcome.
    ProbeOutcome {
        /// The probed annotation.
        annotation: String,
        /// Short outcome class: `success`, `crash`, `timeout`, `h.c.`,
        /// `mismatch`, `o.o.m.`.
        outcome: String,
    },
    /// The sequencer handed a ticket to a worker lane: one iteration chunk
    /// stamped with the snapshot epoch it will execute against. Emitted
    /// only when `ExecParams::trace_tickets` is on, immediately after the
    /// ticket's [`Event::TaskStart`]; every driver (sequential, scoped,
    /// pooled, pipelined) emits the same ticket lifecycle at the same
    /// points, so the events never perturb cross-driver trace identity.
    TicketIssued {
        /// Program-order ticket (= chunk sequence) number.
        seq: u64,
        /// Heap snapshot epoch the ticket executes against.
        epoch: u64,
        /// Iterations in the ticket's chunk.
        iters: u32,
    },
    /// The committer validated and retired the ticket in ticket order.
    /// Emitted (under `ExecParams::trace_tickets`) after the ticket's
    /// [`Event::Commit`].
    TicketValidated {
        /// The retired ticket.
        seq: u64,
        /// The snapshot epoch the ticket committed from.
        epoch: u64,
    },
    /// The committer rejected the ticket (conflict or in-order squash) and
    /// re-queued it with a fresh snapshot epoch. Emitted (under
    /// `ExecParams::trace_tickets`) after the ticket's
    /// [`Event::ValidateConflict`] or [`Event::Squash`]; `epoch` is the
    /// *new* epoch the ticket will re-execute against.
    TicketRequeued {
        /// The re-queued ticket (it keeps its sequence number).
        seq: u64,
        /// The fresh snapshot epoch assigned for the retry.
        epoch: u64,
    },
    /// The run finished normally.
    RunEnd {
        /// Rounds executed.
        rounds: u64,
        /// Transactions attempted (including retries and squashes).
        attempts: u64,
        /// Transactions committed.
        committed: u64,
    },
}

impl Event {
    /// Stable lowercase type tag used as the JSONL `"ev"` field.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::TaskStart { .. } => "task_start",
            Event::TaskSets { .. } => "task_sets",
            Event::ValidateOk { .. } => "validate_ok",
            Event::ValidateConflict { .. } => "validate_conflict",
            Event::Commit { .. } => "commit",
            Event::Squash { .. } => "squash",
            Event::ReductionMerge { .. } => "reduction_merge",
            Event::Oom { .. } => "oom",
            Event::Crash { .. } => "crash",
            Event::WorkBudgetExceeded { .. } => "work_budget_exceeded",
            Event::PhaseProfile { .. } => "phase_profile",
            Event::TicketIssued { .. } => "ticket_issued",
            Event::TicketValidated { .. } => "ticket_validated",
            Event::TicketRequeued { .. } => "ticket_requeued",
            Event::ProbeStart { .. } => "probe_start",
            Event::ProbeOutcome { .. } => "probe_outcome",
            Event::RunEnd { .. } => "run_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_are_distinct() {
        let evs = [
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: 0,
            },
            Event::TaskStart {
                seq: 0,
                worker: 0,
                iters: 1,
            },
            Event::TaskSets {
                seq: 0,
                reads: String::new(),
                writes: String::new(),
            },
            Event::ValidateOk {
                seq: 0,
                validate_words: 0,
            },
            Event::ValidateConflict {
                seq: 1,
                kind: ConflictKind::Waw,
                obj: ObjId::from_index(1),
                word: 0,
                winner_seq: 0,
            },
            Event::Commit {
                seq: 0,
                read_words: 0,
                write_words: 0,
                allocs: 0,
                frees: 0,
            },
            Event::Squash { seq: 2, by_seq: 1 },
            Event::ReductionMerge {
                seq: 0,
                var: 0,
                op: "+",
            },
            Event::Oom {
                words: 1,
                budget: 0,
            },
            Event::Crash {
                message: "m".into(),
            },
            Event::WorkBudgetExceeded {
                spent: 2,
                budget: 1,
            },
            Event::PhaseProfile {
                round: 0,
                phase: Phase::Snapshot,
                cost: 1,
            },
            Event::TicketIssued {
                seq: 0,
                epoch: 1,
                iters: 1,
            },
            Event::TicketValidated { seq: 0, epoch: 1 },
            Event::TicketRequeued { seq: 1, epoch: 2 },
            Event::ProbeStart {
                annotation: "TLS".into(),
            },
            Event::ProbeOutcome {
                annotation: "TLS".into(),
                outcome: "success".into(),
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 1,
                committed: 1,
            },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(Event::kind_str).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len());
    }

    #[test]
    fn conflict_kind_names() {
        assert_eq!(ConflictKind::Raw.to_string(), "RAW");
        assert_eq!(ConflictKind::Waw.as_str(), "WAW");
    }

    #[test]
    fn phase_names_round_trip_and_index_all() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::parse(p.as_str()), Some(p));
            assert_eq!(p.to_string(), p.as_str());
        }
        assert_eq!(Phase::parse("wall_clock"), None);
    }
}
