//! Aggregate metrics over a trace: counters plus fixed-bucket histograms.
//!
//! [`Metrics::from_events`] is a pure fold over an event stream, so the
//! metrics inherit the trace's determinism: the same run produces the same
//! counters and the same bucket counts, bit for bit.

use crate::event::Event;
use std::fmt::Write as _;

/// Number of histogram buckets: power-of-two buckets `[2^i, 2^(i+1))` for
/// `i` in `0..BUCKETS-1`, preceded by a dedicated zero bucket, with the
/// last bucket open-ended.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// A fixed-bucket histogram of non-negative integer samples.
///
/// Bucket 0 counts exact zeros; bucket `i` (for `i ≥ 1`) counts samples in
/// `[2^(i-1), 2^i)`; the final bucket absorbs everything larger. Power-of-
/// two buckets keep the histogram allocation-free and deterministic while
/// still resolving the orders of magnitude that matter for read/write-set
/// sizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let i = 64 - (value.leading_zeros() as usize); // value in [2^(i-1), 2^i)
            i.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Human-readable label for bucket `i` (e.g. `"0"`, `"[4,8)"`,
    /// `"≥65536"`).
    pub fn bucket_label(i: usize) -> String {
        if i == 0 {
            "0".to_owned()
        } else if i == HISTOGRAM_BUCKETS - 1 {
            format!(">={}", 1u64 << (i - 1))
        } else {
            format!("[{},{})", 1u64 << (i - 1), 1u64 << i)
        }
    }

    /// One-line summary plus the non-empty buckets, for the metrics report.
    fn render_into(&self, out: &mut String, name: &str) {
        let _ = writeln!(
            out,
            "  {name}: n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        );
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let _ = writeln!(out, "    {:>12} {c}", Self::bucket_label(i));
            }
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The metrics registry: counters and histograms folded from a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Lock-step rounds started.
    pub rounds: u64,
    /// Tasks started (transactions launched, including retries).
    pub tasks: u64,
    /// Transactions that committed.
    pub commits: u64,
    /// Transactions squashed by an earlier in-order failure.
    pub squashes: u64,
    /// Validation failures (RAW + WAW).
    pub conflicts: u64,
    /// Validation failures that were RAW overlaps.
    pub raw_conflicts: u64,
    /// Validation failures that were WAW overlaps.
    pub waw_conflicts: u64,
    /// Reduction deltas merged at commit.
    pub reduction_merges: u64,
    /// Tracked-memory budget trips.
    pub ooms: u64,
    /// Loop-body panics (including those suppressed during probes).
    pub crashes: u64,
    /// Work-budget (timeout analogue) trips.
    pub work_budget_exceeded: u64,
    /// Inference probes started.
    pub probes: u64,
    /// Histogram of per-commit read-set words.
    pub read_words: Histogram,
    /// Histogram of per-commit write-set words.
    pub write_words: Histogram,
    /// Histogram of per-validation compared words (successful validations).
    pub validate_words: Histogram,
    /// Validations whose fingerprint pre-check fell through to an exact
    /// scan. Reported by the runtime (not derived from events — the event
    /// stream is identical with the fast path on or off).
    pub fingerprint_hits: u64,
    /// Validations rejected in O(1) by the fingerprint pre-check.
    pub fingerprint_rejects: u64,
    /// Transaction buffers served from the recycling pool.
    pub pool_reuses: u64,
    /// Words actually compared by exact validation merge-scans.
    pub exact_scan_words: u64,
    /// Slot entries copied while establishing round snapshots. Reported by
    /// the runtime, like the validation counters: the event stream carries
    /// the trace-stable full-table figure (`RoundStart.snapshot_slots`),
    /// while this counter reflects what snapshot construction actually
    /// copied (far less with incremental snapshots on).
    pub snapshot_slots_copied: u64,
    /// Snapshot pages structurally shared with the previous round's
    /// snapshot instead of being copied (incremental snapshots only).
    pub snapshot_pages_reused: u64,
    /// Rounds handed to the persistent worker pool (0 under the sequential
    /// and per-round-scope drivers).
    pub pool_round_handoffs: u64,
    /// Fresh tickets handed out by the sequencer. Reported by the runtime
    /// (pipeline-ledger bookkeeping, not derived from events).
    pub tickets_issued: u64,
    /// Tickets re-queued after a conflict or in-order squash.
    pub tickets_requeued: u64,
    /// Deterministic cost units the committer spent stalled waiting for the
    /// next ticket in order (virtual time, never wall-clock).
    pub committer_stall_units: u64,
    /// Deterministic cost units worker lanes spent idle after finishing
    /// their ticket while the round drained (virtual time).
    pub worker_idle_units: u64,
    /// Words compared by shard-partitioned word-block validation scans
    /// (zero on unsharded runs).
    pub shard_validate_words: u64,
    /// Per-shard commit batches retired (each commit counts the distinct
    /// heap shards it touched).
    pub shard_commit_batches: u64,
    /// Largest word-block scan any single shard absorbed in one validation
    /// (a `max`, not a sum — see [`Metrics::record_shard_counters`]).
    pub shard_imbalance_max: u64,
}

impl Metrics {
    /// Folds an event stream into metrics.
    pub fn from_events(events: &[Event]) -> Self {
        let mut m = Metrics::default();
        for ev in events {
            m.observe(ev);
        }
        m
    }

    /// Folds one event.
    pub fn observe(&mut self, ev: &Event) {
        match ev {
            Event::RoundStart { .. } => self.rounds += 1,
            Event::TaskStart { .. } => self.tasks += 1,
            Event::ValidateOk { validate_words, .. } => {
                self.validate_words.record(*validate_words);
            }
            Event::ValidateConflict { kind, .. } => {
                self.conflicts += 1;
                match kind {
                    crate::event::ConflictKind::Raw => self.raw_conflicts += 1,
                    crate::event::ConflictKind::Waw => self.waw_conflicts += 1,
                }
            }
            Event::Commit {
                read_words,
                write_words,
                ..
            } => {
                self.commits += 1;
                self.read_words.record(*read_words);
                self.write_words.record(*write_words);
            }
            Event::Squash { .. } => self.squashes += 1,
            Event::ReductionMerge { .. } => self.reduction_merges += 1,
            Event::Oom { .. } => self.ooms += 1,
            Event::Crash { .. } => self.crashes += 1,
            Event::WorkBudgetExceeded { .. } => self.work_budget_exceeded += 1,
            Event::ProbeStart { .. } => self.probes += 1,
            // Ticket lifecycle events mirror TaskStart/verdict events the
            // registry already counts; the pipeline counters proper arrive
            // out-of-band via `record_pipeline_counters`.
            Event::TaskSets { .. }
            | Event::PhaseProfile { .. }
            | Event::TicketIssued { .. }
            | Event::TicketValidated { .. }
            | Event::TicketRequeued { .. }
            | Event::ProbeOutcome { .. }
            | Event::RunEnd { .. } => {}
        }
    }

    /// Merges the runtime's validation fast-path counters into the
    /// registry. These live outside the event stream on purpose: traces are
    /// byte-identical with the fast path on or off, so the counters arrive
    /// through run statistics instead. Plain integers keep this crate free
    /// of a runtime dependency.
    pub fn record_validation_counters(
        &mut self,
        fingerprint_hits: u64,
        fingerprint_rejects: u64,
        pool_reuses: u64,
        exact_scan_words: u64,
    ) {
        self.fingerprint_hits += fingerprint_hits;
        self.fingerprint_rejects += fingerprint_rejects;
        self.pool_reuses += pool_reuses;
        self.exact_scan_words += exact_scan_words;
    }

    /// Merges the runtime's round-overhead counters — snapshot
    /// construction and worker-pool handoffs — into the registry. Like the
    /// validation counters, these live outside the event stream: traces
    /// are byte-identical whichever snapshot mode and driver produced
    /// them, so the counters arrive through run statistics.
    pub fn record_round_counters(
        &mut self,
        snapshot_slots_copied: u64,
        snapshot_pages_reused: u64,
        pool_round_handoffs: u64,
    ) {
        self.snapshot_slots_copied += snapshot_slots_copied;
        self.snapshot_pages_reused += snapshot_pages_reused;
        self.pool_round_handoffs += pool_round_handoffs;
    }

    /// Merges the runtime's ticketed-pipeline counters into the registry.
    /// Like the other out-of-band counters, these never ride in the event
    /// stream: the stall/idle units are a pure function of the per-task
    /// cost model and the configured driver, and traces stay byte-identical
    /// whichever driver produced them.
    pub fn record_pipeline_counters(
        &mut self,
        tickets_issued: u64,
        tickets_requeued: u64,
        committer_stall_units: u64,
        worker_idle_units: u64,
    ) {
        self.tickets_issued += tickets_issued;
        self.tickets_requeued += tickets_requeued;
        self.committer_stall_units += committer_stall_units;
        self.worker_idle_units += worker_idle_units;
    }

    /// Merges the runtime's sharded-heap counters into the registry. Like
    /// the other out-of-band counters these never ride in the event stream:
    /// traces are byte-identical at every shard count, so the scan and
    /// batch economics arrive through run statistics. The first two
    /// accumulate; the imbalance ceiling combines by `max`.
    pub fn record_shard_counters(
        &mut self,
        shard_validate_words: u64,
        shard_commit_batches: u64,
        shard_imbalance_max: u64,
    ) {
        self.shard_validate_words += shard_validate_words;
        self.shard_commit_batches += shard_commit_batches;
        self.shard_imbalance_max = self.shard_imbalance_max.max(shard_imbalance_max);
    }

    /// Fraction of started tasks that did not commit (conflicted, squashed,
    /// or otherwise wasted). 0.0 when no tasks ran.
    pub fn retry_rate(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            1.0 - (self.commits.min(self.tasks) as f64 / self.tasks as f64)
        }
    }

    /// Human-readable metrics report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics:");
        let _ = writeln!(
            out,
            "  rounds={} tasks={} commits={} squashes={}",
            self.rounds, self.tasks, self.commits, self.squashes
        );
        let _ = writeln!(
            out,
            "  conflicts={} (raw={} waw={}) reduction_merges={}",
            self.conflicts, self.raw_conflicts, self.waw_conflicts, self.reduction_merges
        );
        let _ = writeln!(
            out,
            "  ooms={} crashes={} work_budget_exceeded={} probes={}",
            self.ooms, self.crashes, self.work_budget_exceeded, self.probes
        );
        let _ = writeln!(out, "  retry_rate={:.4}", self.retry_rate());
        let _ = writeln!(
            out,
            "  fingerprint_hits={} fingerprint_rejects={} pool_reuses={} exact_scan_words={}",
            self.fingerprint_hits,
            self.fingerprint_rejects,
            self.pool_reuses,
            self.exact_scan_words
        );
        let _ = writeln!(
            out,
            "  snapshot_slots_copied={} snapshot_pages_reused={} pool_round_handoffs={}",
            self.snapshot_slots_copied, self.snapshot_pages_reused, self.pool_round_handoffs
        );
        let _ = writeln!(
            out,
            "  tickets_issued={} tickets_requeued={} committer_stall_units={} worker_idle_units={}",
            self.tickets_issued,
            self.tickets_requeued,
            self.committer_stall_units,
            self.worker_idle_units
        );
        let _ = writeln!(
            out,
            "  shard_validate_words={} shard_commit_batches={} shard_imbalance_max={}",
            self.shard_validate_words, self.shard_commit_batches, self.shard_imbalance_max
        );
        self.read_words.render_into(&mut out, "read_words");
        self.write_words.render_into(&mut out, "write_words");
        self.validate_words.render_into(&mut out, "validate_words");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConflictKind;
    use alter_heap::ObjId;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.25).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 1); // 3
        assert_eq!(h.buckets()[4], 1); // 9 in [8,16)
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn metrics_fold_counts_and_retry_rate() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 2,
                snapshot_slots: 0,
            },
            Event::TaskStart {
                seq: 0,
                worker: 0,
                iters: 1,
            },
            Event::TaskStart {
                seq: 1,
                worker: 1,
                iters: 1,
            },
            Event::ValidateOk {
                seq: 0,
                validate_words: 0,
            },
            Event::Commit {
                seq: 0,
                read_words: 4,
                write_words: 2,
                allocs: 0,
                frees: 0,
            },
            Event::ValidateConflict {
                seq: 1,
                kind: ConflictKind::Waw,
                obj: ObjId::from_index(0),
                word: 0,
                winner_seq: 0,
            },
        ];
        let m = Metrics::from_events(&evs);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.tasks, 2);
        assert_eq!(m.commits, 1);
        assert_eq!(m.conflicts, 1);
        assert_eq!(m.waw_conflicts, 1);
        assert_eq!(m.raw_conflicts, 0);
        assert!((m.retry_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.read_words.count(), 1);
        assert_eq!(m.validate_words.count(), 1);
    }

    #[test]
    fn retry_rate_with_no_tasks_is_zero() {
        assert_eq!(Metrics::default().retry_rate(), 0.0);
    }

    #[test]
    fn validation_counters_accumulate_and_render() {
        let mut m = Metrics::default();
        m.record_validation_counters(3, 7, 11, 640);
        m.record_validation_counters(1, 1, 1, 10);
        assert_eq!(m.fingerprint_hits, 4);
        assert_eq!(m.fingerprint_rejects, 8);
        assert_eq!(m.pool_reuses, 12);
        assert_eq!(m.exact_scan_words, 650);
        assert!(m.render().contains("fingerprint_rejects=8"));
        assert!(m.render().contains("exact_scan_words=650"));
    }

    #[test]
    fn round_counters_accumulate_and_render() {
        let mut m = Metrics::default();
        m.record_round_counters(100, 30, 5);
        m.record_round_counters(20, 10, 2);
        assert_eq!(m.snapshot_slots_copied, 120);
        assert_eq!(m.snapshot_pages_reused, 40);
        assert_eq!(m.pool_round_handoffs, 7);
        assert!(m.render().contains("snapshot_slots_copied=120"));
        assert!(m.render().contains("pool_round_handoffs=7"));
    }

    #[test]
    fn pipeline_counters_accumulate_and_render() {
        let mut m = Metrics::default();
        m.record_pipeline_counters(8, 2, 4000, 900);
        m.record_pipeline_counters(2, 1, 500, 100);
        assert_eq!(m.tickets_issued, 10);
        assert_eq!(m.tickets_requeued, 3);
        assert_eq!(m.committer_stall_units, 4500);
        assert_eq!(m.worker_idle_units, 1000);
        assert!(m.render().contains("tickets_requeued=3"));
        assert!(m.render().contains("committer_stall_units=4500"));
    }

    #[test]
    fn shard_counters_accumulate_and_render() {
        let mut m = Metrics::default();
        m.record_shard_counters(400, 12, 90);
        m.record_shard_counters(100, 3, 250);
        m.record_shard_counters(50, 1, 10);
        assert_eq!(m.shard_validate_words, 550);
        assert_eq!(m.shard_commit_batches, 16);
        assert_eq!(m.shard_imbalance_max, 250, "imbalance combines by max");
        assert!(m.render().contains("shard_validate_words=550"));
        assert!(m.render().contains("shard_imbalance_max=250"));
    }
}
