//! Stable 64-bit trace hash — the determinism oracle.
//!
//! The hash is FNV-1a over the canonical JSONL bytes of the event stream.
//! Because events carry only deterministic payloads and the JSONL encoding
//! is canonical, two runs of the same workload under the same annotation
//! must produce the same hash; a mismatch is a determinism bug in the
//! engine (or a nondeterministic payload that leaked into an event).

use crate::event::Event;
use crate::jsonl::event_json;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over trace bytes.
#[derive(Clone, Copy, Debug)]
pub struct TraceHasher {
    state: u64,
}

impl TraceHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        TraceHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one event (as its canonical JSONL line, newline included) into
    /// the hash.
    pub fn update_event(&mut self, ev: &Event) {
        self.update(event_json(ev).as_bytes());
        self.update(b"\n");
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for TraceHasher {
    fn default() -> Self {
        TraceHasher::new()
    }
}

/// The stable 64-bit hash of an event stream.
pub fn trace_hash(events: &[Event]) -> u64 {
    let mut h = TraceHasher::new();
    for ev in events {
        h.update_event(ev);
    }
    h.finish()
}

/// Formats a trace hash the way the tooling prints it (16 hex digits).
pub fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> Vec<Event> {
        (0..n)
            .map(|round| Event::RoundStart {
                round,
                tasks: 2,
                snapshot_slots: round * 3,
            })
            .collect()
    }

    #[test]
    fn equal_streams_hash_equal() {
        assert_eq!(trace_hash(&stream(4)), trace_hash(&stream(4)));
    }

    #[test]
    fn different_streams_hash_differently() {
        assert_ne!(trace_hash(&stream(4)), trace_hash(&stream(5)));
        assert_ne!(trace_hash(&stream(0)), trace_hash(&stream(1)));
    }

    #[test]
    fn incremental_matches_batch() {
        let evs = stream(6);
        let mut h = TraceHasher::new();
        for ev in &evs {
            h.update_event(ev);
        }
        assert_eq!(h.finish(), trace_hash(&evs));
    }

    #[test]
    fn formats_as_16_hex_digits() {
        assert_eq!(format_hash(0).len(), 16);
        assert_eq!(format_hash(0xdead_beef), "00000000deadbeef");
    }
}
