//! Trace journals: a recorded run packaged for replay.
//!
//! A journal is the canonical JSONL event stream of **one** engine run
//! prefixed with a single header line carrying everything needed to
//! re-execute it — workload name, annotation, worker count, the recording
//! flags, and the trace hash of the recorded stream. The header is the
//! same hand-rolled canonical JSON as the event lines, so a journal file
//! is still plain JSONL and still fully offline.
//!
//! [`Journal::from_jsonl`] is a *validating* reader: it rejects journals
//! whose header is missing or malformed, whose round numbering is not the
//! engine's strict `0, 1, 2, …` sequence within each engine-run segment
//! (which catches reordered lines), whose last event is not terminal
//! (which catches truncation), and whose
//! recorded trace hash does not match the events actually read (which
//! catches field-level corruption that still parses). A journal that
//! loads is therefore structurally sound; whether the *run* it describes
//! is still reproducible is the replay driver's job
//! (`alter_runtime::replay`).

use crate::event::Event;
use crate::hash::{trace_hash, TraceHasher};
use crate::jsonl::{escape_into, event_json, parse_object, Fields, ParseTraceError};
use std::fmt::Write as _;

/// Magic tag identifying a journal header line.
pub const JOURNAL_MAGIC: &str = "alter-replay";
/// Journal format version this reader understands.
pub const JOURNAL_VERSION: u64 = 1;

/// The run configuration recorded at the head of a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Canonical workload name (as `alter-bench` normalizes it).
    pub workload: String,
    /// Annotation the run was recorded under (display form).
    pub annotation: String,
    /// Worker count of the recorded run.
    pub workers: u32,
    /// Whether `TaskSets` events were recorded.
    pub record_sets: bool,
    /// Whether `PhaseProfile` events were recorded.
    pub profile_phases: bool,
    /// Pipelined-committer lookahead the run was recorded under: 0 means
    /// the lock-step (barrier) driver, `n ≥ 1` means the ticketed pipeline
    /// driver with `pipeline_depth = n`. Absent in pre-pipeline journals,
    /// which read back as 0.
    pub pipeline_depth: u32,
    /// Heap shard count the run was recorded under, so replay reconstructs
    /// the identical sharded heap. Absent in pre-sharding journals, which
    /// read back as 1 (the unsharded layout — shard counts never change
    /// traces, but the header keeps replay configuration-faithful).
    pub shards: u32,
    /// Trace hash of the recorded event stream (FNV-1a over the canonical
    /// JSONL bytes, header excluded).
    pub trace_hash: u64,
}

impl JournalHeader {
    /// Renders the header as its canonical single-line JSON form.
    pub fn json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"journal\":\"{JOURNAL_MAGIC}\",\"version\":{JOURNAL_VERSION}"
        );
        s.push_str(",\"workload\":\"");
        escape_into(&mut s, &self.workload);
        s.push_str("\",\"annotation\":\"");
        escape_into(&mut s, &self.annotation);
        let _ = write!(
            s,
            "\",\"workers\":{},\"record_sets\":{},\"profile\":{},\"pipeline\":{},\"shards\":{},\"hash\":{}}}",
            self.workers,
            self.record_sets as u8,
            self.profile_phases as u8,
            self.pipeline_depth,
            self.shards,
            self.trace_hash
        );
        s
    }

    fn parse(line: &str) -> Result<JournalHeader, String> {
        let f = Fields {
            fields: parse_object(line)?,
        };
        let magic = f
            .string("journal")
            .map_err(|_| "missing journal header line".to_owned())?;
        if magic != JOURNAL_MAGIC {
            return Err(format!("bad journal magic `{magic}`"));
        }
        let version = f.int("version")?;
        if version != JOURNAL_VERSION {
            return Err(format!(
                "unsupported journal version {version} (expected {JOURNAL_VERSION})"
            ));
        }
        let flag = |key: &str| -> Result<bool, String> {
            match f.int(key)? {
                0 => Ok(false),
                1 => Ok(true),
                n => Err(format!("field `{key}` must be 0 or 1, got {n}")),
            }
        };
        Ok(JournalHeader {
            workload: f.string("workload")?,
            annotation: f.string("annotation")?,
            workers: f.int32("workers")?,
            record_sets: flag("record_sets")?,
            profile_phases: flag("profile")?,
            // Pre-pipeline journals have no `pipeline` field; default to
            // the lock-step driver so old recordings stay readable.
            pipeline_depth: match f.int32("pipeline") {
                Ok(n) => n,
                Err(msg) if msg.starts_with("missing field") => 0,
                Err(msg) => return Err(msg),
            },
            // Pre-sharding journals have no `shards` field; default to the
            // single-shard heap so old recordings stay readable.
            shards: match f.int32("shards") {
                Ok(n) => n,
                Err(msg) if msg.starts_with("missing field") => 1,
                Err(msg) => return Err(msg),
            },
            trace_hash: f.int("hash")?,
        })
    }
}

/// A validated recorded run: header, event stream, and a round index.
#[derive(Clone, Debug, PartialEq)]
pub struct Journal {
    header: JournalHeader,
    events: Vec<Event>,
    /// `rounds[r]` is the index into `events` of round `r`'s `RoundStart`.
    rounds: Vec<usize>,
}

impl Journal {
    /// Packages a freshly recorded run. The header's `trace_hash` is
    /// recomputed from `events` so the journal is always self-consistent;
    /// structural validation still applies (single run, strict round
    /// numbering, terminal final event).
    pub fn new(mut header: JournalHeader, events: Vec<Event>) -> Result<Journal, String> {
        header.trace_hash = trace_hash(&events);
        let rounds = index_rounds(&events).map_err(|(_, msg)| msg)?;
        Ok(Journal {
            header,
            events,
            rounds,
        })
    }

    /// Serializes the journal: header line, then the canonical JSONL event
    /// stream.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header.json_line();
        out.push('\n');
        for ev in &self.events {
            out.push_str(&event_json(ev));
            out.push('\n');
        }
        out
    }

    /// Parses and validates a journal file — the inverse of
    /// [`Journal::to_jsonl`]. Rejects missing/bad headers, reordered
    /// rounds, truncated streams, and event payloads that do not hash to
    /// the header's recorded trace hash.
    pub fn from_jsonl(text: &str) -> Result<Journal, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let header = loop {
            match lines.next() {
                None => {
                    return Err(ParseTraceError {
                        line: 1,
                        msg: "empty journal (missing header line)".into(),
                    })
                }
                Some((_, "")) => continue,
                Some((idx, line)) => {
                    break JournalHeader::parse(line)
                        .map_err(|msg| ParseTraceError { line: idx + 1, msg })?
                }
            }
        };
        let mut events = Vec::new();
        let mut event_lines = Vec::new();
        for (idx, line) in lines {
            if line.is_empty() {
                continue;
            }
            let at = |msg: String| ParseTraceError { line: idx + 1, msg };
            let f = Fields {
                fields: parse_object(line).map_err(at)?,
            };
            events.push(crate::jsonl::parse_event_fields(&f).map_err(at)?);
            event_lines.push(idx + 1);
        }
        let rounds = index_rounds(&events).map_err(|(pos, msg)| ParseTraceError {
            line: pos.map_or_else(
                || event_lines.last().copied().unwrap_or(1),
                |i| event_lines[i],
            ),
            msg,
        })?;
        let actual = trace_hash(&events);
        if actual != header.trace_hash {
            return Err(ParseTraceError {
                line: 1,
                msg: format!(
                    "journal hash mismatch: header says {:016x}, events hash to {actual:016x} (corrupted payload?)",
                    header.trace_hash
                ),
            });
        }
        Ok(Journal {
            header,
            events,
            rounds,
        })
    }

    /// The recorded run configuration.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// The recorded event stream.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the journal, yielding header and events.
    pub fn into_parts(self) -> (JournalHeader, Vec<Event>) {
        (self.header, self.events)
    }

    /// Number of rounds in the recorded run.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Index into [`Journal::events`] of round `r`'s `RoundStart`.
    pub fn round_start_index(&self, r: usize) -> usize {
        self.rounds[r]
    }

    /// The half-open event index range `[start, end)` covering round `r`
    /// (from its `RoundStart` up to the next round's, or to the end of the
    /// stream for the last round).
    pub fn round_span(&self, r: usize) -> (usize, usize) {
        let start = self.rounds[r];
        let end = self.rounds.get(r + 1).copied().unwrap_or(self.events.len());
        (start, end)
    }

    /// Trace hash of the event prefix `events[..upto]` — the cumulative
    /// hash the bisector compares at round boundaries.
    pub fn prefix_hash(&self, upto: usize) -> u64 {
        let mut h = TraceHasher::new();
        for ev in &self.events[..upto] {
            h.update_event(ev);
        }
        h.finish()
    }
}

/// Builds the round index, enforcing the recorded-probe shape. A probe run
/// is one or more engine-run *segments* (workloads like k-means drive the
/// target loop once per outer iteration), each numbering its rounds
/// strictly `0, 1, 2, …` and each closed by a terminal event (`run_end`,
/// `oom`, `crash`, or `work_budget_exceeded`). Anything else means lines
/// were reordered or spliced; a stream whose final event is not terminal
/// was truncated. Probe brackets are rejected — journals record a single
/// probe run, not an inference search. Errors carry the offending event
/// index (`None` = end of stream). The returned index lists `RoundStart`
/// positions in stream order (the global round ordinal, across segments).
#[allow(clippy::type_complexity)]
fn index_rounds(events: &[Event]) -> Result<Vec<usize>, (Option<usize>, String)> {
    let mut rounds = Vec::new();
    let mut expected = 0u64; // next round number within the current segment
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::RoundStart { round, .. } => {
                if *round != expected {
                    return Err((
                        Some(i),
                        format!(
                            "out-of-order round {round} (expected {expected}); journal reordered or spliced"
                        ),
                    ));
                }
                expected += 1;
                rounds.push(i);
            }
            Event::RunEnd { .. }
            | Event::Oom { .. }
            | Event::Crash { .. }
            | Event::WorkBudgetExceeded { .. } => expected = 0,
            Event::ProbeStart { .. } | Event::ProbeOutcome { .. } => {
                return Err((
                    Some(i),
                    "probe events in journal: journals record a single run, not an inference search"
                        .into(),
                ));
            }
            _ => {}
        }
    }
    match events.last() {
        None => return Err((None, "journal has no events".into())),
        Some(
            Event::RunEnd { .. }
            | Event::Oom { .. }
            | Event::Crash { .. }
            | Event::WorkBudgetExceeded { .. },
        ) => {}
        Some(other) => {
            return Err((
                Some(events.len() - 1),
                format!(
                    "journal truncated: last event `{}` is not terminal",
                    other.kind_str()
                ),
            ));
        }
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn header() -> JournalHeader {
        JournalHeader {
            workload: "genome".into(),
            annotation: "[StaleReads]".into(),
            workers: 4,
            record_sets: true,
            profile_phases: true,
            pipeline_depth: 0,
            shards: 1,
            trace_hash: 0,
        }
    }

    fn run_events() -> Vec<Event> {
        vec![
            Event::RoundStart {
                round: 0,
                tasks: 1,
                snapshot_slots: 2,
            },
            Event::TaskStart {
                seq: 0,
                worker: 0,
                iters: 4,
            },
            Event::Commit {
                seq: 0,
                read_words: 3,
                write_words: 1,
                allocs: 0,
                frees: 0,
            },
            Event::PhaseProfile {
                round: 0,
                phase: Phase::Execute,
                cost: 9,
            },
            Event::RoundStart {
                round: 1,
                tasks: 1,
                snapshot_slots: 2,
            },
            Event::TaskStart {
                seq: 1,
                worker: 0,
                iters: 4,
            },
            Event::Commit {
                seq: 1,
                read_words: 3,
                write_words: 1,
                allocs: 0,
                frees: 0,
            },
            Event::RunEnd {
                rounds: 2,
                attempts: 2,
                committed: 2,
            },
        ]
    }

    #[test]
    fn journal_round_trips_and_indexes_rounds() {
        let j = Journal::new(header(), run_events()).expect("valid journal");
        let text = j.to_jsonl();
        assert!(text.starts_with("{\"journal\":\"alter-replay\",\"version\":1,"));
        let back = Journal::from_jsonl(&text).expect("parses back");
        assert_eq!(back, j);
        assert_eq!(back.round_count(), 2);
        assert_eq!(back.round_span(0), (0, 4));
        assert_eq!(back.round_span(1), (4, 8));
        assert_eq!(back.header().trace_hash, trace_hash(back.events()));
        assert_eq!(
            back.prefix_hash(back.events().len()),
            back.header().trace_hash
        );
        assert_eq!(back.prefix_hash(0), TraceHasher::new().finish());
    }

    #[test]
    fn rejects_missing_or_bad_header() {
        assert!(Journal::from_jsonl("").is_err());
        let no_header = crate::jsonl::to_jsonl(&run_events());
        assert!(Journal::from_jsonl(&no_header).is_err());
        let j = Journal::new(header(), run_events()).unwrap();
        let bad_version = j.to_jsonl().replace("\"version\":1", "\"version\":2");
        let err = Journal::from_jsonl(&bad_version).unwrap_err();
        assert!(err.msg.contains("version"), "{err}");
    }

    #[test]
    fn rejects_truncated_journal() {
        let j = Journal::new(header(), run_events()).unwrap();
        let text = j.to_jsonl();
        let cut = text.lines().collect::<Vec<_>>()[..text.lines().count() - 1].join("\n");
        let err = Journal::from_jsonl(&cut).unwrap_err();
        assert!(err.msg.contains("truncated"), "{err}");
    }

    #[test]
    fn accepts_multi_segment_runs() {
        // Workloads like k-means drive the loop once per outer iteration:
        // round numbering restarts at 0 after each terminal event.
        let mut evs = run_events();
        evs.extend(run_events());
        let j = Journal::new(header(), evs).expect("segmented run is valid");
        assert_eq!(j.round_count(), 4);
        let back = Journal::from_jsonl(&j.to_jsonl()).expect("parses back");
        assert_eq!(back.round_count(), 4);
    }

    #[test]
    fn rejects_reordered_rounds() {
        let mut evs = run_events();
        evs.swap(0, 4); // swap the two RoundStarts
        let err = Journal::new(header(), evs).unwrap_err();
        assert!(err.contains("out-of-order round"), "{err}");
    }

    #[test]
    fn rejects_field_corruption_via_hash() {
        let j = Journal::new(header(), run_events()).unwrap();
        // Corrupt one payload field in a way that still parses cleanly.
        let text = j.to_jsonl().replace("\"read_words\":3", "\"read_words\":4");
        let err = Journal::from_jsonl(&text).unwrap_err();
        assert!(err.msg.contains("hash mismatch"), "{err}");
    }

    #[test]
    fn rejects_probe_events_and_empty_streams() {
        let mut evs = run_events();
        evs.insert(
            0,
            Event::ProbeStart {
                annotation: "x".into(),
            },
        );
        assert!(Journal::new(header(), evs).is_err());
        assert!(Journal::new(header(), Vec::new()).is_err());
    }

    #[test]
    fn header_flags_round_trip() {
        let mut h = header();
        h.record_sets = false;
        h.profile_phases = false;
        h.pipeline_depth = 4;
        h.shards = 16;
        let j = Journal::new(h, run_events()).unwrap();
        let back = Journal::from_jsonl(&j.to_jsonl()).unwrap();
        assert!(!back.header().record_sets);
        assert!(!back.header().profile_phases);
        assert_eq!(back.header().pipeline_depth, 4);
        assert_eq!(back.header().shards, 16);
        assert_eq!(back.header().workload, "genome");
        assert_eq!(back.header().workers, 4);
    }

    #[test]
    fn pre_pipeline_headers_default_to_lock_step() {
        // Journals written before the pipeline field existed must still
        // load; a missing `pipeline` reads back as 0 (lock-step).
        let j = Journal::new(header(), run_events()).unwrap();
        let text = j.to_jsonl().replace(",\"pipeline\":0", "");
        let back = Journal::from_jsonl(&text).expect("old header parses");
        assert_eq!(back.header().pipeline_depth, 0);
        // A malformed (non-integer) pipeline field is still an error.
        let bad = j.to_jsonl().replace("\"pipeline\":0", "\"pipeline\":\"x\"");
        assert!(Journal::from_jsonl(&bad).is_err());
    }

    #[test]
    fn pre_sharding_headers_default_to_one_shard() {
        // Journals written before the shards field existed must still
        // load; a missing `shards` reads back as 1 (the unsharded heap).
        let j = Journal::new(header(), run_events()).unwrap();
        let text = j.to_jsonl().replace(",\"shards\":1", "");
        let back = Journal::from_jsonl(&text).expect("old header parses");
        assert_eq!(back.header().shards, 1);
        // A malformed (non-integer) shards field is still an error.
        let bad = j.to_jsonl().replace("\"shards\":1", "\"shards\":\"x\"");
        assert!(Journal::from_jsonl(&bad).is_err());
    }
}
