//! Deterministic structured tracing for the ALTER runtime.
//!
//! This crate is the observability layer of the workspace: a compact
//! [`Event`] taxonomy covering the transaction lifecycle (round start,
//! task start, validate ok/conflict, commit, squash, reduction merge,
//! OOM, crash) and the annotation-inference search (probe start/outcome),
//! a [`Recorder`] sink abstraction with a zero-cost [`NopRecorder`] and a
//! bounded [`RingRecorder`] flight buffer, plus four consumers:
//!
//! * [`Metrics`] — counters and fixed power-of-two-bucket [`Histogram`]s
//!   folded from a trace (retry rate, read/write-set sizes, validation
//!   words),
//! * [`to_jsonl`] — a canonical JSONL export (one event per line, fixed
//!   field order, no external deps),
//! * [`render_timeline`] — a human-readable round-by-round flight
//!   recorder with conflict explanations,
//! * [`trace_hash`] — a stable 64-bit FNV-1a hash over the canonical
//!   JSONL bytes.
//!
//! # Determinism contract
//!
//! Events carry only deterministic payloads (sequence numbers, word
//! indices, object ids — never wall-clock times or addresses) and engine
//! emissions happen only on the coordinating thread during the sequential
//! validate/commit phase. Therefore a trace is a pure function of the
//! program and its annotation, and [`trace_hash`] is a determinism
//! oracle: two runs of the same workload under the same annotation must
//! hash identically, and any divergence is an engine bug.
//!
//! # Overhead contract
//!
//! Emission sites branch on [`Recorder::is_enabled`] *before* building an
//! event, so with a [`NopRecorder`] the hot path pays one predictable
//! branch and constructs nothing.

pub mod event;
pub mod hash;
pub mod journal;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod render;

pub use event::{ConflictKind, Event, Phase};
pub use hash::{format_hash, trace_hash, TraceHasher};
pub use journal::{Journal, JournalHeader, JOURNAL_MAGIC, JOURNAL_VERSION};
pub use jsonl::{event_json, from_jsonl, parse_set, render_set, to_jsonl, ParseTraceError};
pub use metrics::{Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use profile::{Profile, WallProfile, PHASE_COUNT};
pub use recorder::{NopRecorder, Recorder, RingRecorder, DEFAULT_RING_CAPACITY};
pub use render::render_timeline;
