//! The human-readable flight recorder: a round-by-round timeline.
//!
//! Turns a raw event stream into the view a person debugging an annotation
//! actually wants: per round, which transactions committed, which
//! conflicted (and on exactly which word, against whom), and which were
//! squashed as collateral.

use crate::event::Event;
use std::fmt::Write as _;

/// Renders the flight-recorder timeline for an event stream.
///
/// Engine events are grouped under `round N` headers; inference probes and
/// terminal events appear at top level. Unknown orderings degrade
/// gracefully — every event renders *somewhere* — so a truncated ring
/// buffer still produces a readable (if headless) tail.
pub fn render_timeline(events: &[Event]) -> String {
    let mut out = String::new();
    let mut in_round = false;
    for ev in events {
        match ev {
            Event::RoundStart {
                round,
                tasks,
                snapshot_slots,
            } => {
                let _ = writeln!(
                    out,
                    "round {round}: {tasks} task(s), snapshot of {snapshot_slots} slot(s)"
                );
                in_round = true;
            }
            Event::TaskStart { seq, worker, iters } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: started on worker {worker} ({iters} iter(s))",
                    pad(in_round)
                );
            }
            Event::TaskSets { seq, reads, writes } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: sets reads=[{reads}] writes=[{writes}]",
                    pad(in_round)
                );
            }
            Event::ValidateOk {
                seq,
                validate_words,
            } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: validated ok ({validate_words} word(s) checked)",
                    pad(in_round)
                );
            }
            Event::ValidateConflict {
                seq,
                kind,
                obj,
                word,
                winner_seq,
            } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: CONFLICT ({kind}) at {obj} word {word} — lost to committed tx {winner_seq}",
                    pad(in_round)
                );
            }
            Event::Commit {
                seq,
                read_words,
                write_words,
                allocs,
                frees,
            } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: committed (reads={read_words}w writes={write_words}w allocs={allocs} frees={frees})",
                    pad(in_round)
                );
            }
            Event::Squash { seq, by_seq } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: SQUASHED by earlier failure of tx {by_seq}",
                    pad(in_round)
                );
            }
            Event::ReductionMerge { seq, var, op } => {
                let _ = writeln!(
                    out,
                    "{}tx {seq}: merged reduction var {var} with '{op}'",
                    pad(in_round)
                );
            }
            Event::Oom { words, budget } => {
                let _ = writeln!(
                    out,
                    "{}OOM: tracked {words} word(s), budget {budget}",
                    pad(in_round)
                );
            }
            Event::Crash { message } => {
                let _ = writeln!(out, "{}CRASH: {message}", pad(in_round));
            }
            Event::WorkBudgetExceeded { spent, budget } => {
                let _ = writeln!(
                    out,
                    "{}WORK BUDGET EXCEEDED: spent {spent} of {budget} cost unit(s)",
                    pad(in_round)
                );
            }
            Event::PhaseProfile { round, phase, cost } => {
                let _ = writeln!(
                    out,
                    "{}phase {phase}: {cost} cost unit(s) (round {round})",
                    pad(in_round)
                );
            }
            Event::TicketIssued { seq, epoch, iters } => {
                let _ = writeln!(
                    out,
                    "{}ticket {seq}: issued for snapshot epoch {epoch} ({iters} iter(s))",
                    pad(in_round)
                );
            }
            Event::TicketValidated { seq, epoch } => {
                let _ = writeln!(
                    out,
                    "{}ticket {seq}: retired in order (epoch {epoch})",
                    pad(in_round)
                );
            }
            Event::TicketRequeued { seq, epoch } => {
                let _ = writeln!(
                    out,
                    "{}ticket {seq}: RE-QUEUED with fresh snapshot epoch {epoch}",
                    pad(in_round)
                );
            }
            Event::ProbeStart { annotation } => {
                in_round = false;
                let _ = writeln!(out, "probe: {annotation}");
            }
            Event::ProbeOutcome {
                annotation,
                outcome,
            } => {
                in_round = false;
                let _ = writeln!(out, "probe: {annotation} -> {outcome}");
            }
            Event::RunEnd {
                rounds,
                attempts,
                committed,
            } => {
                in_round = false;
                let _ = writeln!(
                    out,
                    "run end: {rounds} round(s), {attempts} attempt(s), {committed} committed"
                );
            }
        }
    }
    out
}

fn pad(in_round: bool) -> &'static str {
    if in_round {
        "  "
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConflictKind;
    use alter_heap::ObjId;

    #[test]
    fn timeline_explains_a_conflict_and_squash() {
        let evs = vec![
            Event::RoundStart {
                round: 3,
                tasks: 3,
                snapshot_slots: 10,
            },
            Event::Commit {
                seq: 6,
                read_words: 8,
                write_words: 4,
                allocs: 1,
                frees: 0,
            },
            Event::ValidateConflict {
                seq: 7,
                kind: ConflictKind::Waw,
                obj: ObjId::from_index(5),
                word: 2,
                winner_seq: 6,
            },
            Event::Squash { seq: 8, by_seq: 7 },
            Event::RunEnd {
                rounds: 4,
                attempts: 9,
                committed: 7,
            },
        ];
        let t = render_timeline(&evs);
        assert!(t.contains("round 3: 3 task(s)"), "{t}");
        assert!(
            t.contains("tx 7: CONFLICT (WAW) at obj#5 word 2 — lost to committed tx 6"),
            "{t}"
        );
        assert!(
            t.contains("tx 8: SQUASHED by earlier failure of tx 7"),
            "{t}"
        );
        assert!(t.contains("run end: 4 round(s)"), "{t}");
    }

    #[test]
    fn probe_lines_render_at_top_level() {
        let evs = vec![
            Event::ProbeStart {
                annotation: "StaleReads cf=4".into(),
            },
            Event::ProbeOutcome {
                annotation: "StaleReads cf=4".into(),
                outcome: "success".into(),
            },
        ];
        let t = render_timeline(&evs);
        assert!(t.contains("probe: StaleReads cf=4\n"), "{t}");
        assert!(t.contains("probe: StaleReads cf=4 -> success"), "{t}");
    }
}
