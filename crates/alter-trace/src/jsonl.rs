//! JSONL export: one canonical JSON object per event, one event per line.
//!
//! The encoding is hand-rolled (no external deps) and *canonical*: field
//! order is fixed per event type and every payload is an integer or a
//! string, so byte-identical traces ⇔ identical event streams. The trace
//! hash is computed over exactly these bytes (see [`crate::hash`]).

use crate::event::Event;
use std::fmt::Write as _;

/// Escapes `s` as JSON string contents (without the surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single-line canonical JSON object.
pub fn event_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"ev\":\"{}\"", ev.kind_str());
    match ev {
        Event::RoundStart {
            round,
            tasks,
            snapshot_slots,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"tasks\":{tasks},\"snapshot_slots\":{snapshot_slots}"
            );
        }
        Event::TaskStart { seq, worker, iters } => {
            let _ = write!(s, ",\"seq\":{seq},\"worker\":{worker},\"iters\":{iters}");
        }
        Event::ValidateOk {
            seq,
            validate_words,
        } => {
            let _ = write!(s, ",\"seq\":{seq},\"validate_words\":{validate_words}");
        }
        Event::ValidateConflict {
            seq,
            kind,
            obj,
            word,
            winner_seq,
        } => {
            let _ = write!(
                s,
                ",\"seq\":{seq},\"kind\":\"{}\",\"obj\":{},\"word\":{word},\"winner_seq\":{winner_seq}",
                kind.as_str(),
                obj.index()
            );
        }
        Event::Commit {
            seq,
            read_words,
            write_words,
            allocs,
            frees,
        } => {
            let _ = write!(
                s,
                ",\"seq\":{seq},\"read_words\":{read_words},\"write_words\":{write_words},\"allocs\":{allocs},\"frees\":{frees}"
            );
        }
        Event::Squash { seq, by_seq } => {
            let _ = write!(s, ",\"seq\":{seq},\"by_seq\":{by_seq}");
        }
        Event::ReductionMerge { seq, var, op } => {
            s.push_str(",\"seq\":");
            let _ = write!(s, "{seq},\"var\":{var},\"op\":\"");
            escape_into(&mut s, op);
            s.push('"');
        }
        Event::Oom { words, budget } => {
            let _ = write!(s, ",\"words\":{words},\"budget\":{budget}");
        }
        Event::Crash { message } => {
            s.push_str(",\"message\":\"");
            escape_into(&mut s, message);
            s.push('"');
        }
        Event::WorkBudgetExceeded { spent, budget } => {
            let _ = write!(s, ",\"spent\":{spent},\"budget\":{budget}");
        }
        Event::ProbeStart { annotation } => {
            s.push_str(",\"annotation\":\"");
            escape_into(&mut s, annotation);
            s.push('"');
        }
        Event::ProbeOutcome {
            annotation,
            outcome,
        } => {
            s.push_str(",\"annotation\":\"");
            escape_into(&mut s, annotation);
            s.push_str("\",\"outcome\":\"");
            escape_into(&mut s, outcome);
            s.push('"');
        }
        Event::RunEnd {
            rounds,
            attempts,
            committed,
        } => {
            let _ = write!(
                s,
                ",\"rounds\":{rounds},\"attempts\":{attempts},\"committed\":{committed}"
            );
        }
    }
    s.push('}');
    s
}

/// Renders an event stream as JSONL (one event per line, trailing newline
/// after each line).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConflictKind;
    use alter_heap::ObjId;

    #[test]
    fn conflict_event_round_trips_all_fields() {
        let ev = Event::ValidateConflict {
            seq: 7,
            kind: ConflictKind::Waw,
            obj: ObjId::from_index(42),
            word: 3,
            winner_seq: 5,
        };
        assert_eq!(
            event_json(&ev),
            "{\"ev\":\"validate_conflict\",\"seq\":7,\"kind\":\"WAW\",\"obj\":42,\"word\":3,\"winner_seq\":5}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event::Crash {
            message: "line1\n\"quoted\"\\x\u{1}".to_owned(),
        };
        let json = event_json(&ev);
        assert!(
            json.contains("line1\\n\\\"quoted\\\"\\\\x\\u0001"),
            "{json}"
        );
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 2,
                snapshot_slots: 5,
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 2,
                committed: 2,
            },
        ];
        let jsonl = to_jsonl(&evs);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.ends_with('\n'));
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"ev\":\""));
            assert!(line.ends_with('}'));
        }
    }
}
