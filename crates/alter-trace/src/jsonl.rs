//! JSONL export and import: one canonical JSON object per event, one
//! event per line.
//!
//! The encoding is hand-rolled (no external deps) and *canonical*: field
//! order is fixed per event type and every payload is an integer or a
//! string, so byte-identical traces ⇔ identical event streams. The trace
//! hash is computed over exactly these bytes (see [`crate::hash`]).
//! [`from_jsonl`] inverts [`to_jsonl`], which is what lets the
//! `alter-lint` sanitizer replay a recorded trace offline.

use crate::event::{ConflictKind, Event, Phase};
use alter_heap::{AccessSet, ObjId};
use std::fmt::Write as _;

/// Renders an access set in canonical form: `obj:lo-hi` entries (half-open
/// word ranges) joined with `,`, ascending by object then range. The empty
/// set renders as the empty string. [`parse_set`] inverts this.
pub fn render_set(set: &AccessSet) -> String {
    let mut s = String::new();
    for (obj, ranges) in set.iter_sorted() {
        for (lo, hi) in ranges.iter() {
            if !s.is_empty() {
                s.push(',');
            }
            let _ = write!(s, "{}:{lo}-{hi}", obj.index());
        }
    }
    s
}

/// Parses the canonical `obj:lo-hi,…` form back into `(obj, lo, hi)`
/// triples (see [`render_set`]).
pub fn parse_set(s: &str) -> Result<Vec<(ObjId, u32, u32)>, String> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Ok(out);
    }
    for part in s.split(',') {
        let (obj, range) = part
            .split_once(':')
            .ok_or_else(|| format!("bad set entry `{part}`: missing `:`"))?;
        let (lo, hi) = range
            .split_once('-')
            .ok_or_else(|| format!("bad set entry `{part}`: missing `-`"))?;
        let obj: u32 = obj.parse().map_err(|_| format!("bad object in `{part}`"))?;
        let lo: u32 = lo.parse().map_err(|_| format!("bad lo in `{part}`"))?;
        let hi: u32 = hi.parse().map_err(|_| format!("bad hi in `{part}`"))?;
        if lo >= hi {
            return Err(format!("empty range in `{part}`"));
        }
        out.push((ObjId::from_index(obj), lo, hi));
    }
    Ok(out)
}

/// Escapes `s` as JSON string contents (without the surrounding quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as a single-line canonical JSON object.
pub fn event_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"ev\":\"{}\"", ev.kind_str());
    match ev {
        Event::RoundStart {
            round,
            tasks,
            snapshot_slots,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"tasks\":{tasks},\"snapshot_slots\":{snapshot_slots}"
            );
        }
        Event::TaskStart { seq, worker, iters } => {
            let _ = write!(s, ",\"seq\":{seq},\"worker\":{worker},\"iters\":{iters}");
        }
        Event::TaskSets { seq, reads, writes } => {
            let _ = write!(s, ",\"seq\":{seq},\"reads\":\"");
            escape_into(&mut s, reads);
            s.push_str("\",\"writes\":\"");
            escape_into(&mut s, writes);
            s.push('"');
        }
        Event::ValidateOk {
            seq,
            validate_words,
        } => {
            let _ = write!(s, ",\"seq\":{seq},\"validate_words\":{validate_words}");
        }
        Event::ValidateConflict {
            seq,
            kind,
            obj,
            word,
            winner_seq,
        } => {
            let _ = write!(
                s,
                ",\"seq\":{seq},\"kind\":\"{}\",\"obj\":{},\"word\":{word},\"winner_seq\":{winner_seq}",
                kind.as_str(),
                obj.index()
            );
        }
        Event::Commit {
            seq,
            read_words,
            write_words,
            allocs,
            frees,
        } => {
            let _ = write!(
                s,
                ",\"seq\":{seq},\"read_words\":{read_words},\"write_words\":{write_words},\"allocs\":{allocs},\"frees\":{frees}"
            );
        }
        Event::Squash { seq, by_seq } => {
            let _ = write!(s, ",\"seq\":{seq},\"by_seq\":{by_seq}");
        }
        Event::ReductionMerge { seq, var, op } => {
            s.push_str(",\"seq\":");
            let _ = write!(s, "{seq},\"var\":{var},\"op\":\"");
            escape_into(&mut s, op);
            s.push('"');
        }
        Event::Oom { words, budget } => {
            let _ = write!(s, ",\"words\":{words},\"budget\":{budget}");
        }
        Event::Crash { message } => {
            s.push_str(",\"message\":\"");
            escape_into(&mut s, message);
            s.push('"');
        }
        Event::WorkBudgetExceeded { spent, budget } => {
            let _ = write!(s, ",\"spent\":{spent},\"budget\":{budget}");
        }
        Event::PhaseProfile { round, phase, cost } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"phase\":\"{}\",\"cost\":{cost}",
                phase.as_str()
            );
        }
        Event::TicketIssued { seq, epoch, iters } => {
            let _ = write!(s, ",\"seq\":{seq},\"epoch\":{epoch},\"iters\":{iters}");
        }
        Event::TicketValidated { seq, epoch } | Event::TicketRequeued { seq, epoch } => {
            let _ = write!(s, ",\"seq\":{seq},\"epoch\":{epoch}");
        }
        Event::ProbeStart { annotation } => {
            s.push_str(",\"annotation\":\"");
            escape_into(&mut s, annotation);
            s.push('"');
        }
        Event::ProbeOutcome {
            annotation,
            outcome,
        } => {
            s.push_str(",\"annotation\":\"");
            escape_into(&mut s, annotation);
            s.push_str("\",\"outcome\":\"");
            escape_into(&mut s, outcome);
            s.push('"');
        }
        Event::RunEnd {
            rounds,
            attempts,
            committed,
        } => {
            let _ = write!(
                s,
                ",\"rounds\":{rounds},\"attempts\":{attempts},\"committed\":{committed}"
            );
        }
    }
    s.push('}');
    s
}

/// Renders an event stream as JSONL (one event per line, trailing newline
/// after each line).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out
}

/// A [`from_jsonl`] failure: the offending 1-based line and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseTraceError {}

/// One parsed JSON scalar: canonical traces only contain unsigned integers
/// and strings.
pub(crate) enum Val {
    Int(u64),
    Str(String),
}

/// Parses one canonical single-line JSON object into (key, value) pairs.
pub(crate) fn parse_object(line: &str) -> Result<Vec<(String, Val)>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ => return Err("expected `\"` or `}`".into()),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        let val = match chars.peek() {
            Some('"') => Val::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = chars.peek() {
                    match c.to_digit(10) {
                        Some(d) => {
                            n = n
                                .checked_mul(10)
                                .and_then(|n| n.checked_add(d as u64))
                                .ok_or_else(|| format!("integer overflow in `{key}`"))?;
                            chars.next();
                        }
                        None => break,
                    }
                }
                Val::Int(n)
            }
            _ => return Err(format!("unsupported value for `{key}`")),
        };
        fields.push((key, val));
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            _ => return Err("expected `,` or `}`".into()),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after `}`".into());
    }
    Ok(fields)
}

/// Parses a JSON string literal (cursor on the opening quote), undoing
/// [`escape_into`].
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected `\"`".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                _ => return Err("unknown escape".into()),
            },
            Some(c) => out.push(c),
        }
    }
}

pub(crate) struct Fields {
    pub(crate) fields: Vec<(String, Val)>,
}

impl Fields {
    pub(crate) fn int(&self, key: &str) -> Result<u64, String> {
        match self.fields.iter().find(|(k, _)| k == key) {
            Some((_, Val::Int(n))) => Ok(*n),
            Some(_) => Err(format!("field `{key}` is not an integer")),
            None => Err(format!("missing field `{key}`")),
        }
    }
    pub(crate) fn int32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.int(key)?).map_err(|_| format!("field `{key}` exceeds u32"))
    }
    pub(crate) fn string(&self, key: &str) -> Result<String, String> {
        match self.fields.iter().find(|(k, _)| k == key) {
            Some((_, Val::Str(s))) => Ok(s.clone()),
            Some(_) => Err(format!("field `{key}` is not a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }
}

/// Parses a canonical JSONL trace back into events — the inverse of
/// [`to_jsonl`]. Unknown event kinds and malformed lines are errors (the
/// sanitizer must not silently skip evidence); blank lines are ignored.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, ParseTraceError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| ParseTraceError { line: idx + 1, msg };
        let f = Fields {
            fields: parse_object(line).map_err(at)?,
        };
        let ev = parse_event_fields(&f).map_err(at)?;
        events.push(ev);
    }
    Ok(events)
}

pub(crate) fn parse_event_fields(f: &Fields) -> Result<Event, String> {
    let kind = f.string("ev")?;
    Ok(match kind.as_str() {
        "round_start" => Event::RoundStart {
            round: f.int("round")?,
            tasks: f.int32("tasks")?,
            snapshot_slots: f.int("snapshot_slots")?,
        },
        "task_start" => Event::TaskStart {
            seq: f.int("seq")?,
            worker: f.int32("worker")?,
            iters: f.int32("iters")?,
        },
        "task_sets" => Event::TaskSets {
            seq: f.int("seq")?,
            reads: f.string("reads")?,
            writes: f.string("writes")?,
        },
        "validate_ok" => Event::ValidateOk {
            seq: f.int("seq")?,
            validate_words: f.int("validate_words")?,
        },
        "validate_conflict" => Event::ValidateConflict {
            seq: f.int("seq")?,
            kind: match f.string("kind")?.as_str() {
                "RAW" => ConflictKind::Raw,
                "WAW" => ConflictKind::Waw,
                other => return Err(format!("unknown conflict kind `{other}`")),
            },
            obj: ObjId::from_index(f.int32("obj")?),
            word: f.int32("word")?,
            winner_seq: f.int("winner_seq")?,
        },
        "commit" => Event::Commit {
            seq: f.int("seq")?,
            read_words: f.int("read_words")?,
            write_words: f.int("write_words")?,
            allocs: f.int32("allocs")?,
            frees: f.int32("frees")?,
        },
        "squash" => Event::Squash {
            seq: f.int("seq")?,
            by_seq: f.int("by_seq")?,
        },
        "reduction_merge" => Event::ReductionMerge {
            seq: f.int("seq")?,
            var: f.int32("var")?,
            op: match f.string("op")?.as_str() {
                "+" => "+",
                "*" => "*",
                "max" => "max",
                "min" => "min",
                "and" => "and",
                "or" => "or",
                other => return Err(format!("unknown reduction op `{other}`")),
            },
        },
        "oom" => Event::Oom {
            words: f.int("words")?,
            budget: f.int("budget")?,
        },
        "crash" => Event::Crash {
            message: f.string("message")?,
        },
        "work_budget_exceeded" => Event::WorkBudgetExceeded {
            spent: f.int("spent")?,
            budget: f.int("budget")?,
        },
        "phase_profile" => Event::PhaseProfile {
            round: f.int("round")?,
            phase: {
                let s = f.string("phase")?;
                Phase::parse(&s).ok_or_else(|| format!("unknown phase `{s}`"))?
            },
            cost: f.int("cost")?,
        },
        "ticket_issued" => Event::TicketIssued {
            seq: f.int("seq")?,
            epoch: f.int("epoch")?,
            iters: f.int32("iters")?,
        },
        "ticket_validated" => Event::TicketValidated {
            seq: f.int("seq")?,
            epoch: f.int("epoch")?,
        },
        "ticket_requeued" => Event::TicketRequeued {
            seq: f.int("seq")?,
            epoch: f.int("epoch")?,
        },
        "probe_start" => Event::ProbeStart {
            annotation: f.string("annotation")?,
        },
        "probe_outcome" => Event::ProbeOutcome {
            annotation: f.string("annotation")?,
            outcome: f.string("outcome")?,
        },
        "run_end" => Event::RunEnd {
            rounds: f.int("rounds")?,
            attempts: f.int("attempts")?,
            committed: f.int("committed")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ConflictKind;
    use alter_heap::ObjId;

    #[test]
    fn conflict_event_round_trips_all_fields() {
        let ev = Event::ValidateConflict {
            seq: 7,
            kind: ConflictKind::Waw,
            obj: ObjId::from_index(42),
            word: 3,
            winner_seq: 5,
        };
        assert_eq!(
            event_json(&ev),
            "{\"ev\":\"validate_conflict\",\"seq\":7,\"kind\":\"WAW\",\"obj\":42,\"word\":3,\"winner_seq\":5}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event::Crash {
            message: "line1\n\"quoted\"\\x\u{1}".to_owned(),
        };
        let json = event_json(&ev);
        assert!(
            json.contains("line1\\n\\\"quoted\\\"\\\\x\\u0001"),
            "{json}"
        );
    }

    #[test]
    fn from_jsonl_round_trips_every_variant() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 2,
                snapshot_slots: 5,
            },
            Event::TaskStart {
                seq: 0,
                worker: 1,
                iters: 16,
            },
            Event::TaskSets {
                seq: 0,
                reads: "3:0-4,7:1-2".into(),
                writes: String::new(),
            },
            Event::ValidateOk {
                seq: 0,
                validate_words: 9,
            },
            Event::ValidateConflict {
                seq: 1,
                kind: ConflictKind::Raw,
                obj: ObjId::from_index(3),
                word: 2,
                winner_seq: 0,
            },
            Event::Commit {
                seq: 0,
                read_words: 4,
                write_words: 2,
                allocs: 1,
                frees: 0,
            },
            Event::Squash { seq: 2, by_seq: 1 },
            Event::ReductionMerge {
                seq: 0,
                var: 0,
                op: "max",
            },
            Event::Oom {
                words: 10,
                budget: 5,
            },
            Event::Crash {
                message: "boom\n\"quoted\"".into(),
            },
            Event::WorkBudgetExceeded {
                spent: 11,
                budget: 10,
            },
            Event::PhaseProfile {
                round: 3,
                phase: Phase::Validate,
                cost: 128,
            },
            Event::TicketIssued {
                seq: 4,
                epoch: 2,
                iters: 8,
            },
            Event::TicketValidated { seq: 4, epoch: 2 },
            Event::TicketRequeued { seq: 5, epoch: 3 },
            Event::ProbeStart {
                annotation: "[StaleReads]".into(),
            },
            Event::ProbeOutcome {
                annotation: "[StaleReads]".into(),
                outcome: "success".into(),
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 3,
                committed: 2,
            },
        ];
        let parsed = from_jsonl(&to_jsonl(&evs)).expect("canonical trace parses");
        assert_eq!(parsed, evs);
    }

    #[test]
    fn phase_profile_event_is_canonical() {
        let ev = Event::PhaseProfile {
            round: 7,
            phase: Phase::InferProbe,
            cost: 42,
        };
        assert_eq!(
            event_json(&ev),
            "{\"ev\":\"phase_profile\",\"round\":7,\"phase\":\"infer_probe\",\"cost\":42}"
        );
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(from_jsonl("not json\n").is_err());
        assert!(from_jsonl("{\"ev\":\"no_such_event\"}\n").is_err());
        assert!(from_jsonl(
            "{\"ev\":\"phase_profile\",\"round\":0,\"phase\":\"warp\",\"cost\":1}\n"
        )
        .is_err());
        let err = from_jsonl("{\"ev\":\"run_end\",\"rounds\":1}\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("attempts"), "{err}");
    }

    #[test]
    fn set_rendering_round_trips() {
        let mut set = AccessSet::new();
        set.insert(ObjId::from_index(7), 1, 3);
        set.insert(ObjId::from_index(2), 0, 16);
        let s = render_set(&set);
        assert_eq!(s, "2:0-16,7:1-3");
        assert_eq!(
            parse_set(&s).unwrap(),
            vec![(ObjId::from_index(2), 0, 16), (ObjId::from_index(7), 1, 3)]
        );
        assert_eq!(render_set(&AccessSet::new()), "");
        assert_eq!(parse_set("").unwrap(), vec![]);
        assert!(parse_set("7:3-3").is_err(), "empty range rejected");
        assert!(parse_set("7;3-4").is_err());
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let evs = vec![
            Event::RoundStart {
                round: 0,
                tasks: 2,
                snapshot_slots: 5,
            },
            Event::RunEnd {
                rounds: 1,
                attempts: 2,
                committed: 2,
            },
        ];
        let jsonl = to_jsonl(&evs);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.ends_with('\n'));
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"ev\":\""));
            assert!(line.ends_with('}'));
        }
    }
}
