//! Scalar loop variables that may or may not be reduction-annotated.
//!
//! The inference engine tries annotations with and without reductions on
//! the *same* loop body. A [`BoundScalar`] gives the body one way to write
//! `delta += x`: if the active `ReductionPolicy` covers the variable, the
//! update goes to the private reduction copy; otherwise it is an ordinary
//! instrumented heap read-modify-write — which creates exactly the
//! loop-carried dependence and commit conflicts the unannotated program
//! has.

use crate::annotation::RedOp;
use crate::body::TxCtx;
use crate::reduction::{RedVal, RedVarId, RedVars};
use alter_heap::{Heap, ObjData, ObjId};

/// A named scalar bound to both a heap cell and a reduction-variable slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundScalar {
    red: RedVarId,
    obj: ObjId,
    is_float: bool,
}

impl BoundScalar {
    /// Declares the scalar in both worlds with the same initial value.
    pub fn declare(
        heap: &mut Heap,
        reds: &mut RedVars,
        name: impl Into<String>,
        init: RedVal,
    ) -> Self {
        let (obj, is_float) = match init {
            RedVal::F64(v) => (heap.alloc(ObjData::scalar_f64(v)), true),
            RedVal::I64(v) => (heap.alloc(ObjData::scalar_i64(v)), false),
        };
        let red = reds.declare(name, init);
        BoundScalar { red, obj, is_float }
    }

    /// The reduction-variable handle (for building `ReductionPolicy`
    /// entries).
    pub fn red_var(&self) -> RedVarId {
        self.red
    }

    /// The heap cell backing the unannotated configuration.
    pub fn object(&self) -> ObjId {
        self.obj
    }

    fn heap_value(&self, ctx: &mut TxCtx<'_>) -> RedVal {
        if self.is_float {
            RedVal::F64(ctx.tx.read_f64(self.obj, 0))
        } else {
            RedVal::I64(ctx.tx.read_i64(self.obj, 0))
        }
    }

    fn heap_store(&self, ctx: &mut TxCtx<'_>, v: RedVal) {
        match v {
            RedVal::F64(x) => ctx.tx.write_f64(self.obj, 0, x),
            RedVal::I64(x) => ctx.tx.write_i64(self.obj, 0, x),
        }
    }

    /// Applies the source update `self op= v` inside a transaction:
    /// through the reduction machinery when annotated, through the heap
    /// otherwise.
    pub fn apply(&self, ctx: &mut TxCtx<'_>, op: RedOp, v: impl Into<RedVal>) {
        let v = v.into();
        if ctx.red_covers(self.red) {
            ctx.red_apply(self.red, op, v);
        } else {
            if let Some(log) = ctx.op_log.as_mut() {
                log.push((self.obj, op));
            }
            let cur = self.heap_value(ctx);
            self.heap_store(ctx, cur.apply(op, v));
        }
    }

    /// Source update `self += v`.
    pub fn add(&self, ctx: &mut TxCtx<'_>, v: impl Into<RedVal>) {
        self.apply(ctx, RedOp::Add, v);
    }

    /// Source update `self = max(self, v)`.
    pub fn max(&self, ctx: &mut TxCtx<'_>, v: impl Into<RedVal>) {
        self.apply(ctx, RedOp::Max, v);
    }

    /// Source update `self = min(self, v)`.
    pub fn min(&self, ctx: &mut TxCtx<'_>, v: impl Into<RedVal>) {
        self.apply(ctx, RedOp::Min, v);
    }

    /// Sets the value from sequential code (both copies), e.g.
    /// `delta = 0.0` at the top of a convergence loop.
    pub fn seq_set(&self, heap: &mut Heap, reds: &mut RedVars, v: RedVal) {
        match v {
            RedVal::F64(x) => heap.get_mut(self.obj).f64s_mut()[0] = x,
            RedVal::I64(x) => heap.get_mut(self.obj).i64s_mut()[0] = x,
        }
        reds.set(self.red, v);
    }

    /// Reads the value from sequential code after a parallel loop.
    /// `was_reduced` says whether the loop ran with this variable in its
    /// `ReductionPolicy` (i.e. which copy is authoritative); the other copy
    /// is synchronized as a side effect.
    pub fn seq_get_sync(&self, heap: &mut Heap, reds: &mut RedVars, was_reduced: bool) -> RedVal {
        let v = if was_reduced {
            reds.get(self.red)
        } else if self.is_float {
            RedVal::F64(heap.get(self.obj).f64s()[0])
        } else {
            RedVal::I64(heap.get(self.obj).i64s()[0])
        };
        self.seq_set(heap, reds, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Driver, LoopBuilder};
    use crate::params::ExecParams;

    #[test]
    fn annotated_updates_flow_through_reductions() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));
        let mut params = ExecParams::new(4, 4);
        params.reductions = vec![(delta.red_var(), RedOp::Add)];
        let stats = LoopBuilder::new(&params)
            .range(0, 64)
            .reductions(&mut reds)
            .run(&mut heap, Driver::sequential(), |ctx, _| {
                delta.add(ctx, 1.0);
            })
            .unwrap();
        assert_eq!(stats.retries(), 0, "reduction updates never conflict");
        let v = delta.seq_get_sync(&mut heap, &mut reds, true);
        assert_eq!(v.as_f64(), 64.0);
        // Heap copy synchronized.
        assert_eq!(heap.get(delta.object()).f64s()[0], 64.0);
    }

    #[test]
    fn unannotated_updates_flow_through_heap_and_conflict() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let delta = BoundScalar::declare(&mut heap, &mut reds, "delta", RedVal::F64(0.0));
        let params = ExecParams::new(4, 4); // WAW, no reductions
        let mut reds2 = reds.clone();
        let stats = LoopBuilder::new(&params)
            .range(0, 64)
            .reductions(&mut reds2)
            .run(&mut heap, Driver::sequential(), |ctx, _| {
                delta.add(ctx, 1.0);
            })
            .unwrap();
        assert!(stats.retries() > 0, "heap RMW on a shared scalar conflicts");
        let v = delta.seq_get_sync(&mut heap, &mut reds, false);
        assert_eq!(v.as_f64(), 64.0, "but the result is still exact");
    }

    #[test]
    fn seq_set_and_int_scalars() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let n = BoundScalar::declare(&mut heap, &mut reds, "n", RedVal::I64(5));
        n.seq_set(&mut heap, &mut reds, RedVal::I64(9));
        assert_eq!(heap.get(n.object()).i64s()[0], 9);
        assert_eq!(reds.get(n.red_var()).as_i64(), 9);
        assert_eq!(n.seq_get_sync(&mut heap, &mut reds, false).as_i64(), 9);
    }
}
