//! The ALTER annotation language (paper §3, Figure 3).
//!
//! ```text
//! A := (P, R)
//! P := OutOfOrder | StaleReads
//! R := ε | R; R | (var, O)
//! O := + | × | max | min | ∧ | ∨
//! ```
//!
//! Annotations are written in source as `[StaleReads]`,
//! `[OutOfOrder + Reduction(delta, +)]`, etc. This module provides the data
//! model plus a parser and pretty-printer for that concrete syntax, so the
//! inference engine can report suggestions in the same notation the paper
//! uses.

use std::fmt;
use std::str::FromStr;

/// The parallelism policy `P` of an annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Iterations may be reordered; execution must be equivalent to *some*
    /// serial ordering (conflict serializability).
    OutOfOrder,
    /// In addition to reordering, reads may be stale, drawn from a
    /// consistent snapshot (snapshot isolation).
    StaleReads,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::OutOfOrder => f.write_str("OutOfOrder"),
            Policy::StaleReads => f.write_str("StaleReads"),
        }
    }
}

/// A commutative and associative reduction operator `O`.
///
/// `+` and `×` merge by delta (`Sc := Sc + (new − old)`); the other four are
/// idempotent and merge directly (`Sc := Sc op new`) — paper §4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RedOp {
    /// Addition.
    Add,
    /// Multiplication.
    Mul,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Logical/bitwise conjunction (the paper's ∧).
    And,
    /// Logical/bitwise disjunction (the paper's ∨).
    Or,
}

impl RedOp {
    /// All six operators, in the paper's order — the inference engine's
    /// search space.
    pub const ALL: [RedOp; 6] = [
        RedOp::Add,
        RedOp::Mul,
        RedOp::Max,
        RedOp::Min,
        RedOp::And,
        RedOp::Or,
    ];

    /// Whether the operator is idempotent (`x op x = x`).
    pub fn is_idempotent(self) -> bool {
        matches!(self, RedOp::Max | RedOp::Min | RedOp::And | RedOp::Or)
    }

    /// The operator's annotation-language spelling (`+`, `*`, `max`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            RedOp::Add => "+",
            RedOp::Mul => "*",
            RedOp::Max => "max",
            RedOp::Min => "min",
            RedOp::And => "and",
            RedOp::Or => "or",
        }
    }
}

impl fmt::Display for RedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RedOp {
    type Err = ParseAnnotationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "+" => Ok(RedOp::Add),
            "*" | "x" | "×" => Ok(RedOp::Mul),
            "max" => Ok(RedOp::Max),
            "min" => Ok(RedOp::Min),
            "and" | "&" | "∧" => Ok(RedOp::And),
            "or" | "|" | "∨" => Ok(RedOp::Or),
            other => Err(ParseAnnotationError::new(format!(
                "unknown reduction operator `{other}`"
            ))),
        }
    }
}

/// One `(var, op)` reduction declaration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Reduction {
    /// Name of the program variable.
    pub var: String,
    /// Merge operator.
    pub op: RedOp,
}

impl fmt::Display for Reduction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reduction({}, {})", self.var, self.op)
    }
}

/// A complete loop annotation `(P, R)`.
///
/// ```
/// use alter_runtime::{Annotation, Policy, RedOp};
/// let a: Annotation = "[StaleReads + Reduction(delta, +)]".parse()?;
/// assert_eq!(a.policy, Policy::StaleReads);
/// assert_eq!(a.reductions[0].op, RedOp::Add);
/// assert_eq!(a.to_string(), "[StaleReads + Reduction(delta, +)]");
/// # Ok::<(), alter_runtime::ParseAnnotationError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Annotation {
    /// The parallelism policy.
    pub policy: Policy,
    /// Zero or more reductions.
    pub reductions: Vec<Reduction>,
}

impl Annotation {
    /// An annotation with no reductions.
    pub fn new(policy: Policy) -> Self {
        Annotation {
            policy,
            reductions: Vec::new(),
        }
    }

    /// Adds a reduction (builder style).
    pub fn with_reduction(mut self, var: impl Into<String>, op: RedOp) -> Self {
        self.reductions.push(Reduction {
            var: var.into(),
            op,
        });
        self
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.policy)?;
        for r in &self.reductions {
            write!(f, " + {r}")?;
        }
        f.write_str("]")
    }
}

/// Error parsing the concrete annotation syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAnnotationError {
    msg: String,
}

impl ParseAnnotationError {
    fn new(msg: impl Into<String>) -> Self {
        ParseAnnotationError { msg: msg.into() }
    }
}

impl fmt::Display for ParseAnnotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid annotation: {}", self.msg)
    }
}

impl std::error::Error for ParseAnnotationError {}

impl FromStr for Annotation {
    type Err = ParseAnnotationError;

    /// Parses e.g. `[StaleReads + Reduction(delta, +)]`. The surrounding
    /// brackets are optional; components are separated by `+` at the top
    /// level (`+` inside `Reduction(...)` parentheses is the operator).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let s = s.strip_prefix('[').unwrap_or(s);
        let s = s.strip_suffix(']').unwrap_or(s);

        // Split on top-level `+` (depth 0 w.r.t. parentheses).
        let mut parts = Vec::new();
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, c) in s.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| ParseAnnotationError::new("unbalanced parentheses"))?;
                }
                '+' if depth == 0 => {
                    parts.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(ParseAnnotationError::new("unbalanced parentheses"));
        }
        parts.push(&s[start..]);

        let mut policy = None;
        let mut reductions = Vec::new();
        for part in parts {
            let part = part.trim();
            if part.is_empty() {
                return Err(ParseAnnotationError::new("empty component"));
            }
            if part.eq_ignore_ascii_case("OutOfOrder") {
                if policy.replace(Policy::OutOfOrder).is_some() {
                    return Err(ParseAnnotationError::new("multiple policies"));
                }
            } else if part.eq_ignore_ascii_case("StaleReads") {
                if policy.replace(Policy::StaleReads).is_some() {
                    return Err(ParseAnnotationError::new("multiple policies"));
                }
            } else if let Some(rest) = part
                .strip_prefix("Reduction")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('('))
                .and_then(|r| r.strip_suffix(')'))
            {
                let (var, op) = rest.rsplit_once(',').ok_or_else(|| {
                    ParseAnnotationError::new(format!("malformed reduction `{part}`"))
                })?;
                let var = var.trim();
                if var.is_empty() {
                    return Err(ParseAnnotationError::new("empty reduction variable"));
                }
                reductions.push(Reduction {
                    var: var.to_owned(),
                    op: op.parse()?,
                });
            } else {
                return Err(ParseAnnotationError::new(format!(
                    "unrecognized component `{part}`"
                )));
            }
        }
        let policy =
            policy.ok_or_else(|| ParseAnnotationError::new("missing parallelism policy"))?;
        Ok(Annotation { policy, reductions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_policy() {
        let a: Annotation = "[StaleReads]".parse().unwrap();
        assert_eq!(a, Annotation::new(Policy::StaleReads));
        let a: Annotation = "OutOfOrder".parse().unwrap();
        assert_eq!(a.policy, Policy::OutOfOrder);
    }

    #[test]
    fn parses_policy_with_reductions() {
        let a: Annotation = "[OutOfOrder + Reduction(delta, +)]".parse().unwrap();
        assert_eq!(a.policy, Policy::OutOfOrder);
        assert_eq!(
            a.reductions,
            vec![Reduction {
                var: "delta".into(),
                op: RedOp::Add
            }]
        );

        let a: Annotation = "[StaleReads + Reduction(err, max) + Reduction(n, *)]"
            .parse()
            .unwrap();
        assert_eq!(a.reductions.len(), 2);
        assert_eq!(a.reductions[1].op, RedOp::Mul);
    }

    #[test]
    fn roundtrips_through_display() {
        let cases = [
            Annotation::new(Policy::StaleReads),
            Annotation::new(Policy::OutOfOrder).with_reduction("delta", RedOp::Add),
            Annotation::new(Policy::StaleReads)
                .with_reduction("e", RedOp::Max)
                .with_reduction("f", RedOp::And),
        ];
        for a in cases {
            let reparsed: Annotation = a.to_string().parse().unwrap();
            assert_eq!(reparsed, a);
        }
    }

    #[test]
    fn parses_all_operators() {
        for (src, op) in [
            ("+", RedOp::Add),
            ("*", RedOp::Mul),
            ("×", RedOp::Mul),
            ("max", RedOp::Max),
            ("min", RedOp::Min),
            ("and", RedOp::And),
            ("or", RedOp::Or),
            ("∧", RedOp::And),
            ("∨", RedOp::Or),
        ] {
            let a: Annotation = format!("[StaleReads + Reduction(v, {src})]")
                .parse()
                .unwrap();
            assert_eq!(a.reductions[0].op, op, "operator {src}");
        }
    }

    #[test]
    fn idempotence_classification_matches_paper() {
        assert!(!RedOp::Add.is_idempotent());
        assert!(!RedOp::Mul.is_idempotent());
        for op in [RedOp::Max, RedOp::Min, RedOp::And, RedOp::Or] {
            assert!(op.is_idempotent());
        }
        assert_eq!(RedOp::ALL.len(), 6);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "[]",
            "[Bogus]",
            "[StaleReads + OutOfOrder]",
            "[StaleReads + Reduction(x, ?)]",
            "[StaleReads + Reduction(x +)]",
            "[Reduction(x, +)]",
            "[StaleReads + Reduction(, +)]",
            "[StaleReads + Reduction(x, +]",
        ] {
            assert!(bad.parse::<Annotation>().is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn error_displays_reason() {
        let err = "[Bogus]".parse::<Annotation>().unwrap_err();
        assert!(err.to_string().contains("Bogus"));
    }
}
