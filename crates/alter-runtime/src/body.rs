//! Loop bodies and the per-transaction context they execute in.

use crate::annotation::RedOp;
use crate::reduction::{RedLocals, RedVal, RedVarId};
use alter_heap::{ObjId, Tx};

/// Everything a loop body may touch during one transaction: the isolated
/// heap view and the update-only reduction accumulators.
pub struct TxCtx<'s> {
    /// Instrumented, isolated heap access.
    pub tx: Tx<'s>,
    pub(crate) reds: RedLocals,
    /// When set (only by the dependence-summary replay), `BoundScalar`
    /// heap-path updates log `(object, operator)` here so the analyzer can
    /// tell reductive accesses apart from plain reads/writes.
    pub(crate) op_log: Option<Vec<(ObjId, RedOp)>>,
}

impl<'s> TxCtx<'s> {
    pub(crate) fn new(tx: Tx<'s>, reds: RedLocals) -> Self {
        TxCtx {
            tx,
            reds,
            op_log: None,
        }
    }

    /// Applies the source update `var op= v` to the private copy of a
    /// reduction variable. The operator here is the one written in the
    /// program; the *annotation's* operator is applied at merge time and
    /// need not agree (an `[… + Reduction(err, +)]` annotation on a loop
    /// that computes `err max= v` is the paper's SG3D example).
    ///
    /// There is deliberately no read accessor: the annotation contract
    /// prohibits reading reduction variables inside the loop.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not in the active policy; access such variables
    /// through the heap instead (see `BoundScalar`).
    #[inline]
    pub fn red_apply(&mut self, var: RedVarId, source_op: RedOp, v: impl Into<RedVal>) {
        self.reds.apply_source(var, source_op, v.into());
    }

    /// Source update `var += v`.
    #[inline]
    pub fn red_add(&mut self, var: RedVarId, v: impl Into<RedVal>) {
        self.red_apply(var, RedOp::Add, v);
    }

    /// Source update `var *= v`.
    #[inline]
    pub fn red_mul(&mut self, var: RedVarId, v: impl Into<RedVal>) {
        self.red_apply(var, RedOp::Mul, v);
    }

    /// Source update `var = max(var, v)`.
    #[inline]
    pub fn red_max(&mut self, var: RedVarId, v: impl Into<RedVal>) {
        self.red_apply(var, RedOp::Max, v);
    }

    /// Source update `var = min(var, v)`.
    #[inline]
    pub fn red_min(&mut self, var: RedVarId, v: impl Into<RedVal>) {
        self.red_apply(var, RedOp::Min, v);
    }

    /// Whether `var` is covered by the active reduction policy (used by
    /// workloads that fall back to heap read-modify-write when a variable
    /// is not annotated).
    #[inline]
    pub fn red_covers(&self, var: RedVarId) -> bool {
        self.reds.covers(var)
    }

    pub(crate) fn into_parts(self) -> (Tx<'s>, RedLocals) {
        (self.tx, self.reds)
    }
}

impl std::fmt::Debug for TxCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxCtx").field("tx", &self.tx).finish()
    }
}

/// A loop body: called once per iteration with the transaction context and
/// the iteration identifier.
///
/// Bodies must be deterministic functions of the snapshot contents and the
/// iteration id; any hidden state would break ALTER's determinism guarantee
/// (§4.3). They must also be `Sync`, because under the threaded executor
/// one body value is shared by all workers.
pub trait LoopBody: Sync {
    /// Executes iteration `iter`.
    fn run_iter(&self, ctx: &mut TxCtx<'_>, iter: u64);
}

impl<F> LoopBody for F
where
    F: Fn(&mut TxCtx<'_>, u64) + Sync,
{
    fn run_iter(&self, ctx: &mut TxCtx<'_>, iter: u64) {
        self(ctx, iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::RedOp;
    use crate::reduction::RedVars;
    use alter_heap::{Heap, IdReservation, ObjData, TrackMode};

    #[test]
    fn red_update_accumulates_and_covers_reports() {
        let mut heap = Heap::new();
        let obj = heap.alloc(ObjData::scalar_f64(0.0));
        let mut rv = RedVars::new();
        let d = rv.declare("d", RedVal::F64(0.0));
        let other = rv.declare("other", RedVal::F64(0.0));

        let snap = heap.snapshot();
        let tx = Tx::new(
            &snap,
            TrackMode::WritesOnly,
            IdReservation::new(heap.high_water(), 0, 1, 16),
            u64::MAX,
        );
        let locals = RedLocals::for_policy(&[(d, RedOp::Add)], &rv);
        let mut ctx = TxCtx::new(tx, locals);

        assert!(ctx.red_covers(d));
        assert!(!ctx.red_covers(other));
        ctx.red_add(d, 2.0);
        ctx.red_add(d, 3.0);
        ctx.tx.write_f64(obj, 0, 1.0);

        let (_tx, locals) = ctx.into_parts();
        let deltas = locals.into_deltas();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].old.as_f64(), 0.0);
        assert_eq!(deltas[0].new.as_f64(), 5.0);
    }

    #[test]
    fn closures_implement_loop_body() {
        fn assert_body<B: LoopBody>(_: &B) {}
        let body = |_ctx: &mut TxCtx<'_>, _i: u64| {};
        assert_body(&body);
    }
}
