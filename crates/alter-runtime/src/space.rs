//! Iteration spaces: where a loop's iterations come from.
//!
//! For counted loops this is an index range. For loops over linked data
//! structures — the paper's ALTER collection classes — the space is the
//! sequence of element identifiers captured from the committed state when
//! the loop starts, which is exactly what makes a list iterator behave as an
//! induction variable (§4.1).

use std::ops::Range;

/// A source of loop iterations, consumed chunk by chunk.
///
/// Implementations must be deterministic: the same sequence of calls must
/// yield the same chunks.
pub trait IterSpace {
    /// Returns the next chunk of at most `chunk` iteration identifiers, or
    /// an empty vector when exhausted.
    fn next_chunk(&mut self, chunk: usize) -> Vec<u64>;

    /// Whether all iterations have been handed out.
    fn is_exhausted(&self) -> bool;

    /// Total iterations if known up front (for progress reporting).
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// The iteration space `lo..hi` of a counted loop.
#[derive(Clone, Debug)]
pub struct RangeSpace {
    cur: u64,
    end: u64,
}

impl RangeSpace {
    /// Creates the space for `lo..hi` (empty if `lo >= hi`).
    pub fn new(lo: u64, hi: u64) -> Self {
        RangeSpace {
            cur: lo,
            end: hi.max(lo),
        }
    }
}

impl From<Range<u64>> for RangeSpace {
    fn from(r: Range<u64>) -> Self {
        RangeSpace::new(r.start, r.end)
    }
}

impl IterSpace for RangeSpace {
    fn next_chunk(&mut self, chunk: usize) -> Vec<u64> {
        let take = (self.end - self.cur).min(chunk.max(1) as u64);
        let v: Vec<u64> = (self.cur..self.cur + take).collect();
        self.cur += take;
        v
    }

    fn is_exhausted(&self) -> bool {
        self.cur >= self.end
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.end - self.cur)
    }
}

/// An explicit sequence of iteration identifiers (e.g. the node ids of an
/// `AlterList` captured at loop entry).
#[derive(Clone, Debug)]
pub struct SeqSpace {
    items: Vec<u64>,
    cur: usize,
}

impl SeqSpace {
    /// Creates a space yielding `items` in order.
    pub fn new(items: Vec<u64>) -> Self {
        SeqSpace { items, cur: 0 }
    }
}

impl IterSpace for SeqSpace {
    fn next_chunk(&mut self, chunk: usize) -> Vec<u64> {
        let take = (self.items.len() - self.cur).min(chunk.max(1));
        let v = self.items[self.cur..self.cur + take].to_vec();
        self.cur += take;
        v
    }

    fn is_exhausted(&self) -> bool {
        self.cur >= self.items.len()
    }

    fn size_hint(&self) -> Option<u64> {
        Some((self.items.len() - self.cur) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_space_chunks_exactly_cover_the_range() {
        let mut s = RangeSpace::new(3, 11);
        assert_eq!(s.size_hint(), Some(8));
        let mut all = Vec::new();
        while !s.is_exhausted() {
            let c = s.next_chunk(3);
            assert!(!c.is_empty() && c.len() <= 3);
            all.extend(c);
        }
        assert_eq!(all, (3..11).collect::<Vec<_>>());
        assert!(s.next_chunk(3).is_empty());
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let mut s = RangeSpace::new(5, 5);
        assert!(s.is_exhausted());
        assert!(s.next_chunk(4).is_empty());
        let s = RangeSpace::new(9, 2);
        assert!(s.is_exhausted());
        assert_eq!(RangeSpace::from(0..4).size_hint(), Some(4));
    }

    #[test]
    fn seq_space_yields_in_order() {
        let mut s = SeqSpace::new(vec![9, 7, 5]);
        assert_eq!(s.next_chunk(2), vec![9, 7]);
        assert!(!s.is_exhausted());
        assert_eq!(s.next_chunk(2), vec![5]);
        assert!(s.is_exhausted());
    }

    #[test]
    fn chunk_of_zero_is_treated_as_one() {
        let mut s = RangeSpace::new(0, 2);
        assert_eq!(s.next_chunk(0), vec![0]);
    }
}
