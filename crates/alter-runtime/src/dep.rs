//! Loop-carried dependence detection.
//!
//! The paper's evaluation "adds a check in join() to see if the loop has
//! any loop-carried dependences" (§7.1, the *Dep* column of Table 3). This
//! module implements that check: the loop is replayed one iteration per
//! transaction with full tracking, and each iteration's sets are compared
//! against the union of all earlier iterations' sets. Any RAW, WAW or WAR
//! overlap is a loop-carried dependence.

use crate::body::TxCtx;
use crate::engine::build_commit_ops;
use crate::reduction::RedLocals;
use crate::space::IterSpace;
use alter_heap::{AccessSet, Heap, IdReservation, TrackMode, Tx};

/// Which kinds of loop-carried dependences a loop exhibits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepReport {
    /// A later iteration read a location an earlier one wrote.
    pub raw: bool,
    /// Two iterations wrote the same location.
    pub waw: bool,
    /// A later iteration wrote a location an earlier one read.
    pub war: bool,
}

impl DepReport {
    /// Whether any loop-carried dependence exists (Table 3's Dep column).
    pub fn any(&self) -> bool {
        self.raw || self.waw || self.war
    }
}

/// Replays the loop sequentially (one iteration per transaction, full
/// tracking) and reports which loop-carried dependences exist. The heap is
/// mutated exactly as a sequential execution of the loop would.
///
/// ```
/// use alter_heap::{Heap, ObjData};
/// use alter_runtime::{detect_dependences, RangeSpace};
/// let mut heap = Heap::new();
/// let xs = heap.alloc(ObjData::zeros_f64(8));
/// let report = detect_dependences(&mut heap, &mut RangeSpace::new(1, 8), |ctx, i| {
///     let prev = ctx.tx.read_f64(xs, i as usize - 1);
///     ctx.tx.write_f64(xs, i as usize, prev + 1.0);
/// });
/// assert!(report.raw && report.any());
/// ```
///
/// Reduction variables do not participate: run the probe with the loop's
/// reducible scalars bound to heap objects (the unannotated configuration),
/// which is precisely when their dependences should be visible.
pub fn detect_dependences<F>(heap: &mut Heap, space: &mut dyn IterSpace, body: F) -> DepReport
where
    F: Fn(&mut TxCtx<'_>, u64) + Sync,
{
    let mut report = DepReport::default();
    let mut all_reads = AccessSet::new();
    let mut all_writes = AccessSet::new();
    loop {
        let iters = space.next_chunk(1);
        if iters.is_empty() {
            break;
        }
        let snap = heap.snapshot();
        let ids = IdReservation::new(heap.high_water(), 0, 1, alter_heap::DEFAULT_BLOCK_SIZE);
        let tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
        let mut ctx = TxCtx::new(tx, RedLocals::default());
        for &i in &iters {
            body(&mut ctx, i);
        }
        let (tx, _) = ctx.into_parts();
        let mut effects = tx.finish();

        report.raw |= effects.reads.overlaps(&all_writes);
        report.waw |= effects.writes.overlaps(&all_writes);
        report.war |= effects.writes.overlaps(&all_reads);

        all_reads.union_with(&effects.reads);
        all_writes.union_with(&effects.writes);
        heap.apply_commit(build_commit_ops(&mut effects, TrackMode::ReadsAndWrites));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::RangeSpace;
    use alter_heap::ObjData;

    #[test]
    fn doall_loop_has_no_deps() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(8));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(0, 8), |ctx, i| {
            ctx.tx.write_f64(xs, i as usize, 1.0);
        });
        assert!(!report.any());
    }

    #[test]
    fn recurrence_has_raw_dep() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(8));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(1, 8), |ctx, i| {
            let prev = ctx.tx.read_f64(xs, i as usize - 1);
            ctx.tx.write_f64(xs, i as usize, prev + 1.0);
        });
        assert!(report.raw);
        assert!(!report.waw);
        // Execution effect matches sequential semantics.
        assert_eq!(heap.get(xs).f64s()[7], 7.0);
    }

    #[test]
    fn shared_accumulator_has_all_deps() {
        let mut heap = Heap::new();
        let acc = heap.alloc(ObjData::scalar_i64(0));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(0, 4), |ctx, _| {
            let v = ctx.tx.read_i64(acc, 0);
            ctx.tx.write_i64(acc, 0, v + 1);
        });
        assert!(report.raw && report.waw && report.war);
        assert_eq!(heap.get(acc).i64s()[0], 4);
    }

    #[test]
    fn read_only_sharing_is_not_a_dep() {
        let mut heap = Heap::new();
        let table = heap.alloc(ObjData::zeros_f64(4));
        let out = heap.alloc(ObjData::zeros_f64(8));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(0, 8), |ctx, i| {
            let v = ctx.tx.read_f64(table, (i % 4) as usize);
            ctx.tx.write_f64(out, i as usize, v);
        });
        assert!(!report.any());
    }
}
