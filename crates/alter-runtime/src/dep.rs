//! Loop-carried dependence detection and per-location loop summaries.
//!
//! The paper's evaluation "adds a check in join() to see if the loop has
//! any loop-carried dependences" (§7.1, the *Dep* column of Table 3). This
//! module implements that check and generalises it: the loop is replayed
//! one iteration per transaction with full tracking, and each iteration's
//! sets are compared word-by-word against every earlier iteration's
//! accesses. The result is a [`LoopSummary`] — per-iteration access sets,
//! a per-location dependence graph ([`DepEdge`]: RAW/WAW/WAR edges with
//! iteration distances), and per-location access statistics
//! ([`LocationStats`]) including which reduction operators flowed through
//! each location. The boolean [`DepReport`] of earlier versions is now a
//! projection of the summary ([`LoopSummary::report`]); both the Table-3
//! check and the `alter-analyze` classifier share the single replay path
//! in [`summarize_dependences`].

use crate::annotation::RedOp;
use crate::body::TxCtx;
use crate::engine::build_commit_ops;
use crate::reduction::RedLocals;
use crate::space::IterSpace;
use alter_heap::{Heap, IdReservation, ObjId, TrackMode, Tx};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;

/// Which kinds of loop-carried dependences a loop exhibits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepReport {
    /// A later iteration read a location an earlier one wrote.
    pub raw: bool,
    /// Two iterations wrote the same location.
    pub waw: bool,
    /// A later iteration wrote a location an earlier one read.
    pub war: bool,
}

impl DepReport {
    /// Whether any loop-carried dependence exists (Table 3's Dep column).
    pub fn any(&self) -> bool {
        self.raw || self.waw || self.war
    }
}

/// The kind of a loop-carried dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Read-after-write: a flow dependence an `OutOfOrder` run must respect.
    Raw,
    /// Write-after-write: a lost update `StaleReads` must respect.
    Waw,
    /// Write-after-read: an anti dependence (broken by snapshotting alone).
    War,
}

impl DepKind {
    /// Short stable name used in rendering and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DepKind::Raw => "RAW",
            DepKind::Waw => "WAW",
            DepKind::War => "WAR",
        }
    }
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One aggregated dependence edge: all (earlier, later) iteration pairs of
/// one kind that collide on one allocation.
///
/// Distances are measured in replay ordinals (the position of the
/// iteration in the loop's sequential order), not in iteration *values* —
/// the two coincide for the common `RangeSpace` case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Dependence kind.
    pub kind: DepKind,
    /// Allocation the colliding word lives in.
    pub obj: ObjId,
    /// Example conflicting word (the first word found at the minimum
    /// distance; deterministic).
    pub word: u32,
    /// Distinct (source, destination) iteration pairs on this edge.
    pub pairs: u64,
    /// Distinct destination iterations involved.
    pub dsts: u64,
    /// Minimum iteration distance observed.
    pub min_dist: u64,
    /// Maximum iteration distance observed.
    pub max_dist: u64,
}

/// Per-allocation access statistics over the whole loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocationStats {
    /// The allocation.
    pub obj: ObjId,
    /// Iterations that read the allocation.
    pub read_iters: u64,
    /// Iterations that wrote the allocation.
    pub write_iters: u64,
    /// Iterations that both read and wrote it (read-modify-write shape).
    pub rmw_iters: u64,
    /// Distinct words touched over the loop.
    pub words: u64,
    /// Highest word index touched.
    pub max_word: u32,
    /// Distinct reduction operators applied through this allocation (via
    /// [`crate::BoundScalar::apply`] in the unannotated configuration).
    pub ops: Vec<RedOp>,
    /// Iterations that touched the allocation *without* applying any
    /// reduction operator to it — a non-reductive access.
    pub plain_iters: u64,
}

/// One iteration's tracked accesses (word ranges are half-open `[lo, hi)`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IterAccess {
    /// The iteration value handed to the loop body.
    pub index: u64,
    /// Read ranges, ascending by (object, lo).
    pub reads: Vec<(ObjId, u32, u32)>,
    /// Write ranges, ascending by (object, lo).
    pub writes: Vec<(ObjId, u32, u32)>,
    /// Total tracked read words.
    pub read_words: u64,
    /// Total tracked write words.
    pub write_words: u64,
    /// Reduction operators applied this iteration, deduplicated, ascending
    /// by (object, operator).
    pub ops: Vec<(ObjId, RedOp)>,
}

/// The full dependence summary of one loop: the IR consumed by the
/// `alter-analyze` classifier and linter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoopSummary {
    /// Iterations replayed.
    pub iterations: u64,
    /// Per-iteration access sets, in sequential order.
    pub iters: Vec<IterAccess>,
    /// Aggregated dependence edges, ascending by (object, kind).
    pub edges: Vec<DepEdge>,
    /// Per-allocation statistics, ascending by object.
    pub locations: Vec<LocationStats>,
    /// Human names for allocations backing named scalars (reduction
    /// candidates), attached by the workload after summarisation.
    pub labels: Vec<(ObjId, String)>,
}

impl LoopSummary {
    /// Projects the summary down to the boolean Table-3 report.
    pub fn report(&self) -> DepReport {
        let mut r = DepReport::default();
        for e in &self.edges {
            match e.kind {
                DepKind::Raw => r.raw = true,
                DepKind::Waw => r.waw = true,
                DepKind::War => r.war = true,
            }
        }
        r
    }

    /// Whether the summary carries no replay evidence (e.g. the default
    /// for legacy targets that only implement the boolean check).
    pub fn is_empty(&self) -> bool {
        self.iterations == 0
    }

    /// Attaches a human name to the allocation backing a named scalar.
    pub fn label(&mut self, name: impl Into<String>, obj: ObjId) {
        let name = name.into();
        self.labels.retain(|(o, n)| *o != obj && *n != name);
        self.labels.push((obj, name));
        self.labels.sort();
    }

    /// The label attached to `obj`, if any.
    pub fn label_of(&self, obj: ObjId) -> Option<&str> {
        self.labels
            .iter()
            .find(|(o, _)| *o == obj)
            .map(|(_, n)| n.as_str())
    }

    /// The allocation labelled `name`, if any.
    pub fn labeled(&self, name: &str) -> Option<ObjId> {
        self.labels.iter().find(|(_, n)| n == name).map(|(o, _)| *o)
    }

    /// Statistics for one allocation, if it was touched.
    pub fn location(&self, obj: ObjId) -> Option<&LocationStats> {
        self.locations.iter().find(|l| l.obj == obj)
    }

    /// All dependence edges on one allocation.
    pub fn edges_on(&self, obj: ObjId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.obj == obj)
    }

    /// Human-readable rendering (the `alter-trace --deps` output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "iterations: {}", self.iterations);
        for l in &self.locations {
            let name = self
                .label_of(l.obj)
                .map(|n| format!(" [{n}]"))
                .unwrap_or_default();
            let ops = if l.ops.is_empty() {
                String::new()
            } else {
                let names: Vec<&str> = l.ops.iter().map(|o| o.as_str()).collect();
                format!(", ops {{{}}} plain {}", names.join(","), l.plain_iters)
            };
            let _ = writeln!(
                s,
                "  obj {}{}: reads {} iters, writes {} iters, rmw {}, {} words{}",
                l.obj.index(),
                name,
                l.read_iters,
                l.write_iters,
                l.rmw_iters,
                l.words,
                ops
            );
        }
        for e in &self.edges {
            let name = self
                .label_of(e.obj)
                .map(|n| format!(" [{n}]"))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "  {} obj {}{} word {}: {} pairs over {} iters, dist {}..{}",
                e.kind,
                e.obj.index(),
                name,
                e.word,
                e.pairs,
                e.dsts,
                e.min_dist,
                e.max_dist
            );
        }
        let r = self.report();
        let mut kinds = Vec::new();
        if r.raw {
            kinds.push("RAW");
        }
        if r.waw {
            kinds.push("WAW");
        }
        if r.war {
            kinds.push("WAR");
        }
        let _ = writeln!(
            s,
            "  Dep: {}",
            if kinds.is_empty() {
                "no".to_owned()
            } else {
                format!("yes ({})", kinds.join(" "))
            }
        );
        s
    }
}

/// Per-object word trackers: the ordinal of the last iteration that read /
/// wrote each word, or -1 for "never".
struct WordTracker {
    last_read: Vec<i64>,
    last_write: Vec<i64>,
}

impl WordTracker {
    fn grow(&mut self, hi: u32) {
        if self.last_read.len() < hi as usize {
            self.last_read.resize(hi as usize, -1);
            self.last_write.resize(hi as usize, -1);
        }
    }
}

/// Accumulates edge statistics for one (object, kind) key.
#[derive(Default)]
struct EdgeAcc {
    word: u32,
    pairs: u64,
    dsts: u64,
    min_dist: u64,
    max_dist: u64,
}

/// Per-iteration hits for one (object, kind) key, folded into [`EdgeAcc`]
/// at the end of the iteration (so `pairs` counts distinct pairs).
struct LocalHit {
    srcs: BTreeSet<u64>,
    min_dist: u64,
    min_word: u32,
}

#[derive(Default)]
struct LocAcc {
    read_iters: u64,
    write_iters: u64,
    rmw_iters: u64,
    op_mask: u8,
    op_iters: u64,
    touch_iters: u64,
}

/// Replays the loop sequentially (one iteration per transaction, full
/// tracking) and returns the complete [`LoopSummary`]. The heap is mutated
/// exactly as a sequential execution of the loop would mutate it.
///
/// [`detect_dependences`] is the boolean projection of this replay; both
/// share this single code path.
///
/// Reduction variables do not participate: run the replay with the loop's
/// reducible scalars bound to heap objects (the unannotated
/// configuration), which is precisely when their dependences should be
/// visible. Accesses routed through [`crate::BoundScalar::apply`] are
/// additionally logged as reduction-operator applications, which is what
/// lets the analyzer decide whether *all* accesses to a candidate flow
/// through one commutative operator.
pub fn summarize_dependences<F>(heap: &mut Heap, space: &mut dyn IterSpace, body: F) -> LoopSummary
where
    F: Fn(&mut TxCtx<'_>, u64) + Sync,
{
    let mut trackers: HashMap<ObjId, WordTracker> = HashMap::new();
    let mut edges: BTreeMap<(ObjId, DepKind), EdgeAcc> = BTreeMap::new();
    let mut locs: BTreeMap<ObjId, LocAcc> = BTreeMap::new();
    let mut iters_out: Vec<IterAccess> = Vec::new();
    let mut ordinal: u64 = 0;

    loop {
        let iters = space.next_chunk(1);
        if iters.is_empty() {
            break;
        }
        let snap = heap.snapshot();
        let ids = IdReservation::new(heap.high_water(), 0, 1, alter_heap::DEFAULT_BLOCK_SIZE);
        let tx = Tx::new(&snap, TrackMode::ReadsAndWrites, ids, u64::MAX);
        let mut ctx = TxCtx::new(tx, RedLocals::default());
        ctx.op_log = Some(Vec::new());
        for &i in &iters {
            body(&mut ctx, i);
        }
        let op_log = ctx.op_log.take().unwrap_or_default();
        let (tx, _) = ctx.into_parts();
        let mut effects = tx.finish();

        let mut access = IterAccess {
            index: iters[0],
            read_words: effects.reads.words(),
            write_words: effects.writes.words(),
            ..IterAccess::default()
        };
        for (obj, rs) in effects.reads.iter_sorted() {
            for (lo, hi) in rs.iter() {
                access.reads.push((obj, lo, hi));
            }
        }
        for (obj, rs) in effects.writes.iter_sorted() {
            for (lo, hi) in rs.iter() {
                access.writes.push((obj, lo, hi));
            }
        }
        let mut ops: Vec<(ObjId, RedOp)> = op_log;
        ops.sort();
        ops.dedup();
        access.ops = ops;

        // Edge detection: compare this iteration's words against the last
        // reader/writer ordinals, which at this point all predate it.
        let mut local: BTreeMap<(ObjId, DepKind), LocalHit> = BTreeMap::new();
        let mut hit = |key: (ObjId, DepKind), src: u64, word: u32| {
            let dist = ordinal - src;
            let h = local.entry(key).or_insert(LocalHit {
                srcs: BTreeSet::new(),
                min_dist: dist,
                min_word: word,
            });
            h.srcs.insert(src);
            if dist < h.min_dist {
                h.min_dist = dist;
                h.min_word = word;
            }
        };
        for &(obj, lo, hi) in &access.reads {
            let tr = trackers.entry(obj).or_insert(WordTracker {
                last_read: Vec::new(),
                last_write: Vec::new(),
            });
            tr.grow(hi);
            for w in lo..hi {
                let lw = tr.last_write[w as usize];
                if lw >= 0 {
                    hit((obj, DepKind::Raw), lw as u64, w);
                }
            }
        }
        for &(obj, lo, hi) in &access.writes {
            let tr = trackers.entry(obj).or_insert(WordTracker {
                last_read: Vec::new(),
                last_write: Vec::new(),
            });
            tr.grow(hi);
            for w in lo..hi {
                let lw = tr.last_write[w as usize];
                if lw >= 0 {
                    hit((obj, DepKind::Waw), lw as u64, w);
                }
                let lr = tr.last_read[w as usize];
                if lr >= 0 {
                    hit((obj, DepKind::War), lr as u64, w);
                }
            }
        }
        // Update trackers only after both passes, so same-iteration
        // read-then-write pairs never count as loop-carried.
        for &(obj, lo, hi) in &access.reads {
            let tr = trackers.get_mut(&obj).expect("tracker grown above");
            for w in lo..hi {
                tr.last_read[w as usize] = ordinal as i64;
            }
        }
        for &(obj, lo, hi) in &access.writes {
            let tr = trackers.get_mut(&obj).expect("tracker grown above");
            for w in lo..hi {
                tr.last_write[w as usize] = ordinal as i64;
            }
        }
        for (key, h) in local {
            let acc = edges.entry(key).or_insert(EdgeAcc {
                word: h.min_word,
                min_dist: h.min_dist,
                max_dist: h.min_dist,
                ..EdgeAcc::default()
            });
            acc.pairs += h.srcs.len() as u64;
            acc.dsts += 1;
            if h.min_dist < acc.min_dist {
                acc.min_dist = h.min_dist;
                acc.word = h.min_word;
            }
            if let Some(&max_src) = h.srcs.iter().next() {
                acc.max_dist = acc.max_dist.max(ordinal - max_src);
            }
        }

        // Location statistics.
        let mut touched: BTreeMap<ObjId, (bool, bool)> = BTreeMap::new();
        for &(obj, _, _) in &access.reads {
            touched.entry(obj).or_insert((false, false)).0 = true;
        }
        for &(obj, _, _) in &access.writes {
            touched.entry(obj).or_insert((false, false)).1 = true;
        }
        for (obj, (r, w)) in &touched {
            let l = locs.entry(*obj).or_default();
            l.touch_iters += 1;
            if *r {
                l.read_iters += 1;
            }
            if *w {
                l.write_iters += 1;
            }
            if *r && *w {
                l.rmw_iters += 1;
            }
        }
        let mut op_objs: BTreeSet<ObjId> = BTreeSet::new();
        for &(obj, op) in &access.ops {
            let l = locs.entry(obj).or_default();
            l.op_mask |= 1 << op as u8;
            if op_objs.insert(obj) {
                l.op_iters += 1;
            }
        }

        iters_out.push(access);
        ordinal += 1;
        heap.apply_commit(build_commit_ops(&mut effects, TrackMode::ReadsAndWrites));
    }

    let locations = locs
        .into_iter()
        .map(|(obj, l)| {
            let (words, max_word) = trackers
                .get(&obj)
                .map(|tr| {
                    let mut words = 0u64;
                    let mut max_word = 0u32;
                    for (w, (&lr, &lw)) in tr.last_read.iter().zip(&tr.last_write).enumerate() {
                        if lr >= 0 || lw >= 0 {
                            words += 1;
                            max_word = w as u32;
                        }
                    }
                    (words, max_word)
                })
                .unwrap_or((0, 0));
            let ops = RedOp::ALL
                .iter()
                .copied()
                .filter(|op| l.op_mask & (1 << *op as u8) != 0)
                .collect();
            LocationStats {
                obj,
                read_iters: l.read_iters,
                write_iters: l.write_iters,
                rmw_iters: l.rmw_iters,
                words,
                max_word,
                ops,
                plain_iters: l.touch_iters - l.op_iters,
            }
        })
        .collect();
    let edges = edges
        .into_iter()
        .map(|((obj, kind), a)| DepEdge {
            kind,
            obj,
            word: a.word,
            pairs: a.pairs,
            dsts: a.dsts,
            min_dist: a.min_dist,
            max_dist: a.max_dist,
        })
        .collect();

    LoopSummary {
        iterations: ordinal,
        iters: iters_out,
        edges,
        locations,
        labels: Vec::new(),
    }
}

/// Replays the loop sequentially and reports which loop-carried
/// dependences exist (the Table-3 boolean check). The heap is mutated
/// exactly as a sequential execution of the loop would. This is the
/// boolean projection of [`summarize_dependences`] — one shared replay.
///
/// ```
/// use alter_heap::{Heap, ObjData};
/// use alter_runtime::{detect_dependences, RangeSpace};
/// let mut heap = Heap::new();
/// let xs = heap.alloc(ObjData::zeros_f64(8));
/// let report = detect_dependences(&mut heap, &mut RangeSpace::new(1, 8), |ctx, i| {
///     let prev = ctx.tx.read_f64(xs, i as usize - 1);
///     ctx.tx.write_f64(xs, i as usize, prev + 1.0);
/// });
/// assert!(report.raw && report.any());
/// ```
///
/// Reduction variables do not participate: run the probe with the loop's
/// reducible scalars bound to heap objects (the unannotated configuration),
/// which is precisely when their dependences should be visible.
pub fn detect_dependences<F>(heap: &mut Heap, space: &mut dyn IterSpace, body: F) -> DepReport
where
    F: Fn(&mut TxCtx<'_>, u64) + Sync,
{
    summarize_dependences(heap, space, body).report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::{RedVal, RedVars};
    use crate::space::RangeSpace;
    use crate::var::BoundScalar;
    use alter_heap::ObjData;

    #[test]
    fn doall_loop_has_no_deps() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(8));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(0, 8), |ctx, i| {
            ctx.tx.write_f64(xs, i as usize, 1.0);
        });
        assert!(!report.any());
    }

    #[test]
    fn recurrence_has_raw_dep() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(8));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(1, 8), |ctx, i| {
            let prev = ctx.tx.read_f64(xs, i as usize - 1);
            ctx.tx.write_f64(xs, i as usize, prev + 1.0);
        });
        assert!(report.raw);
        assert!(!report.waw);
        // Execution effect matches sequential semantics.
        assert_eq!(heap.get(xs).f64s()[7], 7.0);
    }

    #[test]
    fn shared_accumulator_has_all_deps() {
        let mut heap = Heap::new();
        let acc = heap.alloc(ObjData::scalar_i64(0));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(0, 4), |ctx, _| {
            let v = ctx.tx.read_i64(acc, 0);
            ctx.tx.write_i64(acc, 0, v + 1);
        });
        assert!(report.raw && report.waw && report.war);
        assert_eq!(heap.get(acc).i64s()[0], 4);
    }

    #[test]
    fn read_only_sharing_is_not_a_dep() {
        let mut heap = Heap::new();
        let table = heap.alloc(ObjData::zeros_f64(4));
        let out = heap.alloc(ObjData::zeros_f64(8));
        let report = detect_dependences(&mut heap, &mut RangeSpace::new(0, 8), |ctx, i| {
            let v = ctx.tx.read_f64(table, (i % 4) as usize);
            ctx.tx.write_f64(out, i as usize, v);
        });
        assert!(!report.any());
    }

    #[test]
    fn recurrence_edge_has_distance_one() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_f64(8));
        let summary = summarize_dependences(&mut heap, &mut RangeSpace::new(1, 8), |ctx, i| {
            let prev = ctx.tx.read_f64(xs, i as usize - 1);
            ctx.tx.write_f64(xs, i as usize, prev + 1.0);
        });
        assert_eq!(summary.iterations, 7);
        assert_eq!(summary.iters.len(), 7);
        let raw: Vec<&DepEdge> = summary
            .edges
            .iter()
            .filter(|e| e.kind == DepKind::Raw)
            .collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].obj, xs);
        assert_eq!(raw[0].min_dist, 1);
        assert_eq!(raw[0].max_dist, 1);
        assert_eq!(raw[0].pairs, 6, "iterations 2..=7 each read the previous");
        assert!(summary.edges.iter().all(|e| e.kind != DepKind::Waw));
        // WAR edges also have distance 1 (iteration i writes what i-1 read?
        // no: i writes word i, which nobody read — so no WAR either).
        assert!(summary.edges.iter().all(|e| e.kind != DepKind::War));
    }

    #[test]
    fn shared_accumulator_edges_cover_all_pairs_at_distance_one() {
        let mut heap = Heap::new();
        let acc = heap.alloc(ObjData::scalar_i64(0));
        let summary = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 4), |ctx, _| {
            let v = ctx.tx.read_i64(acc, 0);
            ctx.tx.write_i64(acc, 0, v + 1);
        });
        // Word trackers keep only the *latest* reader/writer, so each
        // destination contributes exactly one pair per kind.
        for kind in [DepKind::Raw, DepKind::Waw, DepKind::War] {
            let e = summary
                .edges
                .iter()
                .find(|e| e.kind == kind)
                .unwrap_or_else(|| panic!("missing {kind} edge"));
            assert_eq!(e.obj, acc);
            assert_eq!(e.word, 0);
            assert_eq!((e.min_dist, e.max_dist), (1, 1));
            assert_eq!(e.dsts, 3);
        }
        let l = summary.location(acc).expect("acc stats");
        assert_eq!(l.rmw_iters, 4);
        assert_eq!(l.words, 1);
        assert_eq!(l.plain_iters, 4, "raw reads/writes, no reduction ops");
    }

    #[test]
    fn bound_scalar_ops_are_logged() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let sum = BoundScalar::declare(&mut heap, &mut reds, "sum", RedVal::I64(0));
        let mut summary = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 8), {
            move |ctx, i| {
                sum.add(ctx, i as i64);
            }
        });
        summary.label("sum", sum.object());
        assert_eq!(summary.labeled("sum"), Some(sum.object()));
        assert_eq!(summary.label_of(sum.object()), Some("sum"));
        let l = summary.location(sum.object()).expect("sum stats");
        assert_eq!(l.ops, vec![RedOp::Add]);
        assert_eq!(l.plain_iters, 0, "every access flows through +");
        assert_eq!(l.rmw_iters, 8);
        assert_eq!(l.max_word, 0);
        // And the projection still sees the serializing dependence.
        assert!(summary.report().raw && summary.report().waw && summary.report().war);
        assert!(summary.render().contains("[sum]"));
    }

    #[test]
    fn mixed_plain_access_is_distinguished_from_reductive() {
        let mut heap = Heap::new();
        let mut reds = RedVars::new();
        let sum = BoundScalar::declare(&mut heap, &mut reds, "sum", RedVal::I64(0));
        let summary = summarize_dependences(&mut heap, &mut RangeSpace::new(0, 8), {
            move |ctx, i| {
                if i % 2 == 0 {
                    sum.add(ctx, 1i64);
                } else {
                    // Non-reductive read of the accumulator.
                    let _ = ctx.tx.read_i64(sum.object(), 0);
                }
            }
        });
        let l = summary.location(sum.object()).expect("sum stats");
        assert_eq!(l.ops, vec![RedOp::Add]);
        assert_eq!(l.plain_iters, 4, "odd iterations bypass the operator");
    }
}
