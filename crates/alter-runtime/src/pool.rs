//! A persistent worker pool for lock-step rounds.
//!
//! The paper's runtime forks its N worker processes **once** and then feeds
//! them one chunk-transaction per lock-step round (§4.1, Figure 4); our
//! engine instead used to pay a `thread::scope` spawn-and-join per round.
//! [`WorkerPool`] restores the paper's shape: N long-lived threads, a
//! per-round task handoff over channels, and a deterministic join barrier.
//!
//! Determinism needs no locks and no care from the workers themselves: job
//! *i* of a round always goes to worker *i*, each worker has a private
//! result channel, and [`WorkerPool::run_round`] collects results in
//! worker-index order. The coordinator therefore observes results in
//! exactly the order the sequential driver would produce them, whatever
//! order the workers finish in — the same argument that makes the paper's
//! commit phase deterministic (§4.3).
//!
//! The pool is deliberately generic over the job and result payloads: the
//! engine ships `(Snapshot, task, buffers)` jobs, while the inference
//! engine reuses the same pool to run independent probes concurrently.
//!
//! Shutdown is by drop: dropping the pool closes the job channels, each
//! worker's `for job in rx` loop ends, and the owning `thread::scope` joins
//! them. Keep the pool inside the scope closure so the drop happens before
//! the scope's implicit join (otherwise the join would wait on workers
//! still blocked in `recv`).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::Scope;

struct Worker<J, R> {
    job_tx: Sender<J>,
    result_rx: Receiver<R>,
}

/// N long-lived worker threads executing one job each per round.
///
/// ```
/// let square = |_worker: usize, x: u64| x * x; // must outlive the scope
/// std::thread::scope(|scope| {
///     let mut pool = alter_runtime::WorkerPool::new(scope, 4, &square);
///     assert_eq!(pool.run_round(vec![1, 2, 3]), vec![1, 4, 9]);
///     assert_eq!(pool.run_round(vec![5]), vec![25]);
///     assert_eq!(pool.round_handoffs(), 2);
/// });
/// ```
pub struct WorkerPool<J, R> {
    workers: Vec<Worker<J, R>>,
    handoffs: u64,
}

impl<J, R> WorkerPool<J, R> {
    /// Spawns `workers` long-lived threads on `scope`, each running
    /// `f(worker_index, job)` for every job handed to it.
    ///
    /// `f` must outlive the scope (borrow it from outside the scope
    /// closure); jobs and results only need to survive a single round.
    pub fn new<'scope, 'env, F>(
        scope: &'scope Scope<'scope, 'env>,
        workers: usize,
        f: &'scope F,
    ) -> Self
    where
        F: Fn(usize, J) -> R + Sync,
        J: Send + 'scope,
        R: Send + 'scope,
    {
        let workers = (0..workers.max(1))
            .map(|w| {
                let (job_tx, job_rx) = channel::<J>();
                let (result_tx, result_rx) = channel::<R>();
                scope.spawn(move || {
                    for job in job_rx {
                        if result_tx.send(f(w, job)).is_err() {
                            break;
                        }
                    }
                });
                Worker { job_tx, result_rx }
            })
            .collect();
        WorkerPool {
            workers,
            handoffs: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Rounds handed off so far (empty rounds are not counted).
    pub fn round_handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Executes one round: job *i* runs on worker *i*; returns the results
    /// in job order. Blocks until every job of the round has finished — the
    /// round barrier.
    ///
    /// # Panics
    ///
    /// Panics if `jobs.len()` exceeds the worker count, or if a worker
    /// thread died (a worker panic propagates when the owning scope joins).
    pub fn run_round(&mut self, jobs: Vec<J>) -> Vec<R> {
        let mut stream = self.stream_round(jobs);
        let mut out = Vec::with_capacity(stream.remaining());
        while let Some(r) = stream.next_ticket() {
            out.push(r);
        }
        out
    }

    /// Dispatches one round's jobs (job *i* to lane *i*) and returns a
    /// stream that yields each lane's result **in ticket order** as soon as
    /// it is available — the barrier-free handoff behind the pipelined
    /// committer. Lane *i+1* keeps executing while the caller consumes
    /// ticket *i*; [`WorkerPool::run_round`] is exactly this stream drained
    /// to a `Vec`.
    ///
    /// Dropping the stream early (committer abort) drains the outstanding
    /// results so the lanes stay aligned for the next round.
    ///
    /// # Panics
    ///
    /// Panics if `jobs.len()` exceeds the worker count, or if a worker
    /// thread died (a worker panic propagates when the owning scope joins).
    pub fn stream_round(&mut self, jobs: Vec<J>) -> TicketStream<'_, J, R> {
        assert!(
            jobs.len() <= self.workers.len(),
            "round of {} jobs exceeds {} workers",
            jobs.len(),
            self.workers.len()
        );
        let n = jobs.len();
        if n > 0 {
            self.handoffs += 1;
        }
        for (w, job) in jobs.into_iter().enumerate() {
            self.workers[w]
                .job_tx
                .send(job)
                .expect("pool worker exited early");
        }
        TicketStream {
            pool: self,
            next: 0,
            n,
        }
    }
}

/// In-order result stream for one dispatched round; see
/// [`WorkerPool::stream_round`].
pub struct TicketStream<'p, J, R> {
    pool: &'p mut WorkerPool<J, R>,
    next: usize,
    n: usize,
}

impl<J, R> TicketStream<'_, J, R> {
    /// Blocks for and returns the next lane's result in ticket order, or
    /// `None` once the round is drained.
    pub fn next_ticket(&mut self) -> Option<R> {
        if self.next >= self.n {
            return None;
        }
        let r = self.pool.workers[self.next]
            .result_rx
            .recv()
            .expect("pool worker exited early");
        self.next += 1;
        Some(r)
    }

    /// Tickets not yet consumed from this round.
    pub fn remaining(&self) -> usize {
        self.n - self.next
    }
}

impl<J, R> Drop for TicketStream<'_, J, R> {
    fn drop(&mut self) {
        // Drain lanes the caller abandoned so the next round's results
        // can't interleave with this one's. A worker that died mid-round
        // shows up as a closed channel here; ignore it — its panic
        // propagates when the owning scope joins.
        while self.next < self.n {
            let _ = self.pool.workers[self.next].result_rx.recv();
            self.next += 1;
        }
    }
}

impl<J, R> std::fmt::Debug for WorkerPool<J, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("handoffs", &self.handoffs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        // Make later jobs finish first: job i sleeps inversely to i.
        let f = |worker: usize, x: u64| {
            std::thread::sleep(std::time::Duration::from_millis(8 - x));
            (worker, x * 10)
        };
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::new(scope, 4, &f);
            let out = pool.run_round(vec![1, 2, 3, 4]);
            assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
        });
    }

    #[test]
    fn pool_survives_many_rounds_and_counts_handoffs() {
        let f = |_w: usize, x: u64| x + 1;
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::new(scope, 2, &f);
            assert_eq!(pool.workers(), 2);
            for round in 0..100u64 {
                assert_eq!(pool.run_round(vec![round]), vec![round + 1]);
            }
            assert_eq!(pool.run_round(Vec::new()), Vec::<u64>::new());
            assert_eq!(pool.round_handoffs(), 100, "empty rounds don't count");
        });
    }

    #[test]
    fn stream_yields_in_ticket_order_while_later_lanes_run() {
        // Lane 0 is the slowest; the stream must still yield 0, 1, 2, 3.
        let f = |worker: usize, x: u64| {
            std::thread::sleep(std::time::Duration::from_millis(2 * x));
            (worker, x)
        };
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::new(scope, 4, &f);
            let mut stream = pool.stream_round(vec![8, 2, 1, 0]);
            assert_eq!(stream.remaining(), 4);
            let mut seen = Vec::new();
            while let Some((w, x)) = stream.next_ticket() {
                seen.push((w, x));
            }
            assert_eq!(seen, vec![(0, 8), (1, 2), (2, 1), (3, 0)]);
            assert_eq!(stream.next_ticket(), None);
            drop(stream);
            assert_eq!(pool.round_handoffs(), 1);
        });
    }

    #[test]
    fn dropping_a_stream_early_drains_the_round() {
        let f = |_w: usize, x: u64| x * 2;
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::new(scope, 3, &f);
            {
                let mut stream = pool.stream_round(vec![1, 2, 3]);
                assert_eq!(stream.next_ticket(), Some(2));
                // Tickets 1 and 2 are abandoned; the drop must drain them.
            }
            // A clean next round proves no stale results interleaved.
            assert_eq!(pool.run_round(vec![10, 20]), vec![20, 40]);
        });
    }

    #[test]
    #[should_panic(expected = "exceeds 1 workers")]
    fn oversized_round_panics() {
        let f = |_w: usize, x: u64| x;
        std::thread::scope(|scope| {
            let mut pool = WorkerPool::new(scope, 1, &f);
            pool.run_round(vec![1, 2]);
        });
    }
}
