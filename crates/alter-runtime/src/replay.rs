//! Replay comparison and divergence bisection — the trace-level referee.
//!
//! A recorded journal promises that re-executing its workload under its
//! recorded configuration reproduces the event stream byte for byte
//! (traces are pure functions of program + annotation). This module is
//! the checker for that promise: given the *expected* stream (from the
//! journal) and the *actual* stream (from a fresh run), [`diverge_bisect`]
//! either certifies identity or pinpoints the first divergent event.
//!
//! The search is hash-guided: one pass builds cumulative trace-hash
//! prefixes for both streams, then a binary search over the expected
//! stream's round boundaries finds the first round whose hash prefix
//! forks — O(log rounds) boundary probes instead of comparing every event
//! of every round — and a linear scan inside that one round lands on the
//! exact event. The result is a structured [`Divergence`]: expected vs.
//! actual event, the divergent round and task, the access-set delta when
//! both sides carry recorded sets, and the trace-hash prefix where the
//! streams fork.
//!
//! The workload re-execution itself lives with the workload registry
//! (`alter-bench`'s `alter-replay` binary): this crate deliberately knows
//! nothing about workloads, only about event streams.

use alter_trace::{event_json, parse_set, trace_hash, Event, TraceHasher};
use std::fmt::Write as _;

/// The outcome of replaying a journal against a fresh run.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayOutcome {
    /// The fresh run reproduced the recorded stream exactly.
    Identical {
        /// Events in the (shared) stream.
        events: usize,
        /// The (shared) trace hash.
        hash: u64,
    },
    /// The streams fork; here is where and how.
    Diverged(Box<Divergence>),
}

/// Entries present in one recorded access set but not the other
/// (canonical `obj:lo-hi` strings).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SetDelta {
    /// Entries the journal recorded that the fresh run did not.
    pub missing: Vec<String>,
    /// Entries the fresh run produced that the journal lacks.
    pub extra: Vec<String>,
}

impl SetDelta {
    /// Diffs two canonical set renderings. Unparseable sets (impossible
    /// for engine-produced traces) diff as whole-string entries so the
    /// evidence is still visible.
    pub fn between(expected: &str, actual: &str) -> SetDelta {
        let entries = |s: &str| -> Vec<String> {
            match parse_set(s) {
                Ok(triples) => triples
                    .iter()
                    .map(|(obj, lo, hi)| format!("{}:{lo}-{hi}", obj.index()))
                    .collect(),
                Err(_) => vec![s.to_owned()],
            }
        };
        let exp = entries(expected);
        let act = entries(actual);
        SetDelta {
            missing: exp.iter().filter(|e| !act.contains(e)).cloned().collect(),
            extra: act.iter().filter(|e| !exp.contains(e)).cloned().collect(),
        }
    }

    /// Whether the two sets were identical.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty() && self.extra.is_empty()
    }
}

/// The first point where an actual event stream forks from the expected
/// one.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Round containing the divergent event (the last `RoundStart` at or
    /// before it; 0 if the streams fork before any round starts).
    pub round: u64,
    /// Task sequence number carried by the divergent event, if either
    /// side's event names one.
    pub seq: Option<u64>,
    /// Index of the first divergent event (shared by both streams — all
    /// earlier events are identical).
    pub index: usize,
    /// The journal's event at that index (`None`: the fresh run produced
    /// extra events past the journal's end).
    pub expected: Option<Event>,
    /// The fresh run's event at that index (`None`: the fresh run ended
    /// early).
    pub actual: Option<Event>,
    /// Trace hash of the shared prefix `events[..index]` — where the
    /// streams fork.
    pub prefix_hash: u64,
    /// Full trace hash of the expected stream.
    pub expected_hash: u64,
    /// Full trace hash of the actual stream.
    pub actual_hash: u64,
    /// Access-set delta, when both sides diverge on a `TaskSets` event
    /// for the same task.
    pub set_delta: Option<SetDelta>,
}

impl Divergence {
    /// Renders the structured diff the CLIs and CI print on mismatch.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay divergence: round {}, task {}, event index {}",
            self.round,
            self.seq
                .map_or_else(|| "<none>".to_owned(), |s| s.to_string()),
            self.index
        );
        let show = |ev: &Option<Event>| {
            ev.as_ref()
                .map_or_else(|| "<end of stream>".to_owned(), event_json)
        };
        let _ = writeln!(out, "  expected: {}", show(&self.expected));
        let _ = writeln!(out, "  actual:   {}", show(&self.actual));
        let _ = writeln!(
            out,
            "  trace-hash prefix at fork: {:016x}",
            self.prefix_hash
        );
        let _ = writeln!(
            out,
            "  full hashes: expected {:016x}, actual {:016x}",
            self.expected_hash, self.actual_hash
        );
        if let Some(delta) = &self.set_delta {
            let _ = writeln!(
                out,
                "  access-set delta: missing=[{}] extra=[{}]",
                delta.missing.join(","),
                delta.extra.join(",")
            );
        }
        out
    }

    /// One-line form for listings (model-checker summaries, progress
    /// output): the fork coordinates plus the two forked events.
    pub fn render_oneline(&self) -> String {
        let show = |ev: &Option<Event>| {
            ev.as_ref()
                .map_or_else(|| "<end of stream>".to_owned(), event_json)
        };
        format!(
            "round {}, task {}, event {}: expected {} / actual {}",
            self.round,
            self.seq
                .map_or_else(|| "<none>".to_owned(), |s| s.to_string()),
            self.index,
            show(&self.expected),
            show(&self.actual)
        )
    }
}

/// Task sequence number carried by an event, if any.
fn event_seq(ev: &Event) -> Option<u64> {
    match ev {
        Event::TaskStart { seq, .. }
        | Event::TaskSets { seq, .. }
        | Event::ValidateOk { seq, .. }
        | Event::ValidateConflict { seq, .. }
        | Event::Commit { seq, .. }
        | Event::Squash { seq, .. }
        | Event::ReductionMerge { seq, .. }
        | Event::TicketIssued { seq, .. }
        | Event::TicketValidated { seq, .. }
        | Event::TicketRequeued { seq, .. } => Some(*seq),
        _ => None,
    }
}

/// Cumulative trace-hash prefixes: `out[i]` hashes `events[..i]`.
fn prefix_hashes(events: &[Event]) -> Vec<u64> {
    let mut out = Vec::with_capacity(events.len() + 1);
    let mut h = TraceHasher::new();
    out.push(h.finish());
    for ev in events {
        h.update_event(ev);
        out.push(h.finish());
    }
    out
}

/// Compares an actual event stream against the journal's expected one:
/// certifies identity or bisects to the first divergent round and event.
pub fn diverge_bisect(expected: &[Event], actual: &[Event]) -> ReplayOutcome {
    let exp_hashes = prefix_hashes(expected);
    let act_hashes = prefix_hashes(actual);
    if expected.len() == actual.len() && exp_hashes.last() == act_hashes.last() {
        return ReplayOutcome::Identical {
            events: expected.len(),
            hash: *exp_hashes.last().expect("prefix_hashes is never empty"),
        };
    }

    // Hash prefixes agree at stream index `i`? (Indices past the actual
    // stream's end count as disagreement: the prefix can't match a longer
    // expected one — FNV-1a folds every byte.)
    let agree = |i: usize| i < act_hashes.len() && exp_hashes[i] == act_hashes[i];

    // Binary search over round boundaries: find the last boundary whose
    // prefix still agrees; the divergence lives in the round that starts
    // there. Boundary list: index 0 plus every RoundStart in the expected
    // stream (the streams are identical up to the fork, so the expected
    // stream's boundaries are the shared ones).
    let mut boundaries: Vec<usize> = vec![0];
    boundaries.extend(
        expected
            .iter()
            .enumerate()
            .filter_map(|(i, ev)| matches!(ev, Event::RoundStart { .. }).then_some(i)),
    );
    let (mut lo, mut hi) = (0usize, boundaries.len() - 1);
    // Invariant: agree(boundaries[lo]); boundaries past `hi` disagree or
    // are unexplored. agree(0) always holds (empty prefix).
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if agree(boundaries[mid]) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }

    // Linear scan inside the one divergent round.
    let mut index = boundaries[lo];
    while index < expected.len() && index < actual.len() && expected[index] == actual[index] {
        index += 1;
    }

    let expected_ev = expected.get(index).cloned();
    let actual_ev = actual.get(index).cloned();
    // The shared prefix is identical in both streams, so the expected side
    // alone determines the enclosing round; a fork *on* a RoundStart
    // attributes to that round.
    let round = expected[..index]
        .iter()
        .rev()
        .find_map(|ev| match ev {
            Event::RoundStart { round, .. } => Some(*round),
            _ => None,
        })
        .or(match (&expected_ev, &actual_ev) {
            (Some(Event::RoundStart { round, .. }), _)
            | (_, Some(Event::RoundStart { round, .. })) => Some(*round),
            _ => None,
        })
        .unwrap_or(0);
    let seq = expected_ev
        .as_ref()
        .and_then(event_seq)
        .or_else(|| actual_ev.as_ref().and_then(event_seq));
    let set_delta = match (&expected_ev, &actual_ev) {
        (
            Some(Event::TaskSets {
                seq: es,
                reads: er,
                writes: ew,
            }),
            Some(Event::TaskSets {
                seq: as_,
                reads: ar,
                writes: aw,
            }),
        ) if es == as_ => {
            let reads = SetDelta::between(er, ar);
            let writes = SetDelta::between(ew, aw);
            let mut merged = SetDelta::default();
            merged
                .missing
                .extend(reads.missing.iter().map(|e| format!("r:{e}")));
            merged
                .missing
                .extend(writes.missing.iter().map(|e| format!("w:{e}")));
            merged
                .extra
                .extend(reads.extra.iter().map(|e| format!("r:{e}")));
            merged
                .extra
                .extend(writes.extra.iter().map(|e| format!("w:{e}")));
            Some(merged)
        }
        _ => None,
    };

    ReplayOutcome::Diverged(Box::new(Divergence {
        round,
        seq,
        index,
        expected: expected_ev,
        actual: actual_ev,
        prefix_hash: exp_hashes[index],
        expected_hash: trace_hash(expected),
        actual_hash: trace_hash(actual),
        set_delta,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alter_trace::Phase;

    fn round(r: u64, seqs: &[u64]) -> Vec<Event> {
        let mut evs = vec![Event::RoundStart {
            round: r,
            tasks: seqs.len() as u32,
            snapshot_slots: 3,
        }];
        for (w, &s) in seqs.iter().enumerate() {
            evs.push(Event::TaskStart {
                seq: s,
                worker: w as u32,
                iters: 4,
            });
        }
        for &s in seqs {
            evs.push(Event::ValidateOk {
                seq: s,
                validate_words: 2,
            });
            evs.push(Event::Commit {
                seq: s,
                read_words: 1,
                write_words: 1,
                allocs: 0,
                frees: 0,
            });
        }
        evs
    }

    fn run(rounds: u64) -> Vec<Event> {
        let mut evs = Vec::new();
        let mut seq = 0;
        for r in 0..rounds {
            evs.extend(round(r, &[seq, seq + 1]));
            seq += 2;
        }
        evs.push(Event::RunEnd {
            rounds,
            attempts: seq,
            committed: seq,
        });
        evs
    }

    #[test]
    fn identical_streams_certify() {
        let evs = run(5);
        match diverge_bisect(&evs, &evs.clone()) {
            ReplayOutcome::Identical { events, hash } => {
                assert_eq!(events, evs.len());
                assert_eq!(hash, trace_hash(&evs));
            }
            other => panic!("expected identity, got {other:?}"),
        }
    }

    #[test]
    fn bisects_to_exact_event_and_round() {
        let expected = run(8);
        let mut actual = expected.clone();
        // Corrupt one mid-stream event: round 5's second ValidateOk.
        let target = expected
            .iter()
            .enumerate()
            .filter(|(_, ev)| matches!(ev, Event::ValidateOk { seq, .. } if *seq == 11))
            .map(|(i, _)| i)
            .next()
            .unwrap();
        actual[target] = Event::ValidateOk {
            seq: 11,
            validate_words: 999,
        };
        match diverge_bisect(&expected, &actual) {
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.index, target);
                assert_eq!(d.round, 5);
                assert_eq!(d.seq, Some(11));
                assert_eq!(d.expected, Some(expected[target].clone()));
                assert_eq!(d.actual, Some(actual[target].clone()));
                assert_eq!(d.prefix_hash, {
                    let mut h = TraceHasher::new();
                    for ev in &expected[..target] {
                        h.update_event(ev);
                    }
                    h.finish()
                });
                assert_ne!(d.expected_hash, d.actual_hash);
                let text = d.render();
                assert!(text.contains("round 5"), "{text}");
                assert!(text.contains("validate_words\":999"), "{text}");
                let line = d.render_oneline();
                assert!(!line.contains('\n'), "{line}");
                assert!(line.contains("round 5, task 11"), "{line}");
                assert!(line.contains("validate_words\":999"), "{line}");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn detects_truncated_and_extended_actuals() {
        let expected = run(3);
        let mut truncated = expected.clone();
        truncated.truncate(expected.len() - 2);
        match diverge_bisect(&expected, &truncated) {
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.index, truncated.len());
                assert!(d.actual.is_none());
                assert!(d.expected.is_some());
            }
            other => panic!("{other:?}"),
        }
        let mut extended = expected.clone();
        extended.push(Event::RunEnd {
            rounds: 9,
            attempts: 9,
            committed: 9,
        });
        match diverge_bisect(&expected, &extended) {
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.index, expected.len());
                assert!(d.expected.is_none());
                assert!(d.actual.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn task_sets_divergence_carries_access_set_delta() {
        let mut expected = run(2);
        let mut actual = expected.clone();
        let sets_at = 1; // right after round 0's RoundStart
        expected.insert(
            sets_at,
            Event::TaskSets {
                seq: 0,
                reads: "2:0-4,7:1-3".into(),
                writes: "2:0-4".into(),
            },
        );
        actual.insert(
            sets_at,
            Event::TaskSets {
                seq: 0,
                reads: "2:0-4".into(),
                writes: "2:0-4,9:0-1".into(),
            },
        );
        match diverge_bisect(&expected, &actual) {
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.index, sets_at);
                let delta = d.set_delta.expect("task-sets divergence carries delta");
                assert_eq!(delta.missing, vec!["r:7:1-3".to_owned()]);
                assert_eq!(delta.extra, vec!["w:9:0-1".to_owned()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn divergence_in_phase_profile_is_found() {
        let mut expected = run(4);
        // Journals with profiling carry PhaseProfile entries too.
        expected.insert(
            5,
            Event::PhaseProfile {
                round: 0,
                phase: Phase::Execute,
                cost: 40,
            },
        );
        let mut actual = expected.clone();
        actual[5] = Event::PhaseProfile {
            round: 0,
            phase: Phase::Execute,
            cost: 41,
        };
        match diverge_bisect(&expected, &actual) {
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.index, 5);
                assert_eq!(d.round, 0);
                assert_eq!(d.seq, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn divergence_before_any_round_is_round_zero() {
        let expected = run(1);
        let mut actual = expected.clone();
        actual[0] = Event::RoundStart {
            round: 0,
            tasks: 7,
            snapshot_slots: 3,
        };
        match diverge_bisect(&expected, &actual) {
            ReplayOutcome::Diverged(d) => {
                assert_eq!(d.index, 0);
                assert_eq!(d.round, 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
