//! Suppression of panic chatter from *expected* crashes.
//!
//! The inference engine deliberately runs annotations that crash (that is
//! one of its five outcomes, §5). Rust's default panic hook would spam
//! stderr for every such probe, so while a probe runs we swap in a hook
//! that stays silent. The suppression is a process-global counter because
//! crashes surface on engine worker threads, not the probing thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

static QUIET: AtomicUsize = AtomicUsize::new(0);
static INSTALL: Once = Once::new();

/// Runs `f` with panic messages suppressed (panics are still caught and
/// propagated as values by the engine; only the stderr chatter is muted).
/// Nesting is allowed; suppression ends when the outermost call returns.
pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET.load(Ordering::Relaxed) == 0 {
                default(info);
            }
        }));
    });
    QUIET.fetch_add(1, Ordering::Relaxed);
    // Balance the counter even if `f` itself unwinds.
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            QUIET.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _guard = Guard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_panics_returns_value_and_balances_counter() {
        let v = quiet_panics(|| 42);
        assert_eq!(v, 42);
        assert_eq!(QUIET.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn quiet_panics_balances_on_unwind() {
        let result = std::panic::catch_unwind(|| {
            quiet_panics(|| panic!("expected"));
        });
        assert!(result.is_err());
        assert_eq!(QUIET.load(Ordering::Relaxed), 0);
    }
}
