//! Public entry points for running annotated loops.

use crate::engine::{run_loop_engine, NullObserver, RoundObserver, RunError, RunStats};
use crate::params::ExecParams;
use crate::reduction::RedVars;
use crate::space::{IterSpace, RangeSpace, SeqSpace};
use alter_heap::Heap;

/// How transactions of a round are executed.
///
/// Both drivers produce *identical* results — rounds, retry schedules,
/// committed state, statistics — because all scheduling decisions are made
/// deterministically between rounds (paper §4.3). The threaded driver runs
/// each round's transactions on real OS threads; the sequential driver runs
/// them one after another on the calling thread (useful for debugging, for
/// the virtual-time simulator, and on single-core machines).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Driver {
    threaded: bool,
}

impl Driver {
    /// Execute each round's transactions sequentially.
    pub fn sequential() -> Self {
        Driver { threaded: false }
    }

    /// Execute each round's transactions on OS threads.
    pub fn threaded() -> Self {
        Driver { threaded: true }
    }

    /// Whether this driver uses threads.
    pub fn is_threaded(self) -> bool {
        self.threaded
    }
}

impl Default for Driver {
    fn default() -> Self {
        Driver::sequential()
    }
}

/// Runs a loop over `space` under `params`.
///
/// `reds` holds the program's reduction-capable scalar variables; pass a
/// fresh empty registry if the loop has none.
///
/// # Errors
///
/// Returns [`RunError`] if a body panics ([`RunError::Crash`]), a
/// transaction exceeds the tracked-memory budget
/// ([`RunError::OutOfMemory`]), or the total work budget is exceeded
/// ([`RunError::WorkBudgetExceeded`]).
pub fn run_loop<F>(
    heap: &mut Heap,
    reds: &mut RedVars,
    space: &mut dyn IterSpace,
    params: &ExecParams,
    driver: Driver,
    body: F,
) -> Result<RunStats, RunError>
where
    F: Fn(&mut crate::TxCtx<'_>, u64) + Sync,
{
    run_loop_engine(
        heap,
        reds,
        space,
        params,
        driver.is_threaded(),
        &body,
        &mut NullObserver,
    )
}

/// Like [`run_loop`], additionally reporting every round to `observer`
/// (the hook the virtual-time simulator uses).
///
/// # Errors
///
/// Same as [`run_loop`].
pub fn run_loop_observed<F>(
    heap: &mut Heap,
    reds: &mut RedVars,
    space: &mut dyn IterSpace,
    params: &ExecParams,
    driver: Driver,
    body: F,
    observer: &mut dyn RoundObserver,
) -> Result<RunStats, RunError>
where
    F: Fn(&mut crate::TxCtx<'_>, u64) + Sync,
{
    run_loop_engine(
        heap,
        reds,
        space,
        params,
        driver.is_threaded(),
        &body,
        observer,
    )
}

enum BuilderSpace {
    Range(u64, u64),
    Seq(Vec<u64>),
}

/// Convenience builder for the common cases of [`run_loop`].
///
/// ```
/// use alter_runtime::{ExecParams, LoopBuilder, Driver};
/// use alter_heap::{Heap, ObjData};
///
/// let mut heap = Heap::new();
/// let xs = heap.alloc(ObjData::zeros_f64(8));
/// let params = ExecParams::new(2, 2);
/// let stats = LoopBuilder::new(&params)
///     .range(0, 8)
///     .run(&mut heap, Driver::sequential(), |ctx, i| {
///         ctx.tx.write_f64(xs, i as usize, i as f64);
///     })?;
/// assert_eq!(stats.iterations, 8);
/// # Ok::<(), alter_runtime::RunError>(())
/// ```
pub struct LoopBuilder<'a> {
    params: &'a ExecParams,
    space: BuilderSpace,
    reds: Option<&'a mut RedVars>,
    observer: Option<&'a mut dyn RoundObserver>,
}

impl<'a> LoopBuilder<'a> {
    /// Starts a builder for the given parameters (empty iteration space
    /// until [`LoopBuilder::range`] or [`LoopBuilder::items`] is called).
    pub fn new(params: &'a ExecParams) -> Self {
        LoopBuilder {
            params,
            space: BuilderSpace::Range(0, 0),
            reds: None,
            observer: None,
        }
    }

    /// Iterate over the counted range `lo..hi`.
    pub fn range(mut self, lo: u64, hi: u64) -> Self {
        self.space = BuilderSpace::Range(lo, hi);
        self
    }

    /// Iterate over an explicit sequence of iteration identifiers.
    pub fn items(mut self, items: Vec<u64>) -> Self {
        self.space = BuilderSpace::Seq(items);
        self
    }

    /// Supplies the reduction-variable registry the loop's
    /// `ReductionPolicy` refers to.
    pub fn reductions(mut self, reds: &'a mut RedVars) -> Self {
        self.reds = Some(reds);
        self
    }

    /// Attaches a round observer.
    pub fn observer(mut self, observer: &'a mut dyn RoundObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the loop.
    ///
    /// # Errors
    ///
    /// Same as [`run_loop`].
    pub fn run<F>(self, heap: &mut Heap, driver: Driver, body: F) -> Result<RunStats, RunError>
    where
        F: Fn(&mut crate::TxCtx<'_>, u64) + Sync,
    {
        let mut default_reds = RedVars::new();
        let reds = self.reds.unwrap_or(&mut default_reds);
        let mut null = NullObserver;
        let observer: &mut dyn RoundObserver = match self.observer {
            Some(o) => o,
            None => &mut null,
        };
        match self.space {
            BuilderSpace::Range(lo, hi) => run_loop_observed(
                heap,
                reds,
                &mut RangeSpace::new(lo, hi),
                self.params,
                driver,
                body,
                observer,
            ),
            BuilderSpace::Seq(items) => run_loop_observed(
                heap,
                reds,
                &mut SeqSpace::new(items),
                self.params,
                driver,
                body,
                observer,
            ),
        }
    }
}

impl std::fmt::Debug for LoopBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopBuilder")
            .field("params", &self.params.describe())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::TxCtx;
    use alter_heap::ObjData;

    #[test]
    fn builder_runs_range_loops() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_i64(6));
        let params = ExecParams::new(2, 3);
        let stats = LoopBuilder::new(&params)
            .range(0, 6)
            .run(&mut heap, Driver::sequential(), |ctx: &mut TxCtx<'_>, i| {
                ctx.tx.write_i64(xs, i as usize, i as i64 + 1);
            })
            .unwrap();
        assert_eq!(stats.iterations, 6);
        assert_eq!(heap.get(xs).i64s(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn builder_runs_item_loops() {
        let mut heap = Heap::new();
        let xs = heap.alloc(ObjData::zeros_i64(10));
        let params = ExecParams::new(2, 2);
        let stats = LoopBuilder::new(&params)
            .items(vec![9, 3, 5])
            .run(&mut heap, Driver::threaded(), |ctx: &mut TxCtx<'_>, i| {
                ctx.tx.write_i64(xs, i as usize, 7);
            })
            .unwrap();
        assert_eq!(stats.iterations, 3);
        assert_eq!(heap.get(xs).i64s()[9], 7);
        assert_eq!(heap.get(xs).i64s()[3], 7);
        assert_eq!(heap.get(xs).i64s()[5], 7);
        assert_eq!(heap.get(xs).i64s()[0], 0);
    }

    #[test]
    fn empty_builder_space_runs_zero_iterations() {
        let mut heap = Heap::new();
        let params = ExecParams::new(2, 2);
        let stats = LoopBuilder::new(&params)
            .run(&mut heap, Driver::sequential(), |_: &mut TxCtx<'_>, _| {
                unreachable!("no iterations")
            })
            .unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.rounds, 0);
    }
}
